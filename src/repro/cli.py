"""Command-line interface.

Drives the full reproduction from a shell::

    python -m repro simulate  --scale 0.1
    python -m repro detect    --scale 0.1 --format json
    python -m repro detect    --scale 0.1 --workers 4 --bundle /tmp/bundle
    python -m repro save      --scale 0.1 --dir /tmp/bundle [--layout legacy]
    python -m repro bundle convert /tmp/legacy /tmp/columnar --check
    python -m repro lifetime  --scale 0.1 --caps 45,90,215
    python -m repro report    --scale 0.1 --experiment fig6
    python -m repro advise shinyforge1.com --acquired 2020-06-01 --scale 0.1
    python -m repro watch     --scale 0.1 --checkpoint-dir /tmp/ckpt --resume
    python -m repro detect    --scale 0.1 --metrics-out metrics.prom --log-json
    python -m repro detect    --scale 0.1 --workers 4 --trace-out trace.json
    python -m repro detect    --scale 0.1 --heartbeat 1 --metrics-out run/m.prom
    python -m repro top       run/ [--once]
    python -m repro obs-timeline run/ [--diff other-run/]
    python -m repro profile   trace.json --top 10
    python -m repro obs-diff  benchmarks/baselines/detect-scale002 run/
    python -m repro lint      src tests --format json
    python -m repro serve     --bundle /tmp/bundle --port 8323
    python -m repro serve     --scale 0.05 --warm-check --metrics-out m.prom

Every command simulates (or reuses, within one invocation) a seeded world,
so results are reproducible given ``--seed``/``--scale``.

The pipeline-running subcommands (detect / lifetime / report / watch) share
three observability flags: ``--metrics-out FILE`` writes a Prometheus-style
text exposition of the run's :mod:`repro.obs` registry (per-operator CRL
fetch outcomes, per-detector duration histograms, finding counters by
staleness class, stream/shard counters) plus a ``run.json`` manifest next
to it; ``--trace-out FILE`` exports the run's span trace as Chrome
trace-event JSON with every shard worker on its own deterministic lane;
and ``--log-json`` emits structured JSON log records to stderr. Each
invocation records into a fresh registry/collector, so the artifacts
describe exactly one run — and they are written from a ``finally``, so a
crashed or interrupted run still emits its partial telemetry.

Two more shared flags drive *live* telemetry: ``--heartbeat SECS``
starts a background sampler (see :mod:`repro.obs.live`) appending
progress/RSS/open-span snapshots to ``timeline.jsonl`` next to
``--metrics-out`` (or the working directory) — watch it live or post
hoc with ``python -m repro top RUN_DIR`` and summarize or compare runs
with ``obs-timeline``; ``--slow-span-ms MS`` logs a structured
``slow_span`` record whenever a span outlives the threshold. Both
default to off and cost nothing when off.

``profile`` aggregates an exported trace (per-span self/cumulative time
and the cross-worker critical path); ``obs-diff`` compares two runs'
artifacts and exits non-zero on regressions beyond ``--threshold``.

``serve`` builds a :class:`repro.serve.index.FindingsIndex` once and
answers staleness queries over a read-only HTTP API (stdlib ``wsgiref``;
see ``docs/API.md``); ``--warm-check`` self-queries every endpoint
in-process — no socket — and exits, which is how CI smokes the service.

``lint`` runs the project's own AST static analysis (:mod:`repro.lint`)
over the given paths (default ``src tests``) and exits non-zero on new
findings — see ``docs/LINTS.md`` for the rule catalogue, inline
suppressions, the baseline, and ``--fix``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import (
    LifetimePolicySimulator,
    MeasurementPipeline,
    StalenessClass,
    WorldConfig,
    simulate_world,
)
from repro.analysis.aggregate import build_table3, build_table4
from repro.analysis.crl_coverage import build_table7
from repro.analysis.figures import build_fig4, build_fig6, build_fig8
from repro.analysis.report import render_table
from repro.core.advisory import StaleCertificateAdvisor
from repro.util.dates import day_to_iso, parse_day

_EXPERIMENTS = (
    "summary", "table1", "table2", "table3", "table4", "table7",
    "fig4", "fig6", "fig8",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Stale TLS Certificates' (IMC 2023).",
    )
    parser.add_argument("--seed", type=int, default=20231024, help="world seed")
    parser.add_argument(
        "--scale", type=float, default=0.1, help="world size multiplier (default 0.1)"
    )
    # Accept --seed/--scale after the subcommand too (SUPPRESS keeps the
    # subparser from clobbering the top-level defaults when absent).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=argparse.SUPPRESS, help="world seed")
    common.add_argument(
        "--scale", type=float, default=argparse.SUPPRESS, help="world size multiplier"
    )
    # Dataset/engine options shared by the pipeline-running subcommands.
    data = argparse.ArgumentParser(add_help=False)
    data.add_argument(
        "--bundle", default=None, metavar="DIR",
        help="dataset bundle directory: loaded when it exists, otherwise the "
        "simulated world is saved there (repeat runs skip re-simulation)",
    )
    data.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run detection sharded across N worker processes (default 1)",
    )
    # Observability options shared by the pipeline-running subcommands.
    obsopts = argparse.ArgumentParser(add_help=False)
    obsopts.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write a Prometheus-style metrics textfile for this run",
    )
    obsopts.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log records to stderr",
    )
    obsopts.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="export the run's span trace (Chrome trace-event JSON; "
        "*.jsonl for one event per line) — load in Perfetto or feed to "
        "'repro profile'",
    )
    obsopts.add_argument(
        "--heartbeat", type=float, default=0.0, metavar="SECS",
        help="sample live telemetry every SECS seconds into "
        "timeline.jsonl next to --metrics-out (or the working "
        "directory); watch with 'repro top' (default 0 = off)",
    )
    obsopts.add_argument(
        "--slow-span-ms", type=float, default=None, metavar="MS",
        help="log a structured slow_span record for any span lasting "
        "at least MS milliseconds (default off; env "
        "REPRO_SLOW_SPAN_MS)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "simulate", parents=[common], help="simulate a world and print dataset sizes"
    )

    detect = sub.add_parser(
        "detect", parents=[common, data, obsopts],
        help="run the three detectors; print Table 4",
    )
    detect.add_argument(
        "--save-findings", default=None, metavar="PATH",
        help="also write findings as JSONL (.gz supported)",
    )
    detect.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    save = sub.add_parser(
        "save", parents=[common, obsopts],
        help="simulate a world and persist its dataset bundle",
    )
    save.add_argument("--dir", required=True, help="output directory")
    save.add_argument(
        "--layout", choices=("columnar", "legacy"), default="columnar",
        help="bundle layout: columnar memory-mapped segments (default) or "
        "the legacy JSONL dict format",
    )
    save.add_argument(
        "--gen-shards", type=int, default=None, metavar="K",
        help="stream-generate the world in K deterministic shards instead "
        "of simulating it in memory (peak RSS stays O(shard); output is "
        "identical for every K; requires --layout columnar)",
    )
    save.add_argument(
        "--gen-dns-rows", type=int, default=None, metavar="N",
        help="DNS observation row budget for --gen-shards (the scan-day "
        "stride is widened to stay under it; default 4,000,000)",
    )

    bundle_cmd = sub.add_parser(
        "bundle", help="bundle maintenance (layout conversion)"
    )
    bundle_sub = bundle_cmd.add_subparsers(dest="bundle_command", required=True)
    bundle_convert = bundle_sub.add_parser(
        "convert",
        help="rewrite a bundle directory into another layout "
        "(auto-detects the source layout)",
    )
    bundle_convert.add_argument("src", help="source bundle directory")
    bundle_convert.add_argument("dst", help="destination directory")
    bundle_convert.add_argument(
        "--to", choices=("columnar", "legacy"), default="columnar",
        help="target layout (default columnar)",
    )
    bundle_convert.add_argument(
        "--check", action="store_true",
        help="after converting, re-open both directories and verify they "
        "are object-for-object equivalent (exit 1 on mismatch)",
    )

    lifetime = sub.add_parser(
        "lifetime", parents=[common, data, obsopts],
        help="lifetime-cap policy analysis (Section 6)",
    )
    lifetime.add_argument(
        "--caps", default="45,90,215", help="comma-separated caps in days"
    )

    report = sub.add_parser(
        "report", parents=[common, data, obsopts],
        help="print one reproduced table/figure",
    )
    report.add_argument("--experiment", choices=_EXPERIMENTS, default="table4")
    report.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    advise = sub.add_parser(
        "advise", parents=[common], help="BygoneSSL-style pre-acquisition check against simulated CT"
    )
    advise.add_argument("domain", help="domain being acquired")
    advise.add_argument(
        "--acquired", required=True, help="acquisition date (YYYY-MM-DD)"
    )

    watch = sub.add_parser(
        "watch",
        parents=[common, obsopts],
        help="replay the world as a day-by-day event stream, emitting "
        "advisories live (streaming equivalent of 'detect')",
    )
    watch.add_argument(
        "--bundle", default=None, metavar="DIR",
        help="dataset bundle directory (columnar or legacy, auto-detected): "
        "replayed when it exists, otherwise the simulated world is saved "
        "there first",
    )
    watch.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist periodic checkpoints to DIR (enables --resume)",
    )
    watch.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint in --checkpoint-dir, if one exists",
    )
    watch.add_argument(
        "--checkpoint-every", type=int, default=30, metavar="DAYS",
        help="checkpoint cadence in processed event-days (default 30)",
    )
    watch.add_argument(
        "--days", type=int, default=None, metavar="N",
        help="stop after N event-days (partial run; combine with "
        "--checkpoint-dir to continue later)",
    )
    watch.add_argument(
        "--verify", action="store_true",
        help="after the replay, run the batch pipeline and check the "
        "findings sets are identical (exit 1 on divergence)",
    )
    watch.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text); json suppresses the live feed",
    )

    profile = sub.add_parser(
        "profile",
        help="aggregate a --trace-out trace: per-span self/cumulative time "
        "and the cross-worker critical path",
    )
    profile.add_argument("trace", help="trace file (.json Chrome format or .jsonl)")
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows per table (default 15)",
    )
    profile.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    obs_diff = sub.add_parser(
        "obs-diff",
        help="compare two runs' metrics and span profiles; exit non-zero "
        "on regressions beyond the threshold",
    )
    obs_diff.add_argument(
        "run_a", help="baseline run: directory with run.json, a run.json, "
        "or a metrics textfile",
    )
    obs_diff.add_argument("run_b", help="candidate run (same forms)")
    obs_diff.add_argument(
        "--threshold", type=float, default=25.0, metavar="PCT",
        help="regression threshold in percent (default 25)",
    )
    obs_diff.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="delta rows to print (default 20)",
    )
    obs_diff.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    serve = sub.add_parser(
        "serve", parents=[common, data, obsopts],
        help="serve findings over a read-only HTTP API backed by an "
        "in-memory index (stdlib wsgiref; see docs/API.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8323, metavar="N",
        help="listen port (default 8323; 0 picks a free port)",
    )
    serve.add_argument(
        "--warm-check", action="store_true",
        help="build the index, self-query every endpoint in-process "
        "(no socket), print the probe report, and exit non-zero on any "
        "failed probe",
    )
    serve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="stop after answering N requests (smoke tests; default: "
        "serve until interrupted)",
    )
    serve.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="--warm-check report format (default text)",
    )

    top = sub.add_parser(
        "top",
        help="live console view over a run's timeline.jsonl "
        "(running or finished; requires the run used --heartbeat)",
    )
    top.add_argument(
        "run", help="run directory containing timeline.jsonl, or the file itself"
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one plain frame and exit (no ANSI repaint)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECS",
        help="live-mode refresh cadence (default 1.0)",
    )

    obs_timeline = sub.add_parser(
        "obs-timeline",
        help="summarize a run's timeline.jsonl (phases, rates, RSS); "
        "--diff compares two timelines and exits non-zero on regressions",
    )
    obs_timeline.add_argument(
        "run", help="run directory containing timeline.jsonl, or the file itself"
    )
    obs_timeline.add_argument(
        "--diff", default=None, metavar="OTHER",
        help="also summarize OTHER and report rate/RSS regressions of "
        "this run against it",
    )
    obs_timeline.add_argument(
        "--threshold", type=float, default=25.0, metavar="PCT",
        help="--diff regression threshold in percent (default 25)",
    )
    obs_timeline.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )

    lint = sub.add_parser(
        "lint",
        help="statically check determinism / fork-safety / obs / protocol "
        "invariants (AST-based, dependency-free); exit 1 on new findings",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src tests)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: lint-baseline.json when present)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes (sorted() wraps, bare-except rewrites) "
        "before reporting",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print every rule code with its rationale and exit",
    )
    lint.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parse/analyze files across N worker processes "
        "(default: os.cpu_count(); finding order is identical for any N)",
    )
    lint.add_argument(
        "--explain", default=None, metavar="PATH:LINE",
        help="print every recorded nondeterminism flow whose source, sink, "
        "or any hop touches PATH:LINE, then exit",
    )
    lint.add_argument(
        "--dump-graph", default=None, metavar="FILE",
        help="also write the import/call graph and RNG-label namespace "
        "as JSON to FILE",
    )
    return parser


class BundleCliError(ValueError):
    """A --bundle directory exists but cannot be opened.

    ``ValueError`` so handlers that already catch the bundle error family
    (e.g. ``serve``) keep working; ``main`` maps it to exit code 2 for the
    subcommands that let it propagate.
    """


def _world(args):
    print(f"simulating world (seed={args.seed}, scale={args.scale}) ...", file=sys.stderr)
    return simulate_world(WorldConfig(seed=args.seed).scaled(args.scale))


def _bundle_and_cutoff(args):
    """The one dataset loader every pipeline-running subcommand shares.

    With ``--bundle DIR``: open the bundle if one is saved there — the
    layout (columnar segments vs. legacy JSONL) is auto-detected from the
    directory contents — otherwise simulate the world and save its bundle
    there in the columnar layout (so the next invocation skips
    re-simulation). Without it: simulate, as before.
    """
    from repro.data import detect_layout, open_bundle, write_dataset
    from repro.obs import phase_progress

    progress = phase_progress("load_bundle")
    progress.set_total(1)
    bundle_dir = getattr(args, "bundle", None)
    if bundle_dir and detect_layout(bundle_dir) is not None:
        from repro.ecosystem.timeline import DEFAULT_TIMELINE

        layout = detect_layout(bundle_dir)
        print(f"loading bundle ({layout}) from {bundle_dir} ...", file=sys.stderr)
        try:
            bundle = open_bundle(bundle_dir)
        except (OSError, ValueError) as error:
            raise BundleCliError(f"cannot open bundle {bundle_dir}: {error}") from error
        progress.add(1)
        return bundle, DEFAULT_TIMELINE.revocation_cutoff
    world = _world(args)
    bundle = world.to_bundle()
    if bundle_dir:
        write_dataset(bundle, bundle_dir)
        print(f"saved bundle (columnar) to {bundle_dir}", file=sys.stderr)
    progress.add(1)
    return bundle, world.config.timeline.revocation_cutoff


def _pipeline_result(args):
    """Run the measurement pipeline for *args* (honors --bundle/--workers)."""
    bundle, cutoff = _bundle_and_cutoff(args)
    return MeasurementPipeline.run_bundle(
        bundle,
        revocation_cutoff_day=cutoff,
        workers=getattr(args, "workers", 1),
    )


def _wants_json(args) -> bool:
    return getattr(args, "format", "text") == "json"


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _print_rows(args, columns, rows, title) -> None:
    """Render a tabular result as text or as a JSON document."""
    if _wants_json(args):
        _print_json(
            {"title": title, "columns": list(columns), "rows": [list(r) for r in rows]}
        )
    else:
        print(render_table(columns, rows, title=title))


def cmd_simulate(args) -> int:
    world = _world(args)
    rows = [(key, value) for key, value in sorted(world.dataset_summary().items())]
    print(render_table(["Dataset quantity", "Count"], rows, title="Simulated world"))
    return 0


def cmd_detect(args) -> int:
    result = _pipeline_result(args)
    if getattr(args, "save_findings", None):
        from repro.util.storage import dump_jsonl

        written = dump_jsonl(
            args.save_findings,
            (finding.to_record() for finding in result.findings.all_findings()),
        )
        print(f"wrote {written} findings to {args.save_findings}", file=sys.stderr)
    rows = build_table4(result)
    columns = ["Method", "Date range", "Daily certs", "Total certs",
               "Daily e2LDs", "Total e2LDs"]
    table_rows = [
        (r.method, r.date_range, round(r.daily_certs, 2), r.total_certs,
         round(r.daily_e2lds, 2), r.total_e2lds)
        for r in rows
    ]
    title = "Stale certificate detection (Table 4)"
    if _wants_json(args):
        _print_json(
            {
                "title": title,
                "columns": columns,
                "rows": [list(r) for r in table_rows],
                "shard_stats": (
                    result.shard_stats.to_record()
                    if result.shard_stats is not None
                    else None
                ),
            }
        )
    else:
        print(render_table(columns, table_rows, title=title))
        if result.shard_stats is not None:
            print(render_table(
                ["Shard quantity", "Value"],
                result.shard_stats.summary_rows(),
                title="Parallel shard stats",
            ))
    return 0


def cmd_save(args) -> int:
    from repro.data import save_legacy_bundle, write_dataset

    if getattr(args, "gen_shards", None):
        return _save_streamed(args)
    world = _world(args)
    bundle = world.to_bundle()
    if args.layout == "legacy":
        counts = save_legacy_bundle(bundle, args.dir)
        columns = ["File", "Records"]
    else:
        counts = write_dataset(bundle, args.dir)
        columns = ["Table", "Rows"]
    rows = sorted(counts.items())
    print(
        render_table(
            columns, rows, title=f"Bundle saved to {args.dir} ({args.layout})"
        )
    )
    return 0


def _save_streamed(args) -> int:
    """``save --gen-shards K``: stream-generate straight into segments."""
    from repro.ecosystem.streamgen import save_streamed

    if args.layout != "columnar":
        print(
            "error: --gen-shards streams rows into columnar segments; "
            "--layout legacy would require materialising the world "
            "(use 'repro bundle convert' afterwards instead)",
            file=sys.stderr,
        )
        return 2
    if args.gen_shards < 1:
        print("error: --gen-shards must be >= 1", file=sys.stderr)
        return 2
    print(
        f"stream-generating world (seed={args.seed}, scale={args.scale}, "
        f"shards={args.gen_shards}) ...",
        file=sys.stderr,
    )
    counts = save_streamed(
        WorldConfig(seed=args.seed).scaled(args.scale),
        args.dir,
        shards=args.gen_shards,
        dns_row_budget=args.gen_dns_rows,
    )
    print(
        render_table(
            ["Table", "Rows"],
            sorted(counts.items()),
            title=f"Bundle saved to {args.dir} (columnar, streamed)",
        )
    )
    return 0


def cmd_bundle(args) -> int:
    """Bundle maintenance: currently ``bundle convert SRC DST``."""
    from repro.data import check_equivalent, convert

    try:
        counts = convert(args.src, args.dst, layout=args.to)
        print(
            render_table(
                ["Table", "Records"],
                sorted(counts.items()),
                title=f"Converted {args.src} -> {args.dst} ({args.to})",
            )
        )
        if args.check:
            problems = check_equivalent(args.src, args.dst)
            if problems:
                for problem in problems:
                    print(f"MISMATCH: {problem}", file=sys.stderr)
                return 1
            print("round-trip check: bundles are equivalent")
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_lifetime(args) -> int:
    caps = [int(part) for part in args.caps.split(",") if part.strip()]
    if not caps or any(cap <= 0 for cap in caps):
        print("error: --caps must be positive integers", file=sys.stderr)
        return 2
    result = _pipeline_result(args)
    simulator = LifetimePolicySimulator(result.findings)
    rows = []
    for cls in (
        StalenessClass.KEY_COMPROMISE,
        StalenessClass.REGISTRANT_CHANGE,
        StalenessClass.MANAGED_TLS_DEPARTURE,
    ):
        if not result.findings.of_class(cls):
            continue
        for cap_result in simulator.sweep(cls, caps):
            rows.append(
                (cls.value, cap_result.cap_days,
                 f"{100 * cap_result.staleness_days_reduction:.1f}%",
                 f"{100 * cap_result.certificate_reduction:.1f}%")
            )
    for cap in caps:
        rows.append(
            ("OVERALL", cap,
             f"{100 * simulator.overall_staleness_reduction(cap):.1f}%", "-")
        )
    print(
        render_table(
            ["Class", "Cap (days)", "Staleness-days reduction", "Certs eliminated"],
            rows,
            title="Lifetime-cap simulation (Section 6 / Figure 9)",
        )
    )
    return 0


def cmd_report(args) -> int:
    if args.experiment in ("table1", "table2"):
        return _print_taxonomy(args, args.experiment)
    # Tables 3 and 7 describe the collection itself, not the findings, so
    # they always need a simulated world (a bare bundle is not enough).
    if args.experiment == "table3":
        rows = build_table3(_world(args))
        _print_rows(args, ["Dataset", "Used for", "Date range", "Size"],
                    [(r.dataset, r.used_for, r.date_range, r.size) for r in rows],
                    "Table 3")
        return 0
    if args.experiment == "table7":
        rows = build_table7(_world(args).crl_fetcher)
        _print_rows(args, ["CA operator", "Coverage"],
                    [(r.ca_operator, r.coverage_text) for r in rows],
                    "Table 7")
        return 0
    result = _pipeline_result(args)
    if args.experiment == "summary":
        from repro.analysis.summary import render_summary

        if _wants_json(args):
            _print_json({"title": "summary", "text": render_summary(result)})
        else:
            print(render_summary(result))
        return 0
    if args.experiment == "table4":
        return cmd_detect_from(args, result)
    if args.experiment == "fig4":
        series = build_fig4(result.findings)
        issuers = sorted({i for counts in series.values() for i in counts})
        rows = [[m] + [series[m].get(i, 0) for i in issuers] for m in sorted(series)]
        _print_rows(args, ["Month"] + issuers, rows, "Figure 4")
        return 0
    if args.experiment == "fig6":
        rows = [
            (s.staleness_class.value, f"{s.median_days:.0f}", f"{s.proportion_over_90:.2f}")
            for s in build_fig6(result.findings)
        ]
        _print_rows(args, ["Class", "Median staleness (d)", "P(>90d)"], rows,
                    "Figure 6")
        return 0
    if args.experiment == "fig8":
        rows = [
            (s.staleness_class.value, f"{s.survival_at_90:.3f}", f"{s.survival_at_215:.3f}")
            for s in build_fig8(result.findings)
        ]
        _print_rows(args, ["Class", "S(90)", "S(215)"], rows, "Figure 8")
        return 0
    return 2


def _print_taxonomy(args, which: str) -> int:
    """Tables 1 and 2 are pure taxonomy — no simulation needed."""
    from repro.core.taxonomy import CERTIFICATE_INFORMATION_TAXONOMY, INVALIDATION_EVENTS

    if which == "table1":
        _print_rows(
            args,
            ["Category", "Description", "Related fields"],
            [
                (row.category.value, row.description, ", ".join(row.related_fields))
                for row in CERTIFICATE_INFORMATION_TAXONOMY
            ],
            "Table 1: Certificate Information Taxonomy",
        )
    else:
        _print_rows(
            args,
            ["Invalidation event", "Category", "Example", "Controlled by", "Implication"],
            [
                (
                    spec.event.value,
                    spec.category.value,
                    spec.example,
                    spec.controlled_by.value,
                    spec.implication.value,
                )
                for spec in INVALIDATION_EVENTS
            ],
            "Table 2: Certificate Invalidation Events",
        )
    return 0


def cmd_detect_from(args, result) -> int:
    rows = build_table4(result)
    _print_rows(
        args,
        ["Method", "Daily e2LDs", "Total e2LDs"],
        [(r.method, round(r.daily_e2lds, 2), r.total_e2lds) for r in rows],
        "Table 4",
    )
    return 0


def cmd_advise(args) -> int:
    try:
        acquired = parse_day(args.acquired)
    except ValueError:
        print(f"error: invalid date {args.acquired!r} (want YYYY-MM-DD)", file=sys.stderr)
        return 2
    world = _world(args)
    advisor = StaleCertificateAdvisor(world.corpus)
    report = advisor.check_acquisition(args.domain, acquired)
    print(report.summary())
    for exposure in report.exposures:
        print(f"  - {exposure.describe()}")
    if report.exposure_ends is not None:
        print(
            f"exposure fully ends {day_to_iso(report.exposure_ends)}; revocation "
            "helps only clients that check (see paper Section 2.4)."
        )
    return 0 if report.is_clean else 1


def cmd_watch(args) -> int:
    """Streaming replay: the always-on-monitor equivalent of ``detect``."""
    from repro.stream import (
        CheckpointError,
        CheckpointStore,
        StreamEngine,
        verify_equivalence,
    )

    bundle, cutoff = _bundle_and_cutoff(args)
    store = CheckpointStore(args.checkpoint_dir) if args.checkpoint_dir else None
    if args.resume and store is None:
        print(
            "warning: --resume has no effect without --checkpoint-dir; "
            "running from the start",
            file=sys.stderr,
        )
    live = not _wants_json(args)
    advisor = StaleCertificateAdvisor(bundle.corpus) if live else None

    def on_finding(event):
        if not live:
            return
        finding = event.finding
        certificate = finding.certificate
        domain = finding.affected_domain or sorted(certificate.fqdns())[0]
        print(
            f"[{day_to_iso(event.day)}] {finding.staleness_class.value:<22} "
            f"{domain}  ({certificate.issuer_name} serial {certificate.serial}, "
            f"valid to {day_to_iso(certificate.not_after)}; {finding.detail})"
        )
        if finding.staleness_class is StalenessClass.REGISTRANT_CHANGE:
            # The live BygoneSSL-style advisory a registrant would receive
            # the day their newly acquired domain shows a stale certificate.
            report = advisor.check_acquisition(domain, finding.invalidation_day)
            if not report.is_clean:
                print(f"    advisory: {report.summary()}")

    engine = StreamEngine(
        bundle,
        revocation_cutoff_day=cutoff,
        checkpoint_store=store,
        checkpoint_every_days=args.checkpoint_every,
        on_finding=on_finding,
    )
    try:
        result = engine.replay(max_days=args.days, resume=args.resume)
    except CheckpointError as error:
        # Covers both a bundle-fingerprint mismatch and a truncated or
        # corrupt checkpoint file; the message names the path and the fix.
        print(f"error: {error}", file=sys.stderr)
        return 2

    equivalent = None
    if args.verify:
        if result.complete:
            equivalent, _ = verify_equivalence(
                bundle, result.findings, revocation_cutoff_day=cutoff
            )
        else:
            print(
                "warning: --verify skipped (partial replay; findings are "
                "provisional)",
                file=sys.stderr,
            )

    table4 = build_table4(result.to_pipeline_result())
    if _wants_json(args):
        _print_json(
            {
                "complete": result.complete,
                "cursor_day": day_to_iso(result.cursor_day)
                if result.cursor_day is not None
                else None,
                "checkpoint_dir": args.checkpoint_dir,
                "stats": result.stats.to_record(),
                "verified_equivalent": equivalent,
                "table4": [
                    {
                        "method": r.method,
                        "date_range": r.date_range,
                        "daily_certs": round(r.daily_certs, 2),
                        "total_certs": r.total_certs,
                        "daily_e2lds": round(r.daily_e2lds, 2),
                        "total_e2lds": r.total_e2lds,
                    }
                    for r in table4
                ],
            }
        )
    else:
        print(render_table(
            ["Stream quantity", "Value"], result.stats.summary_rows(),
            title="Stream metrics",
        ))
        print(render_table(
            ["Method", "Daily e2LDs", "Total e2LDs"],
            [(r.method, round(r.daily_e2lds, 2), r.total_e2lds) for r in table4],
            title="Converged findings (Table 4)"
            + ("" if result.complete else " — PARTIAL, provisional"),
        ))
        if equivalent is not None:
            print(
                "equivalence: streaming findings "
                + ("MATCH" if equivalent else "DIVERGE FROM")
                + " the batch pipeline"
            )
    return 0 if equivalent in (None, True) else 1


def cmd_serve(args) -> int:
    """Serve findings over the read-only staleness query API."""
    from repro.serve import FindingsIndex, create_app, run_server, warm_check

    try:
        bundle, cutoff = _bundle_and_cutoff(args)
        result = MeasurementPipeline.run_bundle(
            bundle,
            revocation_cutoff_day=cutoff,
            workers=getattr(args, "workers", 1),
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot build serving index: {error}", file=sys.stderr)
        return 2
    app = create_app(FindingsIndex(result))
    stats = app.index.stats()
    print(
        f"index ready: {stats['findings']} findings, {stats['domains']} "
        f"domains, {stats['issuers']} issuers "
        f"(built in {stats['build_seconds']:.3f}s)",
        file=sys.stderr,
    )
    if args.warm_check:
        report = warm_check(app)
        if _wants_json(args):
            _print_json(report)
        else:
            print(render_table(
                ["Method", "Path", "Query", "Want", "Got", "Verdict"],
                [
                    (c["method"], c["path"], c["query"] or "-",
                     c["expected_status"], c["status"],
                     "ok" if c["ok"] else "FAIL")
                    for c in report["checks"]
                ],
                title=f"Warm check — {report['probes']} probes, "
                f"{report['failures']} failure(s)",
            ))
        return 0 if report["ok"] else 1
    run_server(app, host=args.host, port=args.port, max_requests=args.max_requests)
    return 0


def cmd_lint(args) -> int:
    """Static invariant checks (see repro.lint and docs/LINTS.md)."""
    from repro.lint.runner import run_cli

    return run_cli(args)


def cmd_profile(args) -> int:
    """Aggregate an exported trace: self/cumulative time + critical path."""
    from repro.obs.profile import profile_trace

    try:
        report = profile_trace(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: cannot profile {args.trace}: {error}", file=sys.stderr)
        return 2
    if not report.spans:
        print(f"error: {args.trace} contains no closed spans", file=sys.stderr)
        return 2

    by_self = sorted(
        report.names.values(), key=lambda p: (-p.self_us, p.name)
    )[: args.top]
    name_rows = [
        (
            profile.name,
            profile.count,
            f"{profile.self_us / 1e6:.4f}",
            f"{profile.total_us / 1e6:.4f}",
            f"{profile.max_us / 1e6:.4f}",
            profile.errors,
        )
        for profile in by_self
    ]
    path_rows = [
        (
            segment.name,
            segment.span.pid if segment.span is not None else "-",
            f"{segment.start_us / 1e6 - report.start_us / 1e6:.4f}",
            f"{segment.duration_us / 1e6:.4f}",
        )
        for segment in sorted(
            report.path, key=lambda s: -s.duration_us
        )[: args.top]
    ]
    if _wants_json(args):
        _print_json(
            {
                "trace": args.trace,
                "spans": len(report.spans),
                "wall_seconds": round(report.wall_seconds, 6),
                "critical_path_seconds": round(report.path_seconds, 6),
                "names": [
                    {
                        "name": p.name,
                        "count": p.count,
                        "self_seconds": round(p.self_us / 1e6, 6),
                        "cumulative_seconds": round(p.total_us / 1e6, 6),
                        "max_seconds": round(p.max_us / 1e6, 6),
                        "errors": p.errors,
                    }
                    for p in by_self
                ],
                "critical_path": [
                    {
                        "name": segment.name,
                        "lane": segment.span.pid if segment.span is not None else None,
                        "start_seconds": round(
                            (segment.start_us - report.start_us) / 1e6, 6
                        ),
                        "seconds": round(segment.duration_us / 1e6, 6),
                    }
                    for segment in report.path
                ],
            }
        )
        return 0
    print(render_table(
        ["Span", "Count", "Self (s)", "Cumulative (s)", "Max (s)", "Errors"],
        name_rows,
        title=f"Span profile — {len(report.spans)} spans, "
        f"{report.wall_seconds:.4f}s wall",
    ))
    print(render_table(
        ["Critical path span", "Lane", "At (s)", "Seconds"],
        path_rows,
        title=f"Critical path — {len(report.path)} segments summing to "
        f"{report.path_seconds:.4f}s",
    ))
    return 0


def cmd_obs_diff(args) -> int:
    """Compare two runs' metric families and span profiles."""
    from repro.obs.diff import diff_runs, load_run

    try:
        run_a = load_run(args.run_a)
        run_b = load_run(args.run_b)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diff = diff_runs(run_a, run_b, threshold_pct=args.threshold)
    regressions = diff.regressions
    if _wants_json(args):
        _print_json(
            {
                "run_a": args.run_a,
                "run_b": args.run_b,
                "threshold_pct": args.threshold,
                "compared": len(diff.deltas),
                "added": diff.added,
                "removed": diff.removed,
                "regressions": [
                    {
                        "series": d.series,
                        "kind": d.kind,
                        "a": d.a,
                        "b": d.b,
                        "delta_pct": round(d.delta_pct, 2),
                    }
                    for d in regressions
                ],
            }
        )
    else:
        print(render_table(
            ["Series", "Kind", "A", "B", "Delta", "Verdict"],
            diff.delta_rows(top=args.top),
            title=f"Run diff — {args.run_a} vs {args.run_b} "
            f"(threshold {args.threshold:g}%)",
        ))
        for series in diff.added:
            print(f"  added in B:   {series}")
        for series in diff.removed:
            print(f"  removed in B: {series}")
        verdict = (
            f"{len(regressions)} regression(s) beyond {args.threshold:g}%"
            if regressions
            else f"no regressions beyond {args.threshold:g}% "
            f"({len(diff.deltas)} series compared)"
        )
        print(verdict)
    return 1 if regressions else 0


def cmd_top(args) -> int:
    """Console view over a run's live (or finished) timeline."""
    from repro.obs.topview import run_top

    try:
        return run_top(args.run, once=args.once, interval=args.interval)
    except (OSError, ValueError) as error:
        print(f"error: cannot read timeline: {error}", file=sys.stderr)
        return 2


def cmd_obs_timeline(args) -> int:
    """Summarize (and optionally diff) run timelines."""
    from repro.obs.timeline import diff_summaries, read_timeline, summarize_timeline

    try:
        summary = summarize_timeline(read_timeline(args.run))
        other = (
            summarize_timeline(read_timeline(args.diff)) if args.diff else None
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot read timeline: {error}", file=sys.stderr)
        return 2
    diff = (
        diff_summaries(other, summary, threshold_pct=args.threshold)
        if other is not None
        else None
    )
    if _wants_json(args):
        payload = {"run": args.run, "summary": summary}
        if diff is not None:
            payload.update({"baseline": args.diff, "diff": diff})
        _print_json(payload)
        return 0 if diff is None or diff["ok"] else 1

    rss = summary.get("rss") or {}
    overview = [
        ("command", summary.get("command") or "-"),
        ("snapshots", summary.get("snapshots")),
        ("duration (s)", summary.get("duration_seconds")),
        ("heartbeat (s)", summary.get("heartbeat_seconds")),
        ("mean interval (s)", summary.get("mean_interval_seconds", "-")),
        ("monotonic", str(summary.get("monotonic"))),
        ("rss max (MiB)",
         round(rss["max_bytes"] / (1 << 20), 1) if rss.get("max_bytes") else "-"),
    ]
    print(render_table(
        ["Quantity", "Value"], overview, title=f"Timeline — {args.run}"
    ))
    phase_rows = [
        (phase,
         int(row["done"]),
         int(row["total"]),
         row["mean_rate"] if row["mean_rate"] is not None else "-",
         row["last_rate"] if row["last_rate"] is not None else "-")
        for phase, row in (summary.get("phases") or {}).items()
    ]
    if phase_rows:
        print(render_table(
            ["Phase", "Done", "Total", "Mean rate/s", "Last rate/s"],
            phase_rows, title="Progress phases",
        ))
    if diff is None:
        return 0
    print(render_table(
        ["Series", "Baseline", "Candidate", "Delta"],
        [
            (d["series"], d["a"] if d["a"] is not None else "-",
             d["b"] if d["b"] is not None else "-",
             f"{d['delta_pct']:+.1f}%" if d["delta_pct"] is not None else "-")
            for d in diff["deltas"]
        ],
        title=f"Diff vs {args.diff} (threshold {args.threshold:g}%)",
    ))
    if diff["regressions"]:
        for series in diff["regressions"]:
            print(f"REGRESSION: {series}", file=sys.stderr)
        return 1
    print(f"no regressions beyond {args.threshold:g}%")
    return 0


def _write_run_artifacts(
    args,
    argv: List[str],
    registry,
    collector,
    wall_seconds: float,
    exit_status: str,
    exit_code: Optional[int],
    heartbeat=None,
) -> None:
    """Write --metrics-out / --trace-out / timeline / run.json for one run.

    Called from ``main``'s ``finally`` so a crashed or interrupted run
    still emits its partial metrics, trace, and manifest. The heartbeat
    is stopped *here*, after the trace gauge lands but before the
    metrics textfile is rendered, so the timeline's final snapshot
    contains exactly the samples ``metrics.prom`` will.
    """
    import os

    from repro.obs import names, set_heartbeat
    from repro.obs.runmeta import (
        RUN_MANIFEST_NAME,
        build_run_manifest,
        write_run_manifest,
    )

    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if collector is not None and trace_out:
        registry.gauge(
            names.TRACE_EVENTS_DROPPED, names.TRACE_EVENTS_DROPPED_HELP
        ).set(collector.dropped)
        collector.write(trace_out)
        print(f"wrote trace to {trace_out}", file=sys.stderr)
    timeline_path = None
    timeline_snapshots = None
    heartbeat_seconds = None
    if heartbeat is not None:
        heartbeat.stop()
        set_heartbeat(None)
        timeline_path = heartbeat.path
        timeline_snapshots = heartbeat.snapshots
        heartbeat_seconds = heartbeat.interval
        print(
            f"wrote timeline to {timeline_path} "
            f"({timeline_snapshots} snapshots)",
            file=sys.stderr,
        )
    if metrics_out:
        registry.write_textfile(metrics_out)
        print(f"wrote metrics to {metrics_out}", file=sys.stderr)
        manifest_path = os.path.join(
            os.path.dirname(os.path.abspath(metrics_out)), RUN_MANIFEST_NAME
        )
        write_run_manifest(
            manifest_path,
            build_run_manifest(
                command=args.command,
                argv=list(argv),
                seed=getattr(args, "seed", None),
                scale=getattr(args, "scale", None),
                workers=getattr(args, "workers", None),
                wall_seconds=wall_seconds,
                exit_status=exit_status,
                exit_code=exit_code,
                metrics_path=metrics_out,
                trace_path=trace_out,
                trace_events=len(collector) if collector is not None else None,
                trace_dropped=collector.dropped if collector is not None else None,
                timeline_path=timeline_path,
                timeline_snapshots=timeline_snapshots,
                heartbeat_seconds=heartbeat_seconds,
            ),
        )
        print(f"wrote run manifest to {manifest_path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "detect": cmd_detect,
        "save": cmd_save,
        "bundle": cmd_bundle,
        "lifetime": cmd_lifetime,
        "report": cmd_report,
        "advise": cmd_advise,
        "watch": cmd_watch,
        "profile": cmd_profile,
        "obs-diff": cmd_obs_diff,
        "top": cmd_top,
        "obs-timeline": cmd_obs_timeline,
        "serve": cmd_serve,
        "lint": cmd_lint,
    }
    import logging
    import os
    from contextlib import ExitStack
    from time import perf_counter

    from repro.obs import (
        TraceCollector,
        configure_json_logging,
        remove_json_logging,
        set_slow_span_ms,
        span,
        use_collector,
        use_registry,
    )
    from repro.obs.timeline import TIMELINE_NAME

    log_handler = None
    if getattr(args, "log_json", False):
        log_handler = configure_json_logging(stream=sys.stderr, level=logging.DEBUG)
    collector = TraceCollector() if getattr(args, "trace_out", None) else None
    slow_span_ms = getattr(args, "slow_span_ms", None)
    previous_slow_span = (
        set_slow_span_ms(slow_span_ms) if slow_span_ms is not None else None
    )
    started = perf_counter()
    code: Optional[int] = None
    failed = False
    try:
        # Each invocation records into a fresh registry (and, with
        # --trace-out, a fresh collector) so the run artifacts describe
        # exactly this run; parallel invocations in one process — e.g.
        # tests — stay isolated.
        with ExitStack() as stack:
            registry = stack.enter_context(use_registry())
            if collector is not None:
                stack.enter_context(use_collector(collector))
            heartbeat = None
            interval = getattr(args, "heartbeat", 0.0) or 0.0
            if interval > 0:
                from repro.obs import Heartbeat, set_heartbeat

                metrics_out = getattr(args, "metrics_out", None)
                timeline_dir = (
                    os.path.dirname(os.path.abspath(metrics_out))
                    if metrics_out
                    else os.getcwd()
                )
                heartbeat = Heartbeat(
                    registry,
                    os.path.join(timeline_dir, TIMELINE_NAME),
                    interval=interval,
                    command=args.command,
                )
                set_heartbeat(heartbeat)
                heartbeat.start()
            try:
                with span("cli_command", command=args.command):
                    code = handlers[args.command](args)
            except BundleCliError as error:
                print(f"error: {error}", file=sys.stderr)
                code = 2
            except BaseException:
                failed = True
                raise
            finally:
                # Artifacts are written even when the command crashed or
                # was interrupted: a partial metrics/trace file beats none
                # for a six-month collection run that died on day 170.
                try:
                    _write_run_artifacts(
                        args,
                        argv if argv is not None else sys.argv[1:],
                        registry,
                        collector,
                        wall_seconds=perf_counter() - started,
                        exit_status="error" if failed else "ok",
                        exit_code=code,
                        heartbeat=heartbeat,
                    )
                except Exception as artifact_error:
                    print(
                        f"warning: failed writing run artifacts: {artifact_error}",
                        file=sys.stderr,
                    )
                    if not failed:
                        raise
        return code
    finally:
        if slow_span_ms is not None:
            set_slow_span_ms(previous_slow_span)
        if log_handler is not None:
            remove_json_logging(log_handler)


if __name__ == "__main__":
    raise SystemExit(main())
