"""Per-shard size and timing accounting for the parallel engine.

:class:`ShardStats` is attached to the :class:`~repro.core.pipeline.PipelineResult`
a :class:`~repro.parallel.ParallelMeasurementPipeline` run produces, and is
surfaced by ``repro detect --format json`` under ``"shard_stats"``. It
answers the operational questions sharding raises: how even was the
partition, where did the wall-clock go, and which detector dominated each
shard.

Note that the domain axis is partitioned by *join-connected components*,
not individual domains — one component can dwarf the rest (the Cloudflare
marker SAN links every managed certificate together), so skew here is
expected, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class ShardRecord:
    """Sizes, timings, and output of one shard."""

    index: int
    revocation_certificates: int = 0
    domain_certificates: int = 0
    crls: int = 0
    whois_pairs: int = 0
    snapshot_observations: int = 0
    findings: int = 0
    seconds: float = 0.0
    #: Detector key (as in ``DETECTOR_REGISTRY``) -> seconds spent.
    detector_seconds: Dict[str, float] = field(default_factory=dict)
    #: Trace events this shard recorded (0 when tracing was off).
    trace_events: int = 0

    def to_record(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "revocation_certificates": self.revocation_certificates,
            "domain_certificates": self.domain_certificates,
            "crls": self.crls,
            "whois_pairs": self.whois_pairs,
            "snapshot_observations": self.snapshot_observations,
            "findings": self.findings,
            "seconds": self.seconds,
            "detector_seconds": dict(self.detector_seconds),
            "trace_events": self.trace_events,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "ShardRecord":
        return cls(
            index=int(record["index"]),
            revocation_certificates=int(record["revocation_certificates"]),
            domain_certificates=int(record["domain_certificates"]),
            crls=int(record["crls"]),
            whois_pairs=int(record["whois_pairs"]),
            snapshot_observations=int(record["snapshot_observations"]),
            findings=int(record["findings"]),
            seconds=float(record["seconds"]),
            detector_seconds={
                str(key): float(value)
                for key, value in dict(record.get("detector_seconds", {})).items()
            },
            trace_events=int(record.get("trace_events", 0)),
        )


@dataclass
class ShardStats:
    """One parallel run's partition/execution/merge accounting."""

    num_shards: int
    workers: int
    executor: str  # "serial" or "process"
    partition_seconds: float = 0.0
    execute_seconds: float = 0.0
    merge_seconds: float = 0.0
    shards: List[ShardRecord] = field(default_factory=list)
    #: Merged obs-registry snapshot
    #: (:meth:`~repro.obs.MetricsRegistry.to_record`) across all shards,
    #: folded in shard-index order. Empty when the run predates the obs
    #: layer or was deserialized from an older record.
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def total_findings(self) -> int:
        return sum(shard.findings for shard in self.shards)

    def to_record(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "workers": self.workers,
            "executor": self.executor,
            "partition_seconds": self.partition_seconds,
            "execute_seconds": self.execute_seconds,
            "merge_seconds": self.merge_seconds,
            "shards": [shard.to_record() for shard in self.shards],
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "ShardStats":
        return cls(
            num_shards=int(record["num_shards"]),
            workers=int(record["workers"]),
            executor=str(record["executor"]),
            partition_seconds=float(record["partition_seconds"]),
            execute_seconds=float(record["execute_seconds"]),
            merge_seconds=float(record["merge_seconds"]),
            shards=[ShardRecord.from_record(r) for r in record.get("shards", [])],
            metrics=dict(record.get("metrics", {})),
        )

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(label, value) rows for the CLI text renderer."""
        rows: List[Tuple[str, object]] = [
            ("shards", self.num_shards),
            ("workers", self.workers),
            ("executor", self.executor),
            ("partition seconds", round(self.partition_seconds, 4)),
            ("execute seconds", round(self.execute_seconds, 4)),
            ("merge seconds", round(self.merge_seconds, 4)),
        ]
        for shard in self.shards:
            rows.append(
                (
                    f"shard {shard.index}",
                    f"{shard.revocation_certificates} rev-certs, "
                    f"{shard.domain_certificates} dom-certs, "
                    f"{shard.findings} findings, "
                    f"{shard.seconds:.4f}s",
                )
            )
        return rows
