"""Shard execution: the in-process serial path and the process pool.

:func:`run_shard` is the single worker entry point — it iterates the same
:data:`~repro.core.pipeline.DETECTOR_REGISTRY` the batch pipeline uses,
gated by the *original* bundle's dataset presence (carried in
:class:`WorkerConfig`), never by per-shard emptiness: a shard with zero
CRLs still runs the key-compromise detector so its zeroed join stats sum
correctly into the global accounting.

Two executors implement the same ``run(plan, config)`` contract:

* :class:`SerialExecutor` — runs shards in-process, in index order. Used
  for ``workers=1``, in tests, and as the deterministic reference.
* :class:`ProcessPoolShardExecutor` — fans shards out over a
  ``concurrent.futures.ProcessPoolExecutor``. On ``fork`` platforms the
  shard plan is published in a module global *before* the pool is created,
  so children inherit it through copy-on-write memory and tasks are
  submitted as bare shard indexes (no input pickling). On ``spawn``
  platforms it falls back to pickling ``(shard, config)`` payloads.

Shards are submitted as futures and collected ``as_completed`` — the
``detect_shards`` progress gauge advances the moment each shard lands, so
a live timeline sees inside the pool — but outcomes are slotted back into
an index-keyed list, so the merge in
:class:`~repro.parallel.pipeline.ParallelMeasurementPipeline` stays
deterministic regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.detectors.key_compromise import RevocationJoinStats
from repro.core.pipeline import DETECTOR_REGISTRY, PipelineConfig, run_detector
from repro.core.stale import StaleCertificate, StaleFindings
from repro.obs import (
    MetricsRegistry,
    TraceCollector,
    phase_progress,
    span,
    use_collector,
    use_registry,
)
from repro.parallel.sharding import BundleShard, ShardPlan
from repro.util.dates import Day


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a shard worker needs besides the shard itself."""

    revocation_cutoff_day: Optional[Day] = None
    whois_tlds: Optional[Tuple[str, ...]] = ("com", "net")
    #: Detector keys to run — decided from the ORIGINAL bundle (dataset
    #: presence), identically for every shard.
    enabled: Tuple[str, ...] = ()
    #: Whether shard workers record their spans into a local
    #: :class:`~repro.obs.TraceCollector`, snapshotted into
    #: ``ShardOutcome.trace`` — set when the parent has an active
    #: collector (``--trace-out``), so one timeline shows every worker.
    collect_trace: bool = False


@dataclass
class ShardOutcome:
    """What one shard run sends back to the parent."""

    index: int
    findings: List[StaleCertificate] = field(default_factory=list)
    revocation_stats: Optional[RevocationJoinStats] = None
    seconds: float = 0.0
    detector_seconds: Dict[str, float] = field(default_factory=dict)
    #: Snapshot (:meth:`~repro.obs.MetricsRegistry.to_record`) of the
    #: shard-local obs registry — per-detector duration histograms,
    #: finding counters, and anything instrumented code recorded while
    #: running inside the shard. Merged deterministically in the parent.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Snapshot (:meth:`~repro.obs.TraceCollector.snapshot`) of the
    #: shard-local trace buffer; empty unless ``collect_trace`` was set.
    #: The parent merges it onto pid lane ``index + 1``.
    trace: Dict[str, object] = field(default_factory=dict)


def run_shard(shard: BundleShard, config: WorkerConfig) -> ShardOutcome:
    """Run the enabled detectors over one shard (any process).

    The shard records into its own :class:`~repro.obs.MetricsRegistry`
    (scoped via :func:`~repro.obs.use_registry`, so concurrent in-process
    shard runs never interleave), snapshotted into ``outcome.metrics``.
    """
    started = perf_counter()
    findings = StaleFindings()
    outcome = ShardOutcome(index=shard.index)
    pipeline_config = PipelineConfig(
        revocation_cutoff_day=config.revocation_cutoff_day,
        whois_tlds=config.whois_tlds,
    )
    registry = MetricsRegistry()
    collector = TraceCollector() if config.collect_trace else None
    with use_registry(registry):
        with _maybe_collect(collector):
            with span("shard_run", shard=shard.index):
                for spec in DETECTOR_REGISTRY:
                    if spec.key not in config.enabled:
                        continue
                    view = shard.bundle_view(spec.key)
                    detector, elapsed = run_detector(
                        spec, view, pipeline_config, findings
                    )
                    outcome.detector_seconds[spec.key] = elapsed
                    if spec.key == "key_compromise":
                        outcome.revocation_stats = detector.stats
    outcome.findings = list(findings.all_findings())
    outcome.metrics = registry.to_record()
    if collector is not None:
        outcome.trace = collector.snapshot()
    outcome.seconds = perf_counter() - started
    return outcome


@contextmanager
def _maybe_collect(collector: Optional[TraceCollector]):
    """Scope the shard's collector when tracing; otherwise leave whatever
    collector (usually none) the calling thread already has — the serial
    executor must not capture spans away from a parent's buffer."""
    if collector is None:
        yield None
    else:
        with use_collector(collector):
            yield collector


class SerialExecutor:
    """In-process shard runner (workers=1, tests, reference runs)."""

    name = "serial"

    def run(self, plan: ShardPlan, config: WorkerConfig) -> List[ShardOutcome]:
        progress = phase_progress("detect_shards")
        progress.set_total(len(plan.shards))
        outcomes = []
        for shard in plan.shards:
            outcomes.append(run_shard(shard, config))
            progress.add(1)
        return outcomes


# Module globals inherited by forked pool workers (zero input pickling).
# Deliberate fork-channel: written once in the parent before the pool
# starts, read-only in workers, cleared in the parent's finally.
_FORK_PLAN: Optional[ShardPlan] = None  # repro-lint: disable=RL201
_FORK_CONFIG: Optional[WorkerConfig] = None  # repro-lint: disable=RL201


def _run_shard_by_index(shard_index: int) -> ShardOutcome:
    """Fork-path task: look the shard up in inherited parent memory."""
    assert _FORK_PLAN is not None and _FORK_CONFIG is not None
    return run_shard(_FORK_PLAN.shards[shard_index], _FORK_CONFIG)


def _run_shard_payload(payload: Tuple[BundleShard, WorkerConfig]) -> ShardOutcome:
    """Spawn-path task: the shard travelled by pickle."""
    shard, config = payload
    return run_shard(shard, config)


class ProcessPoolShardExecutor:
    """Fans shards out over a process pool, one task per shard."""

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers

    def run(self, plan: ShardPlan, config: WorkerConfig) -> List[ShardOutcome]:
        global _FORK_PLAN, _FORK_CONFIG
        use_fork = multiprocessing.get_start_method(allow_none=True) in (None, "fork")
        workers = min(self._workers, len(plan.shards))
        progress = phase_progress("detect_shards")
        progress.set_total(len(plan.shards))
        if use_fork:
            _FORK_PLAN, _FORK_CONFIG = plan, config
        try:
            # submit + as_completed (not pool.map) so the progress gauge
            # advances per landing shard; outcomes are slotted by index
            # to keep the downstream merge order-independent.
            slots: List[Optional[ShardOutcome]] = [None] * len(plan.shards)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if use_fork:
                    futures = {
                        pool.submit(_run_shard_by_index, index): index
                        for index in range(len(plan.shards))
                    }
                else:
                    futures = {
                        pool.submit(_run_shard_payload, (shard, config)): position
                        for position, shard in enumerate(plan.shards)
                    }
                for future in as_completed(futures):
                    outcome = future.result()
                    slots[futures[future]] = outcome
                    progress.add(1)
            outcomes = [outcome for outcome in slots if outcome is not None]
        finally:
            if use_fork:
                _FORK_PLAN = _FORK_CONFIG = None
        return outcomes
