"""Bundle partitioning for the sharded parallel detection engine.

A :class:`~repro.core.pipeline.DatasetBundle` is split into ``num_shards``
independent :class:`BundleShard` pieces such that every detector join stays
*within* a shard — running the detectors per shard and unioning the
findings provably reproduces the batch result. Two shard axes exist
because the three joins use two different keys:

* **Revocation axis** (key compromise, §4.1): the CRL/CT join key is
  (authority key id, serial), so certificates and CRLs are routed by
  ``authority_key_id``. The join is exact — every counter in
  :class:`~repro.core.detectors.key_compromise.RevocationJoinStats` sums
  across shards.
* **Domain axis** (registrant change §4.2, managed TLS §4.3): both joins
  look up certificates by registered domain (``e2ld(name) or name`` — the
  exact lookup the detectors use). A certificate links all of its e2LDs,
  so components are formed with a union-find and each *component* is
  routed to one shard; WHOIS creation pairs and DNS snapshot observations
  follow the component owning their domain key. This assumes zone apexes
  are registrable e2LDs (true for the simulator and for the paper's
  .com/.net zone files); a SAN beneath an apex then shares the apex's
  domain key and can never land in a different shard.

Shard assignment hashes the *minimum member key* of a component with
:func:`stable_hash` (BLAKE2b — Python's builtin ``hash`` is salted per
process and would break cross-process determinism). The Cloudflare marker
SAN (``sni*.cloudflaressl.com``) links every managed certificate into one
component; that skew is accepted — correctness over balance — and visible
in :class:`~repro.parallel.stats.ShardStats`.

Every shard's snapshot store keeps *all* scan days (possibly empty), so
consecutive-pair iteration and the disappearance lookahead behave exactly
as in the unsharded store.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.pipeline import DatasetBundle
from repro.dns.snapshots import DailySnapshot, DomainObservation, SnapshotStore
from repro.pki.certificate import Certificate
from repro.psl.registered import e2ld
from repro.revocation.crl import CertificateRevocationList
from repro.util.dates import Day


def stable_hash(key: str) -> int:
    """Process-stable 64-bit hash (builtin ``hash`` is salted per run)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@lru_cache(maxsize=1 << 17)
def domain_key(name: str) -> str:
    """The domain-axis routing key: exactly the detectors' lookup key.

    Memoized: snapshot apexes repeat on every scan day, so partitioning
    would otherwise re-run the PSL parse hundreds of times per name.
    """
    registrable = e2ld(name)
    return registrable if registrable is not None else name


class _UnionFind:
    """Path-compressed union-find over string keys."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def add(self, key: str) -> str:
        if key not in self._parent:
            self._parent[key] = key
        return key

    def find(self, key: str) -> str:
        self.add(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # compress
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, left: str, right: str) -> None:
        root_left, root_right = self.find(left), self.find(right)
        if root_left != root_right:
            self._parent[root_right] = root_left

    def keys(self) -> Iterator[str]:
        return iter(self._parent)


class ShardCorpus:
    """Duck-typed stand-in for :class:`~repro.ct.dedup.CertificateCorpus`.

    The detectors only call ``certificates()``, ``by_revocation_key()``
    and ``len()``; rebuilding a real corpus per shard (re-running dedup and
    the anomaly filter) would be wasted work — the parent already did it.
    """

    def __init__(self, certificates: List[Certificate]) -> None:
        self._certificates = certificates

    def certificates(self) -> Iterator[Certificate]:
        return iter(self._certificates)

    def __len__(self) -> int:
        return len(self._certificates)

    def by_revocation_key(self) -> Dict[Tuple[str, int], Certificate]:
        return {cert.revocation_key(): cert for cert in self._certificates}


def _shard_corpus(certificates):
    """The corpus stand-in for a shard's certificate list.

    Columnar row lists carry their own index-backed corpus; plain lists
    (and row lists that crossed a spawn-pickle boundary, which degrade to
    plain lists) get the materialized :class:`ShardCorpus`.
    """
    as_shard_corpus = getattr(certificates, "as_shard_corpus", None)
    if as_shard_corpus is not None:
        return as_shard_corpus()
    return ShardCorpus(certificates)


@dataclass
class BundleShard:
    """One independent slice of a dataset bundle (both axes)."""

    index: int
    revocation_certificates: List[Certificate] = field(default_factory=list)
    crls: List[CertificateRevocationList] = field(default_factory=list)
    domain_certificates: List[Certificate] = field(default_factory=list)
    whois_creation_pairs: List[Tuple[str, Day]] = field(default_factory=list)
    dns_snapshots: Optional[SnapshotStore] = None

    def bundle_view(self, detector_key: str) -> DatasetBundle:
        """A per-detector bundle view over this shard's slice.

        The revocation axis and the domain axis hold different certificate
        sets, so the view picks the corpus matching the detector's join.
        """
        if detector_key == "key_compromise":
            return DatasetBundle(
                corpus=_shard_corpus(self.revocation_certificates),  # type: ignore[arg-type]
                crls=self.crls,
            )
        return DatasetBundle(
            corpus=_shard_corpus(self.domain_certificates),  # type: ignore[arg-type]
            whois_creation_pairs=self.whois_creation_pairs,
            dns_snapshots=self.dns_snapshots,
        )

    def snapshot_observations(self) -> int:
        if self.dns_snapshots is None:
            return 0
        return sum(
            len(snapshot)
            for snapshot in (
                self.dns_snapshots.get(scan_day) for scan_day in self.dns_snapshots.days()
            )
            if snapshot is not None
        )


@dataclass
class ShardPlan:
    """The full partition, with assignment maps for invariant checking."""

    num_shards: int
    shards: List[BundleShard]
    #: authority_key_id -> shard index (revocation axis).
    revocation_assignment: Dict[str, int] = field(default_factory=dict)
    #: domain key -> shard index (domain axis; component-consistent).
    domain_assignment: Dict[str, int] = field(default_factory=dict)
    #: dedup fingerprint -> shard index, per axis.
    certificate_revocation_shard: Dict[str, int] = field(default_factory=dict)
    certificate_domain_shard: Dict[str, int] = field(default_factory=dict)


def partition_bundle(bundle: DatasetBundle, num_shards: int) -> ShardPlan:
    """Split *bundle* into ``num_shards`` join-closed shards."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    plan = ShardPlan(
        num_shards=num_shards,
        shards=[BundleShard(index=i) for i in range(num_shards)],
    )
    plan_columns = getattr(bundle.corpus, "shard_plan_columns", None)
    if plan_columns is not None:
        return _partition_columnar(bundle, plan, *plan_columns())
    certificates = list(bundle.corpus.certificates())

    # -- revocation axis: exact routing by authority key id ------------------
    for certificate in certificates:
        shard_index = plan.revocation_assignment.setdefault(
            certificate.authority_key_id,
            stable_hash(certificate.authority_key_id) % num_shards,
        )
        plan.certificate_revocation_shard[certificate.dedup_fingerprint()] = shard_index
        plan.shards[shard_index].revocation_certificates.append(certificate)
    for crl in bundle.crls:
        shard_index = plan.revocation_assignment.setdefault(
            crl.authority_key_id, stable_hash(crl.authority_key_id) % num_shards
        )
        plan.shards[shard_index].crls.append(crl)

    # -- domain axis: union-find over registered-domain join keys ------------
    components = _UnionFind()
    for certificate in certificates:
        keys = sorted(certificate.e2lds())
        for key in keys:
            components.add(key)
        for other in keys[1:]:
            components.union(keys[0], other)
    snapshot_days = _add_domain_side_keys(components, bundle)
    _assign_components(plan, components)

    for certificate in certificates:
        registrables = certificate.e2lds()
        if registrables:
            shard_index = plan.domain_assignment[min(registrables)]
        else:
            # No registrable SAN: the domain joins can never reach it, so
            # any stable assignment is correct.
            shard_index = stable_hash("cert:" + certificate.dedup_fingerprint()) % num_shards
        plan.certificate_domain_shard[certificate.dedup_fingerprint()] = shard_index
        plan.shards[shard_index].domain_certificates.append(certificate)
    _route_whois_and_dns(plan, bundle, snapshot_days)
    return plan


def _add_domain_side_keys(components: _UnionFind, bundle: DatasetBundle) -> List[Day]:
    """Register WHOIS domains and snapshot apexes; returns the scan days."""
    for domain, _creation_day in bundle.whois_creation_pairs:
        components.add(domain_key(domain))
    snapshot_days: List[Day] = []
    if bundle.dns_snapshots is not None:
        snapshot_days = bundle.dns_snapshots.days()
        for scan_day in snapshot_days:
            snapshot = bundle.dns_snapshots.get(scan_day)
            for apex in snapshot.apexes():
                components.add(domain_key(apex))
    return snapshot_days


def _assign_components(plan: ShardPlan, components: _UnionFind) -> None:
    # Route each component by its canonical (minimum) member key so the
    # assignment is independent of insertion order.
    min_member: Dict[str, str] = {}
    for key in components.keys():
        root = components.find(key)
        if root not in min_member or key < min_member[root]:
            min_member[root] = key
    for key in list(components.keys()):
        plan.domain_assignment[key] = (
            stable_hash(min_member[components.find(key)]) % plan.num_shards
        )


def _route_whois_and_dns(
    plan: ShardPlan, bundle: DatasetBundle, snapshot_days: List[Day]
) -> None:
    for domain, creation_day in bundle.whois_creation_pairs:
        shard_index = plan.domain_assignment[domain_key(domain)]
        plan.shards[shard_index].whois_creation_pairs.append((domain, creation_day))

    if bundle.dns_snapshots is not None:
        # Every shard sees every scan day (even when it owns no apexes that
        # day) so consecutive-pair diffing and the disappearance lookahead
        # keep their unsharded semantics.
        per_shard_observations: List[Dict[Day, Dict[str, DomainObservation]]] = [
            {scan_day: {} for scan_day in snapshot_days}
            for _ in range(plan.num_shards)
        ]
        for scan_day in snapshot_days:
            snapshot = bundle.dns_snapshots.get(scan_day)
            for apex in snapshot.apexes():
                shard_index = plan.domain_assignment[domain_key(apex)]
                per_shard_observations[shard_index][scan_day][apex] = snapshot.get(apex)
        for shard, observations_by_day in zip(plan.shards, per_shard_observations):
            store = SnapshotStore()
            for scan_day in snapshot_days:
                store.put(
                    DailySnapshot.from_observations(
                        scan_day, observations_by_day[scan_day]
                    )
                )
            shard.dns_snapshots = store


def _partition_columnar(
    bundle: DatasetBundle, plan: ShardPlan, akid_column, e2lds_column
) -> ShardPlan:
    """Index-only partition of a columnar bundle.

    Routing reads two columns — authority key id and the precomputed
    sorted e2LD list — so no certificate is hydrated; shards receive lazy
    row lists that hydrate inside the workers. The assignment is
    *identical* to the materialized path (same keys, same hashes), but
    the per-axis fingerprint maps stay empty: filling them is exactly the
    full-corpus hydration this path exists to avoid, and only the
    partition-invariant tests consume them.
    """
    corpus = bundle.corpus
    num_shards = plan.num_shards
    revocation_rows: List[List[int]] = [[] for _ in range(num_shards)]
    domain_rows: List[List[int]] = [[] for _ in range(num_shards)]

    # -- revocation axis: exact routing by authority key id ------------------
    for row, akid in enumerate(akid_column):
        shard_index = plan.revocation_assignment.setdefault(
            akid, stable_hash(akid) % num_shards
        )
        revocation_rows[shard_index].append(row)
    for crl in bundle.crls:
        shard_index = plan.revocation_assignment.setdefault(
            crl.authority_key_id, stable_hash(crl.authority_key_id) % num_shards
        )
        plan.shards[shard_index].crls.append(crl)

    # -- domain axis: union-find over registered-domain join keys ------------
    components = _UnionFind()
    row_e2lds: List[List[str]] = []
    for row in range(len(corpus)):
        keys = e2lds_column[row]  # sorted at write time: keys[0] is the min
        row_e2lds.append(keys)
        for key in keys:
            components.add(key)
        for other in keys[1:]:
            components.union(keys[0], other)
    snapshot_days = _add_domain_side_keys(components, bundle)
    _assign_components(plan, components)

    for row, keys in enumerate(row_e2lds):
        if keys:
            shard_index = plan.domain_assignment[keys[0]]
        else:
            # No registrable SAN: the domain joins can never reach it; route
            # by fingerprint exactly as the materialized path does (this is
            # the one per-row hydration, and such rows are rare).
            certificate = corpus.certificate_rows([row])[0]
            shard_index = (
                stable_hash("cert:" + certificate.dedup_fingerprint()) % num_shards
            )
        domain_rows[shard_index].append(row)
    _route_whois_and_dns(plan, bundle, snapshot_days)

    for shard, revocation, domain in zip(plan.shards, revocation_rows, domain_rows):
        shard.revocation_certificates = corpus.certificate_rows(revocation)
        shard.domain_certificates = corpus.certificate_rows(domain)
    return plan
