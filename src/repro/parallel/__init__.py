"""Sharded parallel detection engine.

Partitions a :class:`~repro.core.pipeline.DatasetBundle` into join-closed
shards (:mod:`~repro.parallel.sharding`), runs the Section 4 detectors per
shard — in-process or across a ``ProcessPoolExecutor``
(:mod:`~repro.parallel.executor`) — and deterministically merges the
per-shard findings and join stats back into a single
:class:`~repro.core.pipeline.PipelineResult`
(:mod:`~repro.parallel.pipeline`), proven identical to the unsharded
batch run. Per-shard sizes and timings are reported as
:class:`~repro.parallel.stats.ShardStats` on the result, and each shard's
:mod:`repro.obs` registry snapshot is merged (order-independently, via
:func:`merge_shard_metrics`) into the process-wide registry so sharded
runs expose the same metric series as serial runs. When the parent has an
active :class:`~repro.obs.TraceCollector` (``--trace-out``), each shard
also snapshots its span trace, merged onto deterministic pid lanes by
:func:`merge_shard_traces` so one exported timeline shows every worker.
"""

from repro.parallel.executor import (
    ProcessPoolShardExecutor,
    SerialExecutor,
    ShardOutcome,
    WorkerConfig,
    run_shard,
)
from repro.parallel.pipeline import (
    ParallelMeasurementPipeline,
    canonical_order_key,
    merge_shard_metrics,
    merge_shard_traces,
)
from repro.parallel.sharding import (
    BundleShard,
    ShardCorpus,
    ShardPlan,
    domain_key,
    partition_bundle,
    stable_hash,
)
from repro.parallel.stats import ShardRecord, ShardStats

__all__ = [
    "ParallelMeasurementPipeline",
    "canonical_order_key",
    "merge_shard_metrics",
    "merge_shard_traces",
    "partition_bundle",
    "ShardPlan",
    "BundleShard",
    "ShardCorpus",
    "domain_key",
    "stable_hash",
    "SerialExecutor",
    "ProcessPoolShardExecutor",
    "ShardOutcome",
    "WorkerConfig",
    "run_shard",
    "ShardRecord",
    "ShardStats",
]
