"""Sharded parallel detection engine.

Partitions a :class:`~repro.core.pipeline.DatasetBundle` into join-closed
shards (:mod:`~repro.parallel.sharding`), runs the Section 4 detectors per
shard — in-process or across a ``ProcessPoolExecutor``
(:mod:`~repro.parallel.executor`) — and deterministically merges the
per-shard findings and join stats back into a single
:class:`~repro.core.pipeline.PipelineResult`
(:mod:`~repro.parallel.pipeline`), proven identical to the unsharded
batch run. Per-shard sizes and timings are reported as
:class:`~repro.parallel.stats.ShardStats` on the result.
"""

from repro.parallel.executor import (
    ProcessPoolShardExecutor,
    SerialExecutor,
    ShardOutcome,
    WorkerConfig,
    run_shard,
)
from repro.parallel.pipeline import ParallelMeasurementPipeline, canonical_order_key
from repro.parallel.sharding import (
    BundleShard,
    ShardCorpus,
    ShardPlan,
    domain_key,
    partition_bundle,
    stable_hash,
)
from repro.parallel.stats import ShardRecord, ShardStats

__all__ = [
    "ParallelMeasurementPipeline",
    "canonical_order_key",
    "partition_bundle",
    "ShardPlan",
    "BundleShard",
    "ShardCorpus",
    "domain_key",
    "stable_hash",
    "SerialExecutor",
    "ProcessPoolShardExecutor",
    "ShardOutcome",
    "WorkerConfig",
    "run_shard",
    "ShardRecord",
    "ShardStats",
]
