"""The sharded parallel measurement pipeline.

``ParallelMeasurementPipeline(bundle, workers=N).run()`` produces a
:class:`~repro.core.pipeline.PipelineResult` whose findings are
finding-for-finding identical to ``MeasurementPipeline(bundle).run()`` —
the sharding (:mod:`repro.parallel.sharding`) keeps every join inside a
shard, and the merge below is deterministic:

* outcomes arrive in shard-index order (both executors preserve it);
* merged findings are sorted by a canonical key, so the result is
  byte-stable across shard counts and worker counts (the batch pipeline
  groups findings by detector instead — *set* equality is the invariant
  shared by both engines);
* per-shard :class:`RevocationJoinStats` are summed (the revocation axis
  partitions CRL entries exactly), and the merged stats is ``None``
  precisely when the original bundle has no CRLs — matching batch;
* per-shard obs-registry snapshots (``ShardOutcome.metrics``) are merged
  in shard-index order — counters add, histograms add bucketwise, gauges
  take the max, so the merge is order-independent in value — folded into
  the process-wide :func:`~repro.obs.get_registry`, and attached to
  :class:`~repro.parallel.stats.ShardStats` for the JSON output;
* per-shard trace snapshots (``ShardOutcome.trace``, recorded when the
  parent has an active :class:`~repro.obs.TraceCollector`) are merged
  onto deterministic pid lanes — shard ``i`` is lane ``i + 1`` — so a
  single exported Chrome trace shows every worker's spans on one
  timeline (:func:`merge_shard_traces`).
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    DETECTOR_REGISTRY,
    DatasetBundle,
    PipelineResult,
    merge_revocation_stats,
)
from repro.core.stale import StaleCertificate, StaleFindings
from repro.obs import MetricsRegistry, TraceCollector, get_collector, get_registry, span
from repro.parallel.executor import (
    ProcessPoolShardExecutor,
    SerialExecutor,
    ShardOutcome,
    WorkerConfig,
)
from repro.parallel.sharding import partition_bundle
from repro.parallel.stats import ShardRecord, ShardStats
from repro.util.dates import Day


def merge_shard_metrics(outcomes: Sequence[ShardOutcome]) -> MetricsRegistry:
    """Fold per-shard registry snapshots into one registry.

    Outcomes are walked in the given (shard-index) order, but the merge
    operations are commutative and associative — counters add, histogram
    buckets add, gauges take the max — so any fold order yields the same
    totals.
    """
    merged = MetricsRegistry()
    for outcome in outcomes:
        if outcome.metrics:
            merged.merge(MetricsRegistry.from_record(outcome.metrics))
    return merged


def merge_shard_traces(
    outcomes: Sequence[ShardOutcome], collector: Optional[TraceCollector]
) -> int:
    """Fold per-shard trace snapshots onto deterministic pid lanes.

    Shard ``i`` becomes lane ``i + 1`` (lane 0 is the coordinating
    process), so the merged timeline is stable run-over-run even though
    worker OS pids are not. Returns the number of events merged; a
    ``None`` collector (tracing off) is a no-op.
    """
    if collector is None:
        return 0
    merged = 0
    for outcome in outcomes:  # shard-index order
        if outcome.trace:
            collector.extend(outcome.trace, lane=outcome.index + 1)
            merged += len(outcome.trace.get("events", []))
    return merged


def canonical_order_key(finding: StaleCertificate) -> Tuple[str, str, Day, str, str]:
    """Total order on findings, independent of detection order."""
    return (
        finding.staleness_class.value,
        finding.certificate.dedup_fingerprint(),
        finding.invalidation_day,
        finding.affected_domain or "",
        finding.detail or "",
    )


class ParallelMeasurementPipeline:
    """Shard the bundle, run detectors per shard, merge deterministically."""

    def __init__(
        self,
        bundle: DatasetBundle,
        workers: int = 1,
        num_shards: Optional[int] = None,
        revocation_cutoff_day: Optional[Day] = None,
        whois_tlds: Optional[Sequence[str]] = ("com", "net"),
        executor=None,
    ) -> None:
        """``num_shards`` defaults to ``workers``; pass an ``executor``
        (anything with ``run(plan, config) -> List[ShardOutcome]``) to
        override the serial/process choice — tests use this to exercise
        multi-shard merging without spawning processes."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._bundle = bundle
        self._workers = workers
        self._num_shards = num_shards if num_shards is not None else workers
        if self._num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self._num_shards}")
        self._config = WorkerConfig(
            revocation_cutoff_day=revocation_cutoff_day,
            whois_tlds=tuple(whois_tlds) if whois_tlds is not None else None,
            enabled=tuple(
                spec.key for spec in DETECTOR_REGISTRY if spec.applies(bundle)
            ),
        )
        self._executor = executor

    def run(self) -> PipelineResult:
        # Bind trace collection at run time: shard workers record local
        # trace buffers exactly when the parent has an active collector.
        config = self._config
        parent_collector = get_collector()
        if parent_collector is not None and not config.collect_trace:
            config = replace(config, collect_trace=True)

        partition_started = perf_counter()
        with span("shard_partition", shards=self._num_shards):
            plan = partition_bundle(self._bundle, self._num_shards)
        partition_seconds = perf_counter() - partition_started

        executor = self._executor
        if executor is None:
            executor = (
                SerialExecutor()
                if self._workers == 1
                else ProcessPoolShardExecutor(self._workers)
            )
        execute_started = perf_counter()
        with span("shard_execute", workers=self._workers, shards=plan.num_shards):
            outcomes = executor.run(plan, config)
        execute_seconds = perf_counter() - execute_started

        merge_started = perf_counter()
        with span("shard_merge"):
            merged: List[StaleCertificate] = []
            for outcome in outcomes:  # shard-index order
                merged.extend(outcome.findings)
            merged.sort(key=canonical_order_key)
            findings = StaleFindings()
            findings.extend(merged)
            revocation_stats = None
            if "key_compromise" in config.enabled:
                revocation_stats = merge_revocation_stats(
                    [
                        o.revocation_stats
                        for o in outcomes
                        if o.revocation_stats is not None
                    ]
                )
            merged_metrics = merge_shard_metrics(outcomes)
            get_registry().merge(merged_metrics)
            merge_shard_traces(outcomes, parent_collector)
        merge_seconds = perf_counter() - merge_started

        return PipelineResult(
            findings=findings,
            revocation_stats=revocation_stats,
            windows=dict(self._bundle.windows),
            shard_stats=self._shard_stats(
                plan,
                outcomes,
                executor,
                partition_seconds,
                execute_seconds,
                merge_seconds,
                merged_metrics,
            ),
        )

    def _shard_stats(
        self,
        plan,
        outcomes: List[ShardOutcome],
        executor,
        partition_seconds: float,
        execute_seconds: float,
        merge_seconds: float,
        merged_metrics: MetricsRegistry,
    ) -> ShardStats:
        stats = ShardStats(
            num_shards=plan.num_shards,
            workers=self._workers,
            executor=getattr(executor, "name", type(executor).__name__),
            partition_seconds=partition_seconds,
            execute_seconds=execute_seconds,
            merge_seconds=merge_seconds,
            metrics=merged_metrics.to_record(),
        )
        for shard, outcome in zip(plan.shards, outcomes):
            stats.shards.append(
                ShardRecord(
                    index=shard.index,
                    revocation_certificates=len(shard.revocation_certificates),
                    domain_certificates=len(shard.domain_certificates),
                    crls=len(shard.crls),
                    whois_pairs=len(shard.whois_creation_pairs),
                    snapshot_observations=shard.snapshot_observations(),
                    findings=len(outcome.findings),
                    seconds=outcome.seconds,
                    detector_seconds=dict(outcome.detector_seconds),
                    trace_events=len(outcome.trace.get("events", []))
                    if outcome.trace
                    else 0,
                )
            )
        return stats
