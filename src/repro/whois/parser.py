"""WHOIS text rendering and parsing.

Real WHOIS responses are free text whose field names and date formats differ
per registrar, and registrant contact lines are increasingly GDPR-redacted
(paper Section 4.2). The renderer reproduces several registrar "dialects" so
the parser — and the paper's decision to trust only thin registry fields —
can be exercised against realistic inconsistency.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Dict, Optional

from repro.util.dates import Day, day_to_date
from repro.whois.lifecycle import DomainState
from repro.whois.record import ThinWhoisRecord

#: Field-name variants seen across registrar WHOIS dialects.
_CREATION_KEYS = ("creation date", "created on", "registered on", "domain registration date")
_EXPIRY_KEYS = ("registry expiry date", "expiration date", "expires on", "paid-till")
_UPDATED_KEYS = ("updated date", "last updated on", "last modified")
_REGISTRAR_KEYS = ("registrar", "sponsoring registrar")

_DIALECTS = {
    "verisign": {
        "creation": "Creation Date",
        "expiry": "Registry Expiry Date",
        "updated": "Updated Date",
        "registrar": "Registrar",
        "date_format": "%Y-%m-%dT00:00:00Z",
    },
    "legacy": {
        "creation": "Created On",
        "expiry": "Expiration Date",
        "updated": "Last Updated On",
        "registrar": "Sponsoring Registrar",
        "date_format": "%d-%b-%Y",
    },
    "terse": {
        "creation": "created on",
        "expiry": "expires on",
        "updated": "last modified",
        "registrar": "registrar",
        "date_format": "%Y/%m/%d",
    },
}


def render_whois_text(
    record: ThinWhoisRecord,
    dialect: str = "verisign",
    gdpr_redacted: bool = False,
    registrant_name: Optional[str] = None,
) -> str:
    """Render a thin record as registrar-dialect WHOIS text.

    When ``gdpr_redacted`` is set (or no registrant name is supplied) the
    contact block carries the standard redaction placeholder.
    """
    spec = _DIALECTS.get(dialect)
    if spec is None:
        raise ValueError(f"unknown WHOIS dialect {dialect!r}; options: {sorted(_DIALECTS)}")
    fmt = spec["date_format"]
    lines = [
        f"Domain Name: {record.domain.upper()}",
        f"{spec['registrar']}: {record.registrar}",
        f"{spec['creation']}: {_fmt(record.creation_date, fmt)}",
        f"{spec['expiry']}: {_fmt(record.expiration_date, fmt)}",
        f"{spec['updated']}: {_fmt(record.updated_date, fmt)}",
        f"Domain Status: {_status_text(record.status)}",
    ]
    for ns in record.nameservers:
        lines.append(f"Name Server: {ns.upper()}")
    if gdpr_redacted or registrant_name is None:
        lines.append("Registrant Name: REDACTED FOR PRIVACY")
        lines.append("Registrant Organization: REDACTED FOR PRIVACY")
    else:
        lines.append(f"Registrant Name: {registrant_name}")
    lines.append(">>> Last update of whois database <<<")
    return "\n".join(lines)


def parse_whois_text(text: str) -> Dict[str, object]:
    """Parse any dialect back into a field dict.

    Returns keys ``domain``, ``registrar``, ``creation_date``,
    ``expiration_date``, ``updated_date`` (Day ordinals or None),
    ``nameservers`` (list), and ``redacted`` (bool). Unparseable dates are
    left as None rather than raising — mirroring how bulk-WHOIS pipelines
    must tolerate junk.
    """
    fields: Dict[str, object] = {
        "domain": None,
        "registrar": None,
        "creation_date": None,
        "expiration_date": None,
        "updated_date": None,
        "nameservers": [],
        "redacted": False,
    }
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or ":" not in line:
            continue
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if key == "domain name":
            fields["domain"] = value.lower()
        elif key in _REGISTRAR_KEYS:
            fields["registrar"] = value
        elif key in _CREATION_KEYS:
            fields["creation_date"] = _parse_any_date(value)
        elif key in _EXPIRY_KEYS:
            fields["expiration_date"] = _parse_any_date(value)
        elif key in _UPDATED_KEYS:
            fields["updated_date"] = _parse_any_date(value)
        elif key == "name server":
            fields["nameservers"].append(value.lower())
        elif key.startswith("registrant") and "redacted" in value.lower():
            fields["redacted"] = True
    return fields


_DATE_PATTERNS = (
    "%Y-%m-%dT%H:%M:%SZ",
    "%Y-%m-%d",
    "%d-%b-%Y",
    "%Y/%m/%d",
    "%d.%m.%Y",
)


def _parse_any_date(value: str) -> Optional[Day]:
    cleaned = re.sub(r"\s+UTC$", "", value.strip())
    for pattern in _DATE_PATTERNS:
        try:
            return _dt.datetime.strptime(cleaned, pattern).date().toordinal()
        except ValueError:
            continue
    return None


def _fmt(d: Day, pattern: str) -> str:
    return day_to_date(d).strftime(pattern)


def _status_text(state: DomainState) -> str:
    mapping = {
        DomainState.ACTIVE: "clientTransferProhibited",
        DomainState.AUTO_RENEW_GRACE: "autoRenewPeriod",
        DomainState.REDEMPTION: "redemptionPeriod",
        DomainState.PENDING_DELETE: "pendingDelete",
        DomainState.RELEASED: "available",
    }
    return mapping[state]
