"""Bulk WHOIS crawler.

The paper's registrant-change data comes from "bulk historical WHOIS data
collected by an industry partner": periodic crawls of the registry, each
producing a snapshot of thin records. This module simulates that collection
process against the registry — including per-crawl record loss and the
restriction to operated TLDs — and reduces a crawl series to the
(domain, creation date) pairs the detector consumes.

A crawl series also demonstrates the observability limitation of §4.4:
spans that begin and end entirely between two crawls are invisible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.util.dates import Day
from repro.util.rng import RngStream
from repro.whois.record import WhoisSnapshot
from repro.whois.registry import Registry


@dataclass
class CrawlStats:
    """Accounting for one crawl series."""

    crawls: int = 0
    records_collected: int = 0
    records_lost: int = 0


class BulkWhoisCrawler:
    """Periodically crawls a registry into :class:`WhoisSnapshot` series."""

    def __init__(
        self,
        registry: Registry,
        tlds: Optional[Sequence[str]] = None,
        loss_rate: float = 0.0,
        rng: Optional[RngStream] = None,
    ) -> None:
        if loss_rate and rng is None:
            raise ValueError("loss_rate > 0 requires an RngStream")
        self._registry = registry
        self._tlds = tuple(t.lower() for t in tlds) if tlds is not None else None
        self._loss_rate = loss_rate
        self._rng = rng
        self.snapshots: List[WhoisSnapshot] = []
        self.stats = CrawlStats()

    def crawl(self, crawl_day: Day) -> WhoisSnapshot:
        """One full pass over the registry as of *crawl_day*."""
        snapshot = WhoisSnapshot(day=crawl_day)
        for domain in self._registry.all_domains():
            if self._tlds is not None and domain.rsplit(".", 1)[-1] not in self._tlds:
                continue
            record = self._registry.whois(domain, crawl_day)
            if record is None:
                continue
            if self._loss_rate and self._rng and self._rng.bernoulli(self._loss_rate):
                self.stats.records_lost += 1
                continue
            snapshot.add(record)
            self.stats.records_collected += 1
        self.snapshots.append(snapshot)
        self.stats.crawls += 1
        return snapshot

    def crawl_series(self, first_day: Day, last_day: Day, interval_days: int = 30) -> int:
        """Crawl every *interval_days* across the window; returns crawl count."""
        if interval_days <= 0:
            raise ValueError("interval must be positive")
        count = 0
        current = first_day
        while current <= last_day:
            self.crawl(current)
            count += 1
            current += interval_days
        return count

    def creation_pairs(self) -> List[Tuple[str, Day]]:
        """Distinct (domain, creation date) pairs across all crawls — the
        exact dataset the paper's detector consumes."""
        pairs: Set[Tuple[str, Day]] = set()
        for snapshot in self.snapshots:
            pairs.update(snapshot.creation_pairs())
        return sorted(pairs)

    def observed_domains(self) -> Set[str]:
        observed: Set[str] = set()
        for snapshot in self.snapshots:
            observed.update(record.domain for record in snapshot.records)
        return observed
