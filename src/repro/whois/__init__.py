"""WHOIS substrate: thin records, registry database, domain lifecycle.

The registrant-change detector (paper Section 4.2) relies on one signal: the
registry-controlled *Creation Date* in thin WHOIS records, which only changes
when a domain is deleted and subsequently re-registered. This package models
the registry database, the post-expiration lifecycle (auto-renew grace,
redemption, pending delete, release, drop-catch), and WHOIS text rendering
with the real-world inconsistencies (per-registrar formats, GDPR redaction)
that motivated the paper's thin-record-only methodology.
"""

from repro.whois.record import ThinWhoisRecord, WhoisSnapshot
from repro.whois.lifecycle import (
    AUTO_RENEW_GRACE_DAYS,
    PENDING_DELETE_DAYS,
    REDEMPTION_DAYS,
    DomainState,
    LifecycleEvent,
    LifecycleEventType,
)
from repro.whois.registry import Registration, Registry
from repro.whois.parser import parse_whois_text, render_whois_text
from repro.whois.crawler import BulkWhoisCrawler, CrawlStats

__all__ = [
    "ThinWhoisRecord",
    "WhoisSnapshot",
    "AUTO_RENEW_GRACE_DAYS",
    "PENDING_DELETE_DAYS",
    "REDEMPTION_DAYS",
    "DomainState",
    "LifecycleEvent",
    "LifecycleEventType",
    "Registration",
    "Registry",
    "parse_whois_text",
    "render_whois_text",
    "BulkWhoisCrawler",
    "CrawlStats",
]
