"""Domain registration lifecycle (paper Sections 2.1, 4.4).

The post-expiration timeline modelled here follows the gTLD lifecycle the
paper references ([50, 53]): a registration that is not renewed passes
through a ~45-day auto-renew grace period, a 30-day redemption period, and a
5-day pending-delete window before the registry releases the name for public
re-registration (including drop-catch services). Only deletion followed by
re-registration resets the registry Creation Date — the signal the paper's
detector keys on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.util.dates import Day

#: Days after expiration during which the registrant can renew normally.
AUTO_RENEW_GRACE_DAYS = 45
#: Days of redemption (restore possible, with fee) after the grace period.
REDEMPTION_DAYS = 30
#: Days in pending-delete before the registry releases the name.
PENDING_DELETE_DAYS = 5


class DomainState(enum.Enum):
    """Registry-visible state of a domain name."""

    ACTIVE = "active"
    AUTO_RENEW_GRACE = "auto_renew_grace"
    REDEMPTION = "redemption"
    PENDING_DELETE = "pending_delete"
    RELEASED = "released"  # deleted; available for public registration


class LifecycleEventType(enum.Enum):
    """Events a registration can undergo, with staleness relevance.

    ``TRANSFER`` covers the paper's registrant-change cases 1 and 2
    (intra/inter-registrar transfer and pre-release transfer), which do NOT
    reset the creation date and are therefore invisible to the paper's
    detector — the simulator emits them so the recall ablation can quantify
    what the conservative method misses.
    """

    REGISTERED = "registered"
    RENEWED = "renewed"
    EXPIRED = "expired"
    RESTORED = "restored"  # renewal during grace/redemption
    TRANSFERRED = "transferred"  # new registrant, same creation date
    DELETED = "deleted"  # released by the registry
    RE_REGISTERED = "re_registered"  # new creation date, possibly new owner


@dataclass(frozen=True)
class LifecycleEvent:
    """One dated lifecycle transition for a domain."""

    domain: str
    event_type: LifecycleEventType
    day: Day
    registrant_id: Optional[str] = None  # owner after the event, if any
    previous_registrant_id: Optional[str] = None

    @property
    def changes_registrant(self) -> bool:
        return (
            self.registrant_id is not None
            and self.previous_registrant_id is not None
            and self.registrant_id != self.previous_registrant_id
        )


def state_on(expiration_day: Day, query_day: Day, deleted: bool = False) -> DomainState:
    """Derive a domain's lifecycle state on *query_day* from its expiration.

    Assumes no restore occurred; the registry tracks restores explicitly and
    only calls this for un-renewed registrations.
    """
    if deleted:
        return DomainState.RELEASED
    if query_day <= expiration_day:
        return DomainState.ACTIVE
    days_past = query_day - expiration_day
    if days_past <= AUTO_RENEW_GRACE_DAYS:
        return DomainState.AUTO_RENEW_GRACE
    if days_past <= AUTO_RENEW_GRACE_DAYS + REDEMPTION_DAYS:
        return DomainState.REDEMPTION
    if days_past <= AUTO_RENEW_GRACE_DAYS + REDEMPTION_DAYS + PENDING_DELETE_DAYS:
        return DomainState.PENDING_DELETE
    return DomainState.RELEASED


def release_day(expiration_day: Day) -> Day:
    """First day the name is publicly re-registerable after expiring."""
    return expiration_day + AUTO_RENEW_GRACE_DAYS + REDEMPTION_DAYS + PENDING_DELETE_DAYS + 1
