"""Registry database: registrations, renewals, transfers, re-registration.

Plays the role of Verisign for the simulated TLDs. The registry is the
ground-truth owner of creation/expiration dates; it emits
:class:`~repro.whois.lifecycle.LifecycleEvent` records that the ecosystem
simulator and the recall-ablation benches consume, and serves thin WHOIS
records for any (domain, day) query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.psl.registered import DomainName
from repro.util.dates import Day
from repro.whois.lifecycle import (
    DomainState,
    LifecycleEvent,
    LifecycleEventType,
    release_day,
    state_on,
)
from repro.whois.record import ThinWhoisRecord


@dataclass
class Registration:
    """One continuous registration span of a domain (creation → deletion)."""

    domain: str
    registrant_id: str
    registrar: str
    creation_date: Day
    expiration_date: Day
    updated_date: Day
    deleted_on: Optional[Day] = None
    registrant_history: List[Tuple[Day, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.registrant_history:
            self.registrant_history.append((self.creation_date, self.registrant_id))

    def state_on(self, query_day: Day) -> DomainState:
        deleted = self.deleted_on is not None and query_day >= self.deleted_on
        return state_on(self.expiration_date, query_day, deleted=deleted)

    def registrant_on(self, query_day: Day) -> Optional[str]:
        """Ground-truth owner on a day (None before creation / after delete)."""
        if query_day < self.creation_date:
            return None
        if self.deleted_on is not None and query_day >= self.deleted_on:
            return None
        owner = None
        for change_day, registrant in self.registrant_history:
            if change_day <= query_day:
                owner = registrant
            else:
                break
        return owner


class Registry:
    """Registry database for all simulated TLDs it operates."""

    def __init__(self, operated_tlds: Tuple[str, ...] = ("com", "net")) -> None:
        self.operated_tlds = tuple(t.lower() for t in operated_tlds)
        self._registrations: Dict[str, List[Registration]] = {}
        self._events: List[LifecycleEvent] = []

    # -- mutations -----------------------------------------------------------

    def register(
        self,
        domain: str,
        registrant_id: str,
        registrar: str,
        creation_day: Day,
        term_days: int = 365,
    ) -> Registration:
        """Create a brand-new or re-registered registration."""
        name = DomainName(domain).name
        spans = self._registrations.setdefault(name, [])
        current = spans[-1] if spans else None
        if current is not None and current.deleted_on is None:
            raise ValueError(f"{name} is already registered")
        if current is not None and creation_day < current.deleted_on:
            raise ValueError(
                f"{name} cannot be re-registered on {creation_day}; "
                f"not deleted until {current.deleted_on}"
            )
        registration = Registration(
            domain=name,
            registrant_id=registrant_id,
            registrar=registrar,
            creation_date=creation_day,
            expiration_date=creation_day + term_days,
            updated_date=creation_day,
        )
        spans.append(registration)
        event_type = (
            LifecycleEventType.RE_REGISTERED if current is not None else LifecycleEventType.REGISTERED
        )
        self._emit(
            LifecycleEvent(
                domain=name,
                event_type=event_type,
                day=creation_day,
                registrant_id=registrant_id,
                previous_registrant_id=current.registrant_id if current else None,
            )
        )
        return registration

    def renew(self, domain: str, renew_day: Day, term_days: int = 365) -> Registration:
        """Extend the current registration (allowed through redemption)."""
        registration = self._require_current(domain)
        state = registration.state_on(renew_day)
        if state in (DomainState.PENDING_DELETE, DomainState.RELEASED):
            raise ValueError(f"{domain} cannot be renewed in state {state.value}")
        restored = state in (DomainState.AUTO_RENEW_GRACE, DomainState.REDEMPTION)
        # Renewal (and grace/redemption restore) extends from the original
        # expiration date, per registry policy — the registrant does not gain
        # free days by renewing late.
        registration.expiration_date = registration.expiration_date + term_days
        registration.updated_date = renew_day
        self._emit(
            LifecycleEvent(
                domain=registration.domain,
                event_type=LifecycleEventType.RESTORED if restored else LifecycleEventType.RENEWED,
                day=renew_day,
                registrant_id=registration.registrant_id,
            )
        )
        return registration

    def transfer(self, domain: str, new_registrant_id: str, transfer_day: Day,
                 new_registrar: Optional[str] = None) -> Registration:
        """Change ownership without resetting the creation date.

        This is the stealth registrant change the paper's WHOIS method cannot
        see (Section 4.4, "Domain registrant tracking").
        """
        registration = self._require_current(domain)
        if registration.state_on(transfer_day) is DomainState.RELEASED:
            raise ValueError(f"{domain} is released; re-register instead")
        previous = registration.registrant_id
        registration.registrant_id = new_registrant_id
        registration.registrant_history.append((transfer_day, new_registrant_id))
        registration.updated_date = transfer_day
        if new_registrar:
            registration.registrar = new_registrar
        self._emit(
            LifecycleEvent(
                domain=registration.domain,
                event_type=LifecycleEventType.TRANSFERRED,
                day=transfer_day,
                registrant_id=new_registrant_id,
                previous_registrant_id=previous,
            )
        )
        return registration

    def delete(self, domain: str, delete_day: Day) -> Registration:
        """Registry release after pending-delete (or registrant-requested)."""
        registration = self._require_current(domain)
        registration.deleted_on = delete_day
        registration.updated_date = delete_day
        self._emit(
            LifecycleEvent(
                domain=registration.domain,
                event_type=LifecycleEventType.DELETED,
                day=delete_day,
                previous_registrant_id=registration.registrant_id,
            )
        )
        return registration

    def expire_and_release(self, domain: str) -> Day:
        """Run the un-renewed domain through the full post-expiration
        timeline; returns the day the name became publicly available."""
        registration = self._require_current(domain)
        released = release_day(registration.expiration_date)
        self.delete(domain, released)
        return released

    # -- queries ---------------------------------------------------------------

    def current(self, domain: str) -> Optional[Registration]:
        spans = self._registrations.get(DomainName(domain).name, [])
        if spans and spans[-1].deleted_on is None:
            return spans[-1]
        return None

    def spans(self, domain: str) -> List[Registration]:
        """All historical registration spans of the name, oldest first."""
        return list(self._registrations.get(DomainName(domain).name, []))

    def all_domains(self) -> Iterator[str]:
        return iter(sorted(self._registrations))

    def registrant_on(self, domain: str, query_day: Day) -> Optional[str]:
        """Ground-truth owner of the name on a day across all spans."""
        for span in self._registrations.get(DomainName(domain).name, []):
            owner = span.registrant_on(query_day)
            if owner is not None:
                return owner
        return None

    def whois(self, domain: str, query_day: Day) -> Optional[ThinWhoisRecord]:
        """Thin WHOIS answer as it would appear on *query_day*."""
        name = DomainName(domain).name
        answer: Optional[ThinWhoisRecord] = None
        for span in self._registrations.get(name, []):
            if span.creation_date > query_day:
                break
            if span.deleted_on is not None and query_day >= span.deleted_on:
                continue
            answer = ThinWhoisRecord(
                domain=name,
                registrar=span.registrar,
                creation_date=span.creation_date,
                expiration_date=span.expiration_date,
                updated_date=min(span.updated_date, query_day),
                status=span.state_on(query_day),
            )
        return answer

    def events(self) -> List[LifecycleEvent]:
        return list(self._events)

    def creation_pairs(self) -> List[Tuple[str, Day]]:
        """Every (domain, creation date) pair across all spans — the exact
        dataset shape the paper extracts from bulk WHOIS."""
        pairs: List[Tuple[str, Day]] = []
        for spans in self._registrations.values():
            for span in spans:
                pairs.append((span.domain, span.creation_date))
        return pairs

    def _require_current(self, domain: str) -> Registration:
        registration = self.current(domain)
        if registration is None:
            raise KeyError(f"{domain} has no active registration")
        return registration

    def _emit(self, event: LifecycleEvent) -> None:
        self._events.append(event)
