"""Thin WHOIS records.

A "thin" record contains only the registry-controlled fields (domain,
registrar, nameservers, creation / expiration / updated dates, status). The
paper restricts itself to these fields because they are reliable for
Verisign-operated .com/.net, unlike registrar-supplied registrant contact
data which is inconsistently formatted and GDPR-redacted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.psl.registered import DomainName
from repro.util.dates import Day, day_to_iso, parse_day
from repro.whois.lifecycle import DomainState


@dataclass(frozen=True)
class ThinWhoisRecord:
    """Registry-controlled WHOIS fields for one domain at one point in time."""

    domain: str
    registrar: str
    creation_date: Day
    expiration_date: Day
    updated_date: Day
    status: DomainState = DomainState.ACTIVE
    nameservers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "domain", DomainName(self.domain).name)
        if self.expiration_date < self.creation_date:
            raise ValueError(
                f"{self.domain}: expiration {self.expiration_date} precedes "
                f"creation {self.creation_date}"
            )

    def creation_pair(self) -> Tuple[str, Day]:
        """The (domain, registry creation date) pair the paper records."""
        return (self.domain, self.creation_date)

    def to_record(self) -> Dict[str, Any]:
        return {
            "domain": self.domain,
            "registrar": self.registrar,
            "creation_date": day_to_iso(self.creation_date),
            "expiration_date": day_to_iso(self.expiration_date),
            "updated_date": day_to_iso(self.updated_date),
            "status": self.status.value,
            "nameservers": list(self.nameservers),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ThinWhoisRecord":
        return cls(
            domain=record["domain"],
            registrar=record["registrar"],
            creation_date=parse_day(record["creation_date"]),
            expiration_date=parse_day(record["expiration_date"]),
            updated_date=parse_day(record["updated_date"]),
            status=DomainState(record["status"]),
            nameservers=tuple(record.get("nameservers", ())),
        )


@dataclass
class WhoisSnapshot:
    """A dated bulk-WHOIS collection (one crawl of the registry).

    The paper's partner dataset is a time series of such crawls; the
    registrant-change detector only needs the union of (domain, creation
    date) pairs across crawls.
    """

    day: Day
    records: List[ThinWhoisRecord] = field(default_factory=list)

    def add(self, record: ThinWhoisRecord) -> None:
        self.records.append(record)

    def creation_pairs(self) -> List[Tuple[str, Day]]:
        return [record.creation_pair() for record in self.records]

    def find(self, domain: str) -> Optional[ThinWhoisRecord]:
        normalized = DomainName(domain).name
        for record in self.records:
            if record.domain == normalized:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records)
