"""repro — reproduction of "Stale TLS Certificates: Investigating Precarious
Third-Party Access to Valid TLS Keys" (IMC 2023).

The package is organized as the paper's system is:

* substrates — :mod:`repro.psl`, :mod:`repro.dns`, :mod:`repro.whois`,
  :mod:`repro.pki`, :mod:`repro.ct`, :mod:`repro.revocation`,
  :mod:`repro.reputation`, :mod:`repro.popularity`;
* world generation — :mod:`repro.ecosystem` (seeded 2013–2023 simulation);
* the paper's contribution — :mod:`repro.core` (invalidation-event taxonomy,
  three stale-certificate detectors, lifetime-policy analysis);
* reporting — :mod:`repro.analysis` (every table and figure).

Quickstart::

    from repro import WorldConfig, simulate_world, MeasurementPipeline

    world = simulate_world(WorldConfig().scaled(0.1))
    result = MeasurementPipeline(
        world.to_bundle(),
        revocation_cutoff_day=world.config.timeline.revocation_cutoff,
    ).run()
    for row in result.aggregate_table():
        print(row.staleness_class.value, row.stale_certificates)
"""

from repro.core import (
    KeyCompromiseDetector,
    LifetimePolicySimulator,
    ManagedTlsDetector,
    MeasurementPipeline,
    PipelineResult,
    RegistrantChangeDetector,
    StaleCertificate,
    StaleFindings,
    StalenessClass,
)
from repro.core.detectors import Detector
from repro.core.pipeline import DatasetBundle
from repro.ecosystem import WorldConfig, WorldDatasets, WorldSimulator, simulate_world
from repro.parallel import ParallelMeasurementPipeline

__version__ = "1.0.0"

__all__ = [
    "Detector",
    "KeyCompromiseDetector",
    "LifetimePolicySimulator",
    "ManagedTlsDetector",
    "MeasurementPipeline",
    "ParallelMeasurementPipeline",
    "PipelineResult",
    "RegistrantChangeDetector",
    "StaleCertificate",
    "StaleFindings",
    "StalenessClass",
    "DatasetBundle",
    "WorldConfig",
    "WorldDatasets",
    "WorldSimulator",
    "simulate_world",
    "__version__",
]
