"""Performance guard — warm-index queries must stay sub-millisecond-ish.

Not a paper experiment: the query service's promise is that once the
:class:`~repro.serve.index.FindingsIndex` is built, answering "is this
domain exposed?" (and the aggregate/survival/cap shapes) is dict/bisect
work with zero per-request pipeline code. A load generator replays
thousands of mixed queries — domain hits and misses, all three aggregate
axes, survival slices, cap grids, and error-model probes — through the
WSGI callable (no sockets) and gates the p99 per-request latency.

The first pass over the query mix warms the memoized cap evaluations;
the measured passes then see the service in its steady serving state,
which is what the gate is about.
"""

from __future__ import annotations

from time import perf_counter

from repro.analysis.report import render_table
from repro.serve import FindingsIndex, call_app, create_app
from repro.util.rng import RngStream
from repro.util.stats import percentile

#: Queries replayed per measured pass.
QUERIES = 5_000

#: Measured passes (latencies pooled across all of them).
ROUNDS = 3

#: p99 per-request latency budget on the warm index, in milliseconds.
#: Generous vs the observed sub-millisecond typical case so the gate
#: trips on algorithmic regressions (per-request pipeline work creeping
#: in), not on CI scheduling noise.
MAX_P99_MS = 2.5


def _query_mix(index, rng):
    """One deterministic shuffled mix of every query shape the API serves."""
    domains = index.domains()
    mix = []
    for i in range(QUERIES):
        roll = rng.random()
        if roll < 0.45 and domains:
            # The headline per-domain lookup, hits weighted over misses.
            mix.append(("/v1/domains/" + rng.choice(domains), "", 200))
        elif roll < 0.55:
            mix.append(("/v1/domains/zz-miss-%d.example" % i, "", 404))
        elif roll < 0.70:
            axis = rng.choice(("class", "issuer", "year"))
            mix.append(("/v1/aggregates", "by=" + axis, 200))
        elif roll < 0.80:
            mix.append(("/v1/survival", "", 200))
        elif roll < 0.90:
            mix.append(("/v1/whatif/caps", "days=45,90,215", 200))
        elif roll < 0.95:
            mix.append(("/v1/whatif/caps", "days=%d" % rng.randint(30, 429), 200))
        else:
            mix.append(("/v1/aggregates", "by=volume", 400))
        mix.append(("/health", "", 200))
    return mix


def test_perf_serve_warm_query_latency(bench_result, emit_report):
    build_started = perf_counter()
    index = FindingsIndex(bench_result)
    build_seconds = perf_counter() - build_started
    app = create_app(index)
    rng = RngStream(20231024, "serve-load")
    mix = _query_mix(index, rng)

    # Warm-up pass: touches every memoized cap once and faults in code paths.
    for path, query, expected in mix:
        response = call_app(app, path, query=query)
        assert response.status == expected, (path, query, response.status)

    latencies_ms = []
    for _ in range(ROUNDS):
        for path, query, _expected in mix:
            started = perf_counter()
            call_app(app, path, query=query)
            latencies_ms.append((perf_counter() - started) * 1e3)

    p50 = percentile(latencies_ms, 50)
    p99 = percentile(latencies_ms, 99)
    worst = max(latencies_ms)
    emit_report(
        "perf_serve",
        render_table(
            ["Quantity", "Value"],
            [
                ("findings indexed", f"{len(index):,}"),
                ("domains indexed", f"{len(index.domains()):,}"),
                ("index build seconds", f"{build_seconds:.3f}"),
                ("queries per pass", f"{len(mix):,}"),
                ("measured passes", str(ROUNDS)),
                ("p50 latency ms", f"{p50:.4f}"),
                ("p99 latency ms", f"{p99:.4f}"),
                ("max latency ms", f"{worst:.4f}"),
                ("gate (p99)", f"< {MAX_P99_MS} ms"),
            ],
            title="Performance: warm-index query latency through the WSGI app",
        ),
    )
    assert p99 < MAX_P99_MS, (
        f"warm-index p99 latency {p99:.3f}ms exceeds {MAX_P99_MS}ms "
        f"(p50 {p50:.3f}ms over {len(latencies_ms):,} requests)"
    )


def test_perf_serve_index_answers_match_pipeline(bench_result):
    """The speed is only worth gating if the answers stay equal — assert
    index == batch pipeline on the bench world too (the seed-world golden
    equivalence lives in tests/test_serve_index.py)."""
    index = FindingsIndex(bench_result)
    expected = bench_result.aggregate_table()
    rows = index.aggregates("class")
    assert [(r["class"], r["stale_certificates"], r["stale_e2lds"]) for r in rows] == [
        (a.staleness_class.value, a.stale_certificates, a.stale_e2lds)
        for a in expected
    ]
