"""Performance benchmark — streaming replay vs batch pipeline.

Not a paper experiment: quantifies the cost of incrementality. The
streaming engine dispatches every CT/CRL/WHOIS/DNS event through the bus
and stateful detectors, so it does strictly more bookkeeping than one batch
pass; the report records events/sec throughput and the slowdown factor so
regressions in the hot path (bus dispatch, detector joins) surface as
timing changes. Correctness (stream == batch findings) is asserted here
too, at bench scale — a second, larger-world guard beyond the tier-1
equivalence tests.
"""

from repro import MeasurementPipeline
from repro.analysis.report import render_table
from repro.stream import StreamEngine, build_event_stream, canonical_findings


def test_perf_stream_vs_batch(benchmark, bench_world, emit_report):
    bundle = bench_world.to_bundle()
    cutoff = bench_world.config.timeline.revocation_cutoff
    events = build_event_stream(bundle)

    def _stream_replay():
        return StreamEngine(bundle, revocation_cutoff_day=cutoff).replay()

    result = benchmark.pedantic(_stream_replay, rounds=3, iterations=1)
    # benchmark.stats is None under --benchmark-disable; keep the
    # correctness assertions meaningful either way.
    stream_seconds = benchmark.stats["mean"] if benchmark.stats else 0.0

    import time

    started = time.perf_counter()
    batch = MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()
    batch_seconds = time.perf_counter() - started

    assert result.complete
    assert canonical_findings(result.findings) == canonical_findings(batch.findings)

    events_per_second = len(events) / stream_seconds if stream_seconds else 0.0
    emit_report(
        "perf_stream",
        render_table(
            ["Quantity", "Value"],
            [
                ("events replayed", f"{len(events):,}"),
                ("event-days", result.stats.days_processed),
                ("findings (stream == batch)", len(list(result.findings.all_findings()))),
                ("stream mean seconds (3 rounds)", f"{stream_seconds:.2f}"),
                ("batch seconds (1 round)", f"{batch_seconds:.2f}"),
                ("stream events / second", f"{events_per_second:,.0f}"),
                (
                    "stream / batch slowdown",
                    f"{stream_seconds / batch_seconds:.1f}x"
                    if batch_seconds
                    else "n/a",
                ),
                ("max queue depth", result.stats.max_queue_depth),
            ],
            title="Performance: streaming replay vs batch pipeline "
            "(bench world)",
        ),
    )
