"""Figure 4 — monthly key-compromise revocation volumes by CA.

Shape checks: the GoDaddy November/December 2021 breach spike dominates the
series, Let's Encrypt (ISRG) key-compromise reporting only appears from
July 2022, and the post-breach baseline trends upward.
"""

from repro.analysis.charts import stacked_monthly_chart
from repro.analysis.figures import build_fig4
from repro.analysis.report import render_table

GODADDY = "GoDaddy Secure CA - G2"


def test_fig4_key_compromise_monthly(benchmark, bench_result, emit_report):
    series = benchmark(build_fig4, bench_result.findings)

    spike = sum(series.get(m, {}).get(GODADDY, 0) for m in ("2021-11", "2021-12"))
    assert spike > 0
    peak_month_total = max(sum(counts.values()) for counts in series.values())
    spike_months_total = max(
        sum(series.get(m, {}).values()) for m in ("2021-11", "2021-12")
    )
    assert spike_months_total == peak_month_total  # the breach is the peak

    for month, counts in series.items():
        for issuer, count in counts.items():
            if issuer.startswith("Let's Encrypt") and count:
                assert month >= "2022-07"  # ISRG reporting begins July 2022

    issuers = sorted({i for counts in series.values() for i in counts})
    rows = []
    for month in sorted(series):
        rows.append([month] + [series[month].get(issuer, 0) for issuer in issuers])
    table = render_table(
        ["Month"] + issuers, rows,
        title="Figure 4: Monthly key-compromise revocations by CA",
    )
    chart = stacked_monthly_chart(
        sorted(series), series, title="(log-scale monthly volume, stacked by CA)"
    )
    emit_report("fig4_key_compromise_monthly", table + "\n\n" + chart)
