"""Ablation — first-party vs third-party staleness volume (§3.4).

The paper measures only third-party staleness but asserts that "the
majority of certificate invalidation events lead to stale certificates
controlled by the domain owner". The key-rotation detector quantifies the
dominant first-party source (ACME renew-at-2/3 leaves ~30 unexpired days
per 90-day certificate) and confirms first-party ≫ third-party.
"""

from repro.analysis.report import render_table
from repro.core.detectors.first_party import KeyRotationDetector
from repro.core.stale import StalenessClass
from repro.util.stats import median


def _detect(bench_world):
    return KeyRotationDetector(bench_world.corpus).detect()


def test_ablation_first_party(benchmark, bench_world, bench_result, emit_report):
    rotations = benchmark(_detect, bench_world)
    first_party = rotations.of_class(StalenessClass.FIRST_PARTY_KEY_ROTATION)
    third_party_total = sum(
        len(bench_result.findings.of_class(cls))
        for cls in (
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        )
    )

    assert len(first_party) > third_party_total  # §3.4's majority claim
    rotation_median = median([f.staleness_days for f in first_party])

    emit_report(
        "ablation_first_party",
        render_table(
            ["Quantity", "Value"],
            [
                ("first-party key-rotation stale certs", len(first_party)),
                ("third-party stale certs (all 3 classes)", third_party_total),
                ("first/third ratio", f"{len(first_party) / max(1, third_party_total):.1f}x"),
                ("median rotation staleness (days)", f"{rotation_median:.0f}"),
            ],
            title="Ablation: first-party vs third-party staleness (paper §3.4)",
        ),
    )
