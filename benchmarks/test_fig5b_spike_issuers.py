"""Figure 5b — the 2018-2019 registrant-change spike, split by issuer.

Shape check: the spike window is dominated by COMODO-issued Cloudflare
cruise-liner certificates, with per-domain Cloudflare-CA issuance growing as
the cruise-liners phase out through 2019.
"""

from repro.analysis.figures import build_fig5b
from repro.analysis.report import render_table

COMODO = "COMODO ECC DV Secure Server CA 2"
CF_CA = "CloudFlare ECC CA-2"


def test_fig5b_spike_issuers(benchmark, bench_result, emit_report):
    series = benchmark(build_fig5b, bench_result.findings)

    assert series
    issuer_totals = {}
    for counts in series.values():
        for issuer, count in counts.items():
            issuer_totals[issuer] = issuer_totals.get(issuer, 0) + count
    # Cruise-liners dominate the spike window.
    assert issuer_totals.get(COMODO, 0) == max(issuer_totals.values())

    issuers = sorted({i for counts in series.values() for i in counts})
    rows = []
    for month in sorted(series):
        rows.append([month] + [series[month].get(issuer, 0) for issuer in issuers])
    emit_report(
        "fig5b_spike_issuers",
        render_table(
            ["Month"] + issuers, rows,
            title="Figure 5b: Registrant-change spike by issuer (2018-2019)",
        ),
    )
