"""Performance guard — span tracing must stay close to free.

Not a paper experiment: bounds the cost of the observability layer so
``--trace-out`` can be left on for whole measurement runs. The detect
pipeline is run over the same scale-0.1 bundle twice — collector off
(the :func:`~repro.obs.get_collector` ``None`` fast path) and collector
on (every span buffering a begin/end event pair) — best-of-3 each, and
the traced leg must be within ``MAX_OVERHEAD`` of the untraced one.

The off leg also asserts the fast path really is off: no collector is
installed, so nothing buffers and nothing is exported.
"""

from time import perf_counter

from repro import MeasurementPipeline, WorldConfig, simulate_world
from repro.analysis.report import render_table
from repro.obs import get_collector, use_collector

#: Scale of the overhead-gate world (smaller than the bench world: this
#: test runs the pipeline six times).
OBS_BENCH_SCALE = 0.1

#: Allowed relative slowdown with the collector on.
MAX_OVERHEAD = 0.10

ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        started = perf_counter()
        fn()
        times.append(perf_counter() - started)
    return min(times)


def test_perf_tracing_overhead(emit_report):
    world = simulate_world(WorldConfig(seed=20231024).scaled(OBS_BENCH_SCALE))
    bundle = world.to_bundle()
    cutoff = world.config.timeline.revocation_cutoff

    def run_pipeline():
        return MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()

    # Off leg: no collector anywhere, so span() takes the None fast path.
    assert get_collector() is None
    off_seconds = _best_of(run_pipeline)

    # On leg: every span records into a scoped collector.
    events = 0
    with use_collector() as collector:
        on_seconds = _best_of(run_pipeline)
        events = len(collector)
    assert events > 0, "collector saw no spans — tracing is not wired in"
    assert collector.dropped == 0

    overhead = (on_seconds - off_seconds) / off_seconds
    emit_report(
        "perf_obs",
        render_table(
            ["Quantity", "Value"],
            [
                ("certificates", f"{len(bundle.corpus):,}"),
                (f"untraced best-of-{ROUNDS} seconds", f"{off_seconds:.3f}"),
                (f"traced best-of-{ROUNDS} seconds", f"{on_seconds:.3f}"),
                ("trace events buffered", f"{events:,}"),
                ("overhead", f"{overhead * 100:+.1f}%"),
                ("gate", f"< {MAX_OVERHEAD * 100:.0f}%"),
            ],
            title="Performance: span tracing overhead on the detect pipeline "
            f"(scale {OBS_BENCH_SCALE})",
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% "
        f"({off_seconds:.3f}s untraced vs {on_seconds:.3f}s traced)"
    )
