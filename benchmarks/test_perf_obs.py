"""Performance guards — tracing and live telemetry must stay close to free.

Not paper experiments: these bound the cost of the observability layer
so ``--trace-out`` and ``--heartbeat`` can be left on for whole
measurement runs. The detect pipeline is run over the same scale-0.1
bundle with each facility off and on — best-of-N each — and the
instrumented leg must stay within its gate of the bare one.

The off legs also assert the fast paths really are off: no collector
buffers anything, and no heartbeat thread samples anything.
"""

from time import perf_counter

from repro import MeasurementPipeline, WorldConfig, simulate_world
from repro.analysis.report import render_table
from repro.obs import (
    Heartbeat,
    get_collector,
    get_heartbeat,
    use_collector,
    use_registry,
)

#: Scale of the overhead-gate world (smaller than the bench world: this
#: test runs the pipeline six times).
OBS_BENCH_SCALE = 0.1

#: Allowed relative slowdown with the collector on.
MAX_OVERHEAD = 0.10

#: Allowed relative slowdown with a 1 s heartbeat sampling the run —
#: the issue's acceptance gate: background sampling must cost < 3% wall.
MAX_HEARTBEAT_OVERHEAD = 0.03

ROUNDS = 3

#: The heartbeat gate is tighter than the tracing gate, so it takes more
#: rounds for best-of to shake scheduler noise out.
HEARTBEAT_ROUNDS = 5


def _best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        started = perf_counter()
        fn()
        times.append(perf_counter() - started)
    return min(times)


def test_perf_tracing_overhead(emit_report):
    world = simulate_world(WorldConfig(seed=20231024).scaled(OBS_BENCH_SCALE))
    bundle = world.to_bundle()
    cutoff = world.config.timeline.revocation_cutoff

    def run_pipeline():
        return MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()

    # Off leg: no collector anywhere, so span() takes the None fast path.
    assert get_collector() is None
    off_seconds = _best_of(run_pipeline)

    # On leg: every span records into a scoped collector.
    events = 0
    with use_collector() as collector:
        on_seconds = _best_of(run_pipeline)
        events = len(collector)
    assert events > 0, "collector saw no spans — tracing is not wired in"
    assert collector.dropped == 0

    overhead = (on_seconds - off_seconds) / off_seconds
    emit_report(
        "perf_obs",
        render_table(
            ["Quantity", "Value"],
            [
                ("certificates", f"{len(bundle.corpus):,}"),
                (f"untraced best-of-{ROUNDS} seconds", f"{off_seconds:.3f}"),
                (f"traced best-of-{ROUNDS} seconds", f"{on_seconds:.3f}"),
                ("trace events buffered", f"{events:,}"),
                ("overhead", f"{overhead * 100:+.1f}%"),
                ("gate", f"< {MAX_OVERHEAD * 100:.0f}%"),
            ],
            title="Performance: span tracing overhead on the detect pipeline "
            f"(scale {OBS_BENCH_SCALE})",
        ),
    )
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% "
        f"({off_seconds:.3f}s untraced vs {on_seconds:.3f}s traced)"
    )


def test_perf_heartbeat_overhead(emit_report, tmp_path):
    world = simulate_world(WorldConfig(seed=20231024).scaled(OBS_BENCH_SCALE))
    bundle = world.to_bundle()
    cutoff = world.config.timeline.revocation_cutoff

    def run_pipeline():
        return MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()

    # Rounds are interleaved off/on rather than run as two sequential
    # legs: the 3% gate is well under ambient load drift on a shared
    # machine, and pairing the legs in time makes that drift hit both.
    off_times = []
    on_times = []
    snapshots = 0
    for _ in range(HEARTBEAT_ROUNDS):
        # Off round: no heartbeat installed — progress gauges are plain
        # writes.
        assert get_heartbeat() is None
        with use_registry():
            started = perf_counter()
            run_pipeline()
            off_times.append(perf_counter() - started)

        # On round: a default-cadence heartbeat samples the live
        # registry (stop() always takes the final sample).
        with use_registry() as registry:
            heartbeat = Heartbeat(
                registry, str(tmp_path / "timeline.jsonl"), interval=1.0,
                command="bench",
            )
            heartbeat.start()
            try:
                started = perf_counter()
                run_pipeline()
                on_times.append(perf_counter() - started)
            finally:
                heartbeat.stop()
        snapshots += heartbeat.snapshots
    off_seconds = min(off_times)
    on_seconds = min(on_times)
    assert snapshots > 0, "heartbeat took no samples — sampling is not wired in"

    overhead = (on_seconds - off_seconds) / off_seconds
    emit_report(
        "perf_heartbeat",
        render_table(
            ["Quantity", "Value"],
            [
                ("certificates", f"{len(bundle.corpus):,}"),
                (f"heartbeat-off best-of-{HEARTBEAT_ROUNDS} seconds",
                 f"{off_seconds:.3f}"),
                (f"heartbeat-on best-of-{HEARTBEAT_ROUNDS} seconds",
                 f"{on_seconds:.3f}"),
                ("snapshots taken", f"{snapshots:,}"),
                ("overhead", f"{overhead * 100:+.1f}%"),
                ("gate", f"< {MAX_HEARTBEAT_OVERHEAD * 100:.0f}%"),
            ],
            title="Performance: heartbeat sampling overhead on the detect "
            f"pipeline (scale {OBS_BENCH_SCALE})",
        ),
    )
    assert overhead < MAX_HEARTBEAT_OVERHEAD, (
        f"heartbeat overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_HEARTBEAT_OVERHEAD * 100:.0f}% "
        f"({off_seconds:.3f}s off vs {on_seconds:.3f}s on)"
    )
