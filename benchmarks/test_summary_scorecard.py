"""Headline scorecard — every checkable paper claim, evaluated at once.

Not a table or figure of the paper itself, but the reproduction's own
deliverable: the abstract's and takeaway sections' claims verified against
the bench world in one report.
"""

from repro.analysis.summary import evaluate_claims, render_summary


def test_summary_scorecard(benchmark, bench_result, emit_report):
    checks = benchmark(evaluate_claims, bench_result)
    failing = [check.claim for check in checks if not check.holds]
    assert failing == [], f"claims failing on the bench world: {failing}"
    emit_report("summary_scorecard", render_summary(bench_result))
