"""Corpus overview — the §2/§5.2 background narrative, quantified.

Not a numbered table in the paper, but the context every figure rests on:
issuance growth after Let's Encrypt, market-share shift to automated CAs,
and the stepwise collapse of certificate lifetimes across policy eras.
"""

from repro.analysis.charts import log_bar_chart
from repro.analysis.corpus_stats import (
    automation_share_by_year,
    lifetime_by_policy_era,
    yearly_issuance,
)
from repro.analysis.report import render_table


def _compute(corpus):
    return (
        yearly_issuance(corpus),
        lifetime_by_policy_era(corpus),
        automation_share_by_year(corpus),
    )


def test_corpus_overview(benchmark, bench_world, emit_report):
    issuance, eras, automation = benchmark(_compute, bench_world.corpus)

    series = dict(issuance)
    early = sum(series.get(year, 0) for year in (2013, 2014, 2015))
    late = sum(series.get(year, 0) for year in (2019, 2020, 2021))
    assert late > 3 * max(1, early)  # the Let's Encrypt inflection
    by_era = {s.era: s for s in eras}
    assert by_era["398 era"].max_lifetime <= 398
    assert by_era["398 era"].share_90_day > by_era["pre-825 era"].share_90_day

    blocks = [
        log_bar_chart(
            [(str(year), count) for year, count in issuance],
            title="CT issuance per year (log scale)",
        ),
        render_table(
            ["Policy era", "Certs", "Median lifetime", "Max lifetime", "<=90d share"],
            [
                (s.era, s.certificates, f"{s.median_lifetime:.0f}d",
                 f"{s.max_lifetime}d", f"{100 * s.share_90_day:.0f}%")
                for s in eras
            ],
            title="Lifetime distribution by policy era",
        ),
        render_table(
            ["Year", "Automated (<=90d) share"],
            [(year, f"{100 * share:.0f}%") for year, share in automation],
            title="Rise of automated issuance",
        ),
    ]
    emit_report("corpus_overview", "\n\n".join(blocks))
