"""Table 3 — dataset overview.

Regenerates the dataset-inventory table (CT / CRL / WHOIS / aDNS with date
ranges and sizes) and benchmarks the summary pass over the world datasets.
"""

from repro.analysis.aggregate import build_table3
from repro.analysis.report import render_table


def test_table3_datasets(benchmark, bench_world, emit_report):
    rows = benchmark(build_table3, bench_world)

    assert [r.dataset for r in rows] == ["CT", "CRL", "WHOIS", "aDNS"]
    assert "2013-03-01" in rows[0].date_range  # CT window start (Table 3)
    assert "2022-11-01" in rows[1].date_range  # CRL collection start
    assert "2022-08-01" in rows[3].date_range  # DNS scan start

    emit_report(
        "table3_datasets",
        render_table(
            ["Dataset", "Used for", "Date range", "Size"],
            [(r.dataset, r.used_for, r.date_range, r.size) for r in rows],
            title="Table 3: Datasets",
        ),
    )
