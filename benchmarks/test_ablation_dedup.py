"""Ablation — precert/cert dedup strategy.

Compares the paper's non-CT-component dedup (precertificates collapse into
their final certificates) against naive full-entry dedup, quantifying the
double-counting a naive corpus would suffer.
"""

from repro.ct.dedup import CertificateCorpus
from repro.analysis.report import render_table


def _paper_dedup(entries):
    corpus = CertificateCorpus()
    corpus.ingest(entries)
    return len(corpus.finalize())


def _naive_dedup(entries):
    """Dedup on the full entry (precert and final stay distinct)."""
    seen = set()
    for certificate in entries:
        seen.add((certificate.dedup_fingerprint(), certificate.is_precertificate))
    return len(seen)


def _collect_entries(bench_world):
    entries = []
    for log in bench_world.log_list.logs_ever_trusted():
        for entry in log.entries():
            entries.append(entry.certificate)
    return entries


def test_ablation_dedup(benchmark, bench_world, emit_report):
    entries = _collect_entries(bench_world)
    paper_count = benchmark(_paper_dedup, entries)
    naive_count = _naive_dedup(entries)

    assert paper_count < naive_count  # naive double-counts precert+final
    inflation = naive_count / paper_count

    emit_report(
        "ablation_dedup",
        render_table(
            ["Strategy", "Unique certificates"],
            [
                ("raw log entries", len(entries)),
                ("naive (precert distinct)", naive_count),
                ("paper (non-CT components)", paper_count),
                ("naive inflation", f"{inflation:.2f}x"),
            ],
            title="Ablation: CT dedup strategy",
        ),
    )
