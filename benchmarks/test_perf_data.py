"""Performance benchmark — columnar data plane vs legacy JSONL bundles.

Not a paper experiment: quantifies the payoff of the ``repro.data``
columnar segment layout. Two gates, both against the same bench world
saved in both layouts:

* **bundle-load** — ``open_bundle`` on a columnar directory maps
  segments lazily (header validation only), while the legacy path
  parses every JSONL record up front; opening must be >= 2x faster.
* **cold detect** — end-to-end ``open_bundle`` + batch pipeline run.
  The columnar side hydrates only the rows the detectors touch (index
  lookups + interned DNS observations), so the whole cold run must
  also be >= 2x faster — at *identical* findings, checked canonically.
"""

from __future__ import annotations

from time import perf_counter

from repro import MeasurementPipeline
from repro.analysis.report import render_table
from repro.data import open_bundle, save_legacy_bundle, write_dataset
from repro.stream import canonical_findings

ROUNDS = 2


def _best_of(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        started = perf_counter()
        result = fn()
        elapsed = perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_perf_columnar_vs_legacy(bench_world, emit_report, tmp_path_factory):
    bundle = bench_world.to_bundle()
    cutoff = bench_world.config.timeline.revocation_cutoff
    legacy_dir = str(tmp_path_factory.mktemp("perf-legacy"))
    columnar_dir = str(tmp_path_factory.mktemp("perf-columnar"))
    save_legacy_bundle(bundle, legacy_dir)
    write_dataset(bundle, columnar_dir)

    legacy_open_seconds, _ = _best_of(lambda: open_bundle(legacy_dir))
    columnar_open_seconds, _ = _best_of(lambda: open_bundle(columnar_dir))

    def cold_detect(directory):
        opened = open_bundle(directory)
        return MeasurementPipeline(
            opened, revocation_cutoff_day=cutoff
        ).run()

    legacy_detect_seconds, legacy_result = _best_of(
        lambda: cold_detect(legacy_dir)
    )
    columnar_detect_seconds, columnar_result = _best_of(
        lambda: cold_detect(columnar_dir)
    )

    assert canonical_findings(columnar_result.findings) == canonical_findings(
        legacy_result.findings
    ), "columnar bundle changed the findings — speed is irrelevant"

    open_speedup = legacy_open_seconds / columnar_open_seconds
    detect_speedup = legacy_detect_seconds / columnar_detect_seconds
    emit_report(
        "perf_data",
        render_table(
            ["Quantity", "Value"],
            [
                ("findings (both layouts)",
                 f"{len(list(legacy_result.findings.all_findings())):,}"),
                ("legacy open seconds", f"{legacy_open_seconds:.3f}"),
                ("columnar open seconds", f"{columnar_open_seconds:.3f}"),
                ("open speedup", f"{open_speedup:.1f}x"),
                ("legacy cold-detect seconds", f"{legacy_detect_seconds:.2f}"),
                ("columnar cold-detect seconds",
                 f"{columnar_detect_seconds:.2f}"),
                ("cold-detect speedup", f"{detect_speedup:.2f}x"),
            ],
            title="Performance: columnar data plane vs legacy JSONL bundles "
            "(bench world)",
        ),
    )

    assert open_speedup >= 2.0, (
        f"columnar open only {open_speedup:.2f}x faster than legacy load"
    )
    assert detect_speedup >= 2.0, (
        f"columnar cold detect only {detect_speedup:.2f}x faster than legacy"
    )
