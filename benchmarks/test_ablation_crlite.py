"""Ablation — CRLite-style compressed revocation (§7.2 mitigation).

Builds a Bloom-filter cascade over the world's revoked-vs-valid certificate
universe and measures its size against a plain serial list, quantifying the
"push all revocations to all browsers" proposal the paper names as the
revocation path forward.
"""

from repro.analysis.report import render_table
from repro.revocation.crl import merge_crl_series
from repro.revocation.crlite import build_certificate_cascade, certificate_key


def _partition(bench_world):
    revoked_keys = set(merge_crl_series(bench_world.crls))
    revoked, valid = [], []
    for certificate in bench_world.corpus.certificates():
        if certificate.revocation_key() in revoked_keys:
            revoked.append(certificate)
        else:
            valid.append(certificate)
    return revoked, valid


def _build(revoked, valid):
    return build_certificate_cascade(revoked, valid)


def test_ablation_crlite(benchmark, bench_world, emit_report):
    revoked, valid = _partition(bench_world)
    assert revoked and valid
    cascade, stats = benchmark(_build, revoked, valid)

    # Exactness over the full universe.
    for certificate in revoked[:500]:
        assert certificate_key(certificate) in cascade
    for certificate in valid[:500]:
        assert certificate_key(certificate) not in cascade

    plain_list_bytes = sum(len(certificate_key(c)) for c in revoked)
    assert stats.total_size_bytes < plain_list_bytes

    emit_report(
        "ablation_crlite",
        render_table(
            ["Quantity", "Value"],
            [
                ("revoked certificates", stats.revoked_count),
                ("valid certificates (universe)", stats.valid_count),
                ("cascade levels", stats.levels),
                ("cascade size", f"{stats.total_size_bytes:,} B"),
                ("plain revoked-key list", f"{plain_list_bytes:,} B"),
                ("compression", f"{plain_list_bytes / stats.total_size_bytes:.1f}x"),
                ("bits per revocation", f"{stats.bits_per_revocation:.1f}"),
            ],
            title="Ablation: CRLite filter cascade vs plain revocation list",
        ),
    )
