"""Figure 5a — new monthly stale certificates / e2LDs from registrant change.

Shape checks: staleness volume grows drastically after 2018 (the Let's
Encrypt / CDN era), and the certificate series spikes well above the e2LD
series during the cruise-liner period (many overlapping certificates per
customer domain).
"""

from repro.analysis.charts import log_bar_chart
from repro.analysis.figures import build_fig5a
from repro.analysis.report import render_table


def test_fig5a_registrant_growth(benchmark, bench_result, emit_report):
    points = benchmark(build_fig5a, bench_result.findings)

    assert points
    early_certs = sum(c for m, c, _ in points if m < "2017-01")
    late_certs = sum(c for m, c, _ in points if "2018-01" <= m <= "2021-07")
    assert late_certs > max(1, early_certs)  # post-2018 growth

    # Cruise-liner amplification: in the busiest month, stale certificates
    # outnumber newly-stale e2LDs.
    peak_month = max(points, key=lambda p: p[1])
    assert peak_month[1] >= peak_month[2]

    table = render_table(
        ["Month", "New stale certs", "New stale e2LDs"],
        [(m, c, e) for m, c, e in points],
        title="Figure 5a: New monthly stale certificates (registrant change)",
    )
    chart = log_bar_chart(
        [(m, c) for m, c, _ in points],
        title="(log-scale monthly stale certificates)",
    )
    emit_report("fig5a_registrant_growth", table + "\n\n" + chart)
