"""Figure 6 — third-party staleness-period CDFs.

Shape checks against the paper: median staleness orders key compromise
(~398d) > managed TLS departure (~300d) > domain registrant change (~90d),
and over half of key-compromise / managed-TLS staleness periods exceed
90 days.
"""

from repro.analysis.charts import line_plot
from repro.analysis.figures import build_fig6
from repro.analysis.report import render_cdf
from repro.core.stale import StalenessClass


def test_fig6_staleness_cdf(benchmark, bench_result, emit_report):
    series = benchmark(build_fig6, bench_result.findings)
    by_class = {s.staleness_class: s for s in series}

    kc = by_class[StalenessClass.KEY_COMPROMISE]
    mtls = by_class[StalenessClass.MANAGED_TLS_DEPARTURE]
    reg = by_class[StalenessClass.REGISTRANT_CHANGE]
    assert kc.median_days > mtls.median_days > reg.median_days
    assert kc.proportion_over_90 > 0.5
    assert mtls.proportion_over_90 > 0.5

    blocks = []
    for s in series:
        blocks.append(
            f"{s.staleness_class.value}: median={s.median_days:.0f}d, "
            f"P(>90d)={s.proportion_over_90:.2f}\n"
            + render_cdf(s.curve, label="  CDF")
            + "\n"
            + line_plot(s.curve, height=10, width=56, y_label="staleness (days)")
        )
    emit_report(
        "fig6_staleness_cdf",
        "Figure 6: Third-party staleness CDFs\n" + "\n\n".join(blocks),
    )
