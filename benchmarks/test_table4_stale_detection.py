"""Table 4 — stale certificate detection rates.

Regenerates the daily/total stale certificates, FQDNs, and e2LDs per method
and benchmarks the full three-detector measurement pipeline. The qualitative
claims checked are the paper's: all-revocations dwarf key compromise, and
daily e2LD rates order managed TLS > registrant change > key compromise.
"""

from repro import MeasurementPipeline
from repro.analysis.aggregate import build_table4
from repro.analysis.report import render_table


def _run_pipeline(bench_world):
    pipeline = MeasurementPipeline(
        bench_world.to_bundle(),
        revocation_cutoff_day=bench_world.config.timeline.revocation_cutoff,
    )
    return pipeline.run()


def test_table4_stale_detection(benchmark, bench_world, emit_report):
    result = benchmark(_run_pipeline, bench_world)
    rows = build_table4(result)
    by_method = {r.method: r for r in rows}

    assert (
        by_method["Revoked: all"].total_certs
        > 5 * by_method["Revoked: key compromise"].total_certs
    )
    assert (
        by_method["Cloudflare managed TLS departure"].daily_e2lds
        > by_method["Domain registrant change"].daily_e2lds
        > by_method["Revoked: key compromise"].daily_e2lds
    )

    emit_report(
        "table4_stale_detection",
        render_table(
            ["Method", "Date range", "Daily certs", "Total certs",
             "Daily FQDNs", "Total FQDNs", "Daily e2LDs", "Total e2LDs"],
            [
                (
                    r.method,
                    r.date_range,
                    round(r.daily_certs, 2),
                    r.total_certs,
                    round(r.daily_fqdns, 2),
                    r.total_fqdns,
                    round(r.daily_e2lds, 2),
                    r.total_e2lds,
                )
                for r in rows
            ],
            title="Table 4: Stale certificate detection",
        ),
    )
