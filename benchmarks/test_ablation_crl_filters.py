"""Ablation — the Section 4.1 CRL outlier filters.

Runs the key-compromise pipeline with and without the three filters
(revoked-before-valid, revoked-after-expiration, pre-cutoff) and reports how
many findings each filter removes — the analogue of the paper's reported
129 / 7,945 / 33,860 filtered entries.
"""

from repro.analysis.report import render_table
from repro.core.detectors.key_compromise import KeyCompromiseDetector
from repro.core.stale import StalenessClass


def _detect(bench_world, apply_filters):
    detector = KeyCompromiseDetector(
        bench_world.corpus,
        revocation_cutoff_day=bench_world.config.timeline.revocation_cutoff,
    )
    findings = detector.detect(bench_world.crls, apply_filters=apply_filters)
    return detector.stats, findings


def test_ablation_crl_filters(benchmark, bench_world, emit_report):
    stats_filtered, filtered = benchmark(_detect, bench_world, True)
    stats_raw, unfiltered = _detect(bench_world, False)

    assert stats_raw.survivors >= stats_filtered.survivors
    assert stats_filtered.filtered_before_cutoff > 0  # old revocations linger
    assert len(unfiltered.of_class(StalenessClass.REVOKED_ALL)) >= len(
        filtered.of_class(StalenessClass.REVOKED_ALL)
    )

    emit_report(
        "ablation_crl_filters",
        render_table(
            ["Quantity", "Value"],
            [
                ("CRL entries merged", stats_filtered.crl_entries_merged),
                ("matched in CT", stats_filtered.matched_in_ct),
                ("filtered: revoked before valid", stats_filtered.filtered_revoked_before_valid),
                ("filtered: revoked after expiration", stats_filtered.filtered_revoked_after_expiration),
                ("filtered: before Oct-2021 cutoff", stats_filtered.filtered_before_cutoff),
                ("survivors (with filters)", stats_filtered.survivors),
                ("survivors (no filters)", stats_raw.survivors),
            ],
            title="Ablation: CRL outlier filters (paper filters 129 / 7,945 / 33,860)",
        ),
    )
