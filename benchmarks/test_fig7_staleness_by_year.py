"""Figure 7 — registrant-change staleness CDFs by change year (2016-2021).

The paper reports mixed results: the long 2016/2017 tail is curtailed after
the 825-day limit takes effect, while average staleness fluctuates. We check
the tail-curtailment claim: post-2019 cohorts have no staleness beyond the
398/825-day era maxima seen earlier.
"""

from repro.analysis.figures import build_fig7
from repro.analysis.report import render_cdf


def test_fig7_staleness_by_year(benchmark, bench_result, emit_report):
    cohorts = benchmark(build_fig7, bench_result.findings)

    assert len(cohorts) >= 4
    # Tail curtailment: the maximum staleness of the 2021 cohort cannot
    # exceed the 825-era maximum (and certs issued post-2020-09 cap at 398).
    if 2017 in cohorts and 2021 in cohorts:
        max_2017 = max(x for x, _ in cohorts[2017].curve)
        max_2021 = max(x for x, _ in cohorts[2021].curve)
        assert max_2021 <= max(max_2017, 825)

    blocks = []
    for year in sorted(cohorts):
        s = cohorts[year]
        blocks.append(
            f"{year}: median={s.median_days:.0f}d, P(>90d)={s.proportion_over_90:.2f}\n"
            + render_cdf(s.curve, label="  CDF", points=8)
        )
    emit_report(
        "fig7_staleness_by_year",
        "Figure 7: Registrant-change staleness by year\n" + "\n\n".join(blocks),
    )
