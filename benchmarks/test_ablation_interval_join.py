"""Ablation — interval-join algorithm for the registrant-change pipeline.

Compares the sorted-sweep join against the quadratic reference on the
cert-validity x re-registration intersection workload, confirming both
agree and measuring the sweep's advantage.
"""

import time

from repro.analysis.report import render_table
from repro.core.detectors.registrant_change import find_re_registrations
from repro.util.intervals import interval_sweep_join, naive_join


def _workload(bench_world, limit=400):
    events = find_re_registrations(bench_world.whois_creation_pairs, None)[:limit]
    certificates = [
        c for c in bench_world.corpus.certificates() if c.lifetime_days > 0
    ][: limit * 4]
    return certificates, events


def _run_sweep(certificates, events):
    return sorted(
        (e.domain, e.creation_day, c.serial)
        for e, c in interval_sweep_join(
            certificates,
            events,
            interval_of=lambda c: c.validity,
            event_day=lambda e: e.creation_day,
        )
    )


def _run_naive(certificates, events):
    return sorted(
        (e.domain, e.creation_day, c.serial)
        for e, c in naive_join(
            certificates,
            events,
            interval_of=lambda c: c.validity,
            event_day=lambda e: e.creation_day,
        )
    )


def test_ablation_interval_join(benchmark, bench_world, emit_report):
    certificates, events = _workload(bench_world)
    sweep_result = benchmark(_run_sweep, certificates, events)

    start = time.perf_counter()
    naive_result = _run_naive(certificates, events)
    naive_seconds = time.perf_counter() - start
    assert sweep_result == naive_result  # identical join output

    start = time.perf_counter()
    _run_sweep(certificates, events)
    sweep_seconds = time.perf_counter() - start

    emit_report(
        "ablation_interval_join",
        render_table(
            ["Algorithm", "Time (s)", "Pairs"],
            [
                ("sorted sweep", f"{sweep_seconds:.4f}", len(sweep_result)),
                ("naive quadratic", f"{naive_seconds:.4f}", len(naive_result)),
                (
                    "speedup",
                    f"{naive_seconds / sweep_seconds:.1f}x" if sweep_seconds else "n/a",
                    "",
                ),
            ],
            title=(
                f"Ablation: interval join ({len(certificates)} intervals x "
                f"{len(events)} events)"
            ),
        ),
    )
