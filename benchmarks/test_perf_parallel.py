"""Performance benchmark — sharded parallel engine vs single-worker batch.

Not a paper experiment: quantifies the payoff of the sharding layer. The
parallel pipeline partitions the bundle along two axes (authority-key-id
for the CRL join, registered-domain components for the WHOIS/DNS joins)
and fans the shards across a process pool, so on a multi-core box the
wall clock should drop roughly linearly with workers. The report records
certificates/sec throughput for both engines and the speedup factor.

The hard ``speedup >= 2x`` acceptance gate only fires on hosts with at
least 4 CPUs: on a 1-core container the process pool cannot beat the
serial run no matter how good the sharding is, so there the numbers are
reported but the assertion is skipped. Correctness (parallel == batch
findings, summed revocation stats) is asserted unconditionally — a
larger-world guard beyond the tier-1 equivalence tests.
"""

import os
import time

from repro import MeasurementPipeline, ParallelMeasurementPipeline
from repro.analysis.report import render_table
from repro.stream.engine import canonical_findings

#: Workers used for the parallel leg (capped to the host's core count so a
#: small CI box is not oversubscribed into pure context-switch overhead).
PARALLEL_WORKERS = min(4, os.cpu_count() or 1)


def test_perf_parallel_vs_batch(benchmark, bench_world, emit_report):
    bundle = bench_world.to_bundle()
    cutoff = bench_world.config.timeline.revocation_cutoff

    def _parallel_run():
        return ParallelMeasurementPipeline(
            bundle, workers=PARALLEL_WORKERS, revocation_cutoff_day=cutoff
        ).run()

    result = benchmark.pedantic(_parallel_run, rounds=3, iterations=1)
    # benchmark.stats is None under --benchmark-disable; keep the
    # correctness assertions meaningful either way.
    parallel_seconds = benchmark.stats["mean"] if benchmark.stats else 0.0

    started = time.perf_counter()
    batch = MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()
    batch_seconds = time.perf_counter() - started

    assert canonical_findings(result.findings) == canonical_findings(batch.findings)
    assert result.revocation_stats == batch.revocation_stats
    assert result.shard_stats is not None

    certificates = len(bundle.corpus)
    speedup = batch_seconds / parallel_seconds if parallel_seconds else 0.0
    rows = [
        ("certificates", f"{certificates:,}"),
        ("workers / shards", f"{PARALLEL_WORKERS} / {result.shard_stats.num_shards}"),
        ("executor", result.shard_stats.executor),
        ("findings (parallel == batch)", len(result.findings)),
        ("batch seconds (1 round)", f"{batch_seconds:.2f}"),
        ("parallel mean seconds (3 rounds)", f"{parallel_seconds:.2f}"),
        (
            "batch certificates / second",
            f"{certificates / batch_seconds:,.0f}" if batch_seconds else "n/a",
        ),
        (
            "parallel certificates / second",
            f"{certificates / parallel_seconds:,.0f}" if parallel_seconds else "n/a",
        ),
        ("speedup over single worker", f"{speedup:.2f}x" if speedup else "n/a"),
        ("partition seconds", f"{result.shard_stats.partition_seconds:.2f}"),
        ("merge seconds", f"{result.shard_stats.merge_seconds:.2f}"),
        ("host cpu count", os.cpu_count() or 1),
    ]
    emit_report(
        "perf_parallel",
        render_table(
            ["Quantity", "Value"],
            rows,
            title="Performance: sharded parallel engine vs batch pipeline "
            "(bench world)",
        ),
    )

    if parallel_seconds and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"parallel engine only {speedup:.2f}x faster than batch on a "
            f"{os.cpu_count()}-core host"
        )
