"""Figure 8 — certificate survival until invalidation.

Shape checks against the paper's readoffs: ~1% of key compromise occurs
after 90 days from issuance (ours: <20%), while roughly half of registrant
changes and managed-TLS departures do (56% / 49.5% in the paper).
"""

from repro.analysis.figures import build_fig8
from repro.analysis.report import render_table
from repro.core.stale import StalenessClass


def test_fig8_survival(benchmark, bench_result, emit_report):
    series = benchmark(build_fig8, bench_result.findings)
    by_class = {s.staleness_class: s for s in series}

    kc = by_class[StalenessClass.KEY_COMPROMISE]
    reg = by_class[StalenessClass.REGISTRANT_CHANGE]
    mtls = by_class[StalenessClass.MANAGED_TLS_DEPARTURE]

    assert kc.survival_at_90 < 0.2  # paper: ~1%
    assert 0.3 < reg.survival_at_90 < 0.9  # paper: 56%
    assert 0.3 < mtls.survival_at_90 < 0.9  # paper: 49.5%
    for s in series:
        assert s.survival_at_90 >= s.survival_at_215

    emit_report(
        "fig8_survival",
        render_table(
            ["Class", "S(90) [% eliminable @90d cap]", "S(215)"],
            [
                (s.staleness_class.value, f"{s.survival_at_90:.3f}", f"{s.survival_at_215:.3f}")
                for s in series
            ],
            title="Figure 8: Survival until invalidation (paper: kc 0.01, "
            "registrant 0.56, managed 0.495 at 90 days)",
        ),
    )
