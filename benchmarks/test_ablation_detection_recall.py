"""Ablation — registrant-change detection recall vs. ground truth.

The paper's creation-date method is deliberately conservative (Section 4.4):
it misses intra/inter-registrar transfers and pre-release re-registrations.
The simulator's ground truth contains every ownership change, so we can
quantify the recall of the paper's method — evidence for its "lower bound"
claim.
"""

from repro.analysis.report import render_table
from repro.core.detectors.registrant_change import find_re_registrations
from repro.ecosystem.events import GroundTruthEventType


def _detect_events(bench_world):
    return find_re_registrations(bench_world.whois_creation_pairs, ("com", "net"))


def test_ablation_detection_recall(benchmark, bench_world, emit_report):
    detected = benchmark(_detect_events, bench_world)
    detected_changes = {(e.domain, e.creation_day) for e in detected}

    timeline = bench_world.config.timeline
    true_re_registrations = set()
    true_transfers = set()
    for event in bench_world.ground_truth:
        if event.day > timeline.whois_end:
            continue
        if event.domain is None or event.domain.rsplit(".", 1)[-1] not in ("com", "net"):
            continue
        if event.event_type is GroundTruthEventType.DOMAIN_RE_REGISTERED:
            true_re_registrations.add((event.domain, event.day))
        elif event.event_type is GroundTruthEventType.DOMAIN_TRANSFERRED:
            true_transfers.add((event.domain, event.day))

    total_changes = len(true_re_registrations) + len(true_transfers)
    # Precision over re-registrations: everything detected is real.
    assert detected_changes <= true_re_registrations
    # Transfers exist and are all missed: detection is a strict lower bound.
    assert true_transfers
    recall = len(detected_changes) / total_changes if total_changes else 0.0
    assert recall < 1.0

    emit_report(
        "ablation_detection_recall",
        render_table(
            ["Quantity", "Count"],
            [
                ("true registrant changes (ground truth)", total_changes),
                ("  via re-registration", len(true_re_registrations)),
                ("  via transfer (invisible to WHOIS method)", len(true_transfers)),
                ("detected by creation-date method", len(detected_changes)),
                ("recall", f"{100 * recall:.1f}%"),
                ("precision (vs re-registrations)", "100.0%"),
            ],
            title="Ablation: registrant-change detection recall (the paper's lower bound)",
        ),
    )
