"""Table 6 — popularity of domains found in stale certificates.

Min rank per e2LD across biannual 2014-2022 top-list samples, bucketed into
Top 1K / 10K / 100K / 1M, per staleness class. The paper's takeaway held
here: the overwhelming majority of stale-cert domains sit in the long tail.
"""

from repro.analysis.popularity_analysis import build_table6
from repro.analysis.report import render_table


def test_table6_popularity(benchmark, bench_result, bench_popularity, emit_report):
    columns = benchmark(build_table6, bench_result.findings, bench_popularity)

    assert len(columns) == 3
    for column in columns:
        counts = [column.bucket_counts[b] for b in (1_000, 10_000, 100_000, 1_000_000)]
        assert counts == sorted(counts)  # cumulative buckets
        if column.total_domains >= 20:
            assert column.percent_in_top_1m() < 50.0  # long tail dominates

    headers = ["Rank bucket"] + [c.staleness_class.value for c in columns]
    rows = []
    for bucket in (1_000, 10_000, 100_000, 1_000_000):
        rows.append([f"Top {bucket:,}"] + [c.bucket_counts[bucket] for c in columns])
    rows.append(["Total domains"] + [c.total_domains for c in columns])
    rows.append(
        ["% in Top 1M"] + [f"{c.percent_in_top_1m():.1f}%" for c in columns]
    )
    emit_report(
        "table6_popularity",
        render_table(headers, rows, title="Table 6: Domain popularity"),
    )
