"""Table 5 — domain reputation of stale-certificate domains.

Samples stale registrant-change domains, joins against the VT-like store
with the >=5-vendor threshold and temporal-coincidence rule, and tallies the
malware / URL category breakdown and the MW-only / MW+URL / URL-only split.
"""

from repro.analysis.report import render_table
from repro.analysis.reputation_analysis import build_table5


def test_table5_reputation(benchmark, bench_result, bench_reputation_store, emit_report):
    analysis = benchmark(
        build_table5, bench_result.findings, bench_reputation_store, 100_000
    )

    assert analysis.sampled_domains > 0
    # The paper finds ~1% of sampled domains malicious; small but nonzero.
    assert 0 < analysis.detected_fraction < 0.2
    assert (
        analysis.mw_only + analysis.mw_and_url + analysis.url_only
        == analysis.detected_domains
    )

    lines = [
        f"Sampled domains: {analysis.sampled_domains}",
        f"Detected (>=5 vendors, temporally coincident): {analysis.detected_domains} "
        f"({100 * analysis.detected_fraction:.2f}%)",
        f"MW only: {analysis.mw_only}  MW + URL: {analysis.mw_and_url}  "
        f"URL only: {analysis.url_only}",
        "",
        render_table(
            ["Malware category", "Count"],
            sorted(analysis.malware_categories.items(), key=lambda kv: -kv[1]),
        ),
        "",
        render_table(
            ["URL category", "Count"],
            sorted(analysis.url_categories.items(), key=lambda kv: -kv[1]),
        ),
        "",
        render_table(
            ["Family (AVClass2)", "Count"],
            sorted(analysis.families.items(), key=lambda kv: -kv[1]),
        ),
    ]
    emit_report("table5_reputation", "Table 5: Domain reputation\n" + "\n".join(lines))
