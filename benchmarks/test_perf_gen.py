"""Performance benchmark — the streaming world generator.

Not a paper experiment: the scaling guard for ``save --gen-shards``.
Generates worlds at a geometric ladder of scales through the real CLI
(so the run.json RSS accounting is exactly what CI gates on), asserts
the O(shard) memory contract — peak parent RSS must stay essentially
flat while the world grows 10x — and writes the scaling curve to
``benchmarks/reports/perf_gen_scaling.txt``. The committed curve for
the full 100x world (>10^6 domains) lives in
``benchmarks/reports/gen_scale100.txt``; this test keeps the small end
of the same curve honest on every run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.analysis.report import render_table

#: The in-test ladder: the large end (10x) dominates runtime, so the
#: ladder is short; the committed 100x artifact extends it.
_SCALES = (0.1, 1.0, 10.0)

#: Parent peak RSS may grow this much from scale 1.0 to the largest
#: scale. The world grows 10x across that leg; O(shard + segment)
#: memory barely moves once the fixed machinery (sorter run buffers,
#: rolling segment blobs) is warm — measured ~1.3x. The 0.1x rung is
#: reported but not gated by ratio: its baseline is mostly interpreter
#: footprint, which makes ratios there meaningless.
_MAX_RSS_GROWTH = 1.6

#: Absolute ceiling for the parent at the largest rung. The scale-10
#: world holds ~1.3M certificates (~450 MiB materialised as segments);
#: the streaming path peaks well under half of that.
_MAX_PARENT_RSS_BYTES = 512 * 2**20


def _generate(tmp_dir: str, scale: float, shards: int):
    out_dir = os.path.join(tmp_dir, f"scale-{scale}")
    metrics = os.path.join(out_dir, "obs", "metrics.prom")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "save",
            "--seed", "7", "--scale", str(scale),
            "--gen-shards", str(shards),
            "--dir", os.path.join(out_dir, "bundle"),
            "--metrics-out", metrics,
        ],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    with open(os.path.join(out_dir, "obs", "run.json")) as handle:
        manifest = json.load(handle)
    with open(os.path.join(out_dir, "bundle", "dataset.json")) as handle:
        dataset = json.load(handle)
    samples = {}
    with open(metrics) as handle:
        for line in handle:
            if line.startswith("repro_gen_"):
                name, value = line.rsplit(None, 1)
                samples[name] = float(value)
    return manifest, dataset, samples


def test_perf_gen_scaling_curve(tmp_path, emit_report):
    shards = 4
    rows = []
    rss_by_scale = {}
    for scale in _SCALES:
        manifest, dataset, samples = _generate(str(tmp_path), scale, shards)
        domains = int(samples["repro_gen_domains_total"])
        total_rows = sum(
            spec["rows"] for spec in dataset["tables"].values()
        )
        parent_mb = manifest["peak_rss_bytes"] / 2**20
        child_mb = (manifest["peak_rss_children_bytes"] or 0) / 2**20
        rss_by_scale[scale] = manifest["peak_rss_bytes"]
        rows.append((
            f"{scale:g}x",
            f"{domains:,}",
            f"{total_rows:,}",
            int(samples["repro_gen_dns_stride"]),
            f"{manifest['wall_seconds']:.1f}",
            f"{parent_mb:.0f}",
            f"{child_mb:.0f}",
        ))
        assert domains > 0 and total_rows > 0

    # The memory contract: 10x more world past the warm point, ~flat
    # parent RSS — and an absolute ceiling at the largest rung.
    growth = rss_by_scale[_SCALES[-1]] / rss_by_scale[1.0]
    assert growth <= _MAX_RSS_GROWTH, (
        f"parent peak RSS grew {growth:.1f}x from scale 1 to "
        f"{_SCALES[-1]:g}; the streaming path should be O(shard), "
        f"not O(world)"
    )
    assert rss_by_scale[_SCALES[-1]] <= _MAX_PARENT_RSS_BYTES, (
        f"parent peak RSS {rss_by_scale[_SCALES[-1]] / 2**20:.0f} MiB at "
        f"scale {_SCALES[-1]:g} exceeds the "
        f"{_MAX_PARENT_RSS_BYTES / 2**20:.0f} MiB ceiling"
    )

    emit_report(
        "perf_gen_scaling",
        render_table(
            [
                "Scale", "Domains", "Bundle rows", "DNS stride",
                "Wall s", "Parent RSS MiB", "Worker RSS MiB",
            ],
            rows,
            title=(
                f"Streaming generation scaling ({shards} shards; "
                f"parent RSS growth {growth:.2f}x across the "
                f"{_SCALES[-1] / 1.0:g}x world growth past scale 1)"
            ),
        ),
    )
