"""Table 7 (Appendix B) — CRL download coverage per CA operator.

Anti-scraping-blocked CAs sit at 0% while the bulk of the ecosystem is
cleanly collected; total coverage lands near the paper's 98.4%.
"""

from repro.analysis.crl_coverage import build_table7
from repro.analysis.report import render_table


def test_table7_crl_coverage(benchmark, bench_world, emit_report):
    rows = benchmark(build_table7, bench_world.crl_fetcher)

    total = rows[-1]
    assert total.ca_operator == "Total Coverage"
    assert 0.90 <= total.coverage <= 1.0  # paper: 98.40%
    blocked = [r for r in rows if r.coverage == 0.0 and r.attempted > 0]
    assert {r.ca_operator for r in blocked} == {"Microsoft", "Visa"}

    emit_report(
        "table7_crl_coverage",
        render_table(
            ["CA operator", "CRL coverage"],
            [(r.ca_operator, r.coverage_text) for r in rows],
            title="Table 7: CRL coverage",
        ),
    )
