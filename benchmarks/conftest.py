"""Benchmark fixtures.

One bench-scale world is simulated per session and shared by every
experiment. Each bench regenerates its table/figure, asserts the paper's
qualitative shape, benchmarks the analysis step, and writes the rendered
rows to ``benchmarks/reports/<experiment>.txt`` (pytest captures stdout, so
reports go to files; they are also printed for ``-s`` runs).
"""

from __future__ import annotations

import os

import pytest

from repro import MeasurementPipeline, WorldConfig, simulate_world
from repro.popularity import PopularityProvider
from repro.reputation import build_store_from_ownership
from repro.util.rng import RngStream

#: Scale of the benchmark world relative to the default configuration.
BENCH_SCALE = 0.3

_REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def bench_world():
    return simulate_world(WorldConfig(seed=20231024).scaled(BENCH_SCALE))


@pytest.fixture(scope="session")
def bench_result(bench_world):
    pipeline = MeasurementPipeline(
        bench_world.to_bundle(),
        revocation_cutoff_day=bench_world.config.timeline.revocation_cutoff,
    )
    return pipeline.run()


@pytest.fixture(scope="session")
def bench_reputation_store(bench_world):
    return build_store_from_ownership(
        bench_world.malicious_ownership, RngStream(20231024, "bench-vt")
    )


@pytest.fixture(scope="session")
def bench_popularity(bench_world):
    alive = {}
    for name in bench_world.registry.all_domains():
        spans = bench_world.registry.spans(name)
        alive[name] = (
            spans[0].creation_date,
            spans[-1].deleted_on or bench_world.config.timeline.simulation_end,
        )
    return PopularityProvider(bench_world.popularity_ranks, alive)


@pytest.fixture(scope="session")
def emit_report():
    os.makedirs(_REPORT_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = os.path.join(_REPORT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"\n=== {name} ===\n{text}")

    return _emit
