"""Performance benchmark — the world simulator itself.

Not a paper experiment: a regression guard for the library's most expensive
operation (a full 2013–2023 day loop). The report records throughput so
future changes to the simulator show up as timing regressions.
"""

from repro.analysis.report import render_table
from repro.ecosystem import WorldConfig, WorldSimulator


def _run_small_world():
    return WorldSimulator(WorldConfig(seed=515).scaled(0.05)).run()


def test_perf_simulator_full_decade(benchmark, emit_report):
    world = benchmark.pedantic(_run_small_world, rounds=3, iterations=1)
    summary = world.dataset_summary()
    assert summary["ct_unique_certificates"] > 500
    days = world.config.timeline.simulation_end - world.config.timeline.simulation_start + 1
    emit_report(
        "perf_simulator",
        render_table(
            ["Quantity", "Value"],
            [
                ("simulated days", days),
                ("certificates issued", world.total_certificates_issued),
                ("unique certificates (CT)", summary["ct_unique_certificates"]),
                ("registered domains", summary["registered_domains"]),
                ("ground-truth events", summary["ground_truth_events"]),
                ("mean seconds (3 rounds)", f"{benchmark.stats['mean']:.2f}"),
                ("simulated days / second", f"{days / benchmark.stats['mean']:.0f}"),
            ],
            title="Performance: full-decade simulation at scale 0.05",
        ),
    )
