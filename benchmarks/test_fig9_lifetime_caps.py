"""Figure 9 + Section 6 headline — staleness under maximum-lifetime caps.

Regenerates the 45/90/215-day capping experiment per staleness class and the
pooled "90-day cap => ~75% fewer staleness-days" headline. Shape checks:
reductions are monotone in the cap, every class clears 50% at 90 days, and
the pooled 90-day reduction lands in the paper's band.
"""

from repro.analysis.figures import build_fig9
from repro.analysis.report import render_table
from repro.core.lifetime import LifetimePolicySimulator
from repro.core.stale import StalenessClass

#: Paper values for the staleness-days reduction per (class, cap).
PAPER = {
    (StalenessClass.KEY_COMPROMISE, 45): 0.896,
    (StalenessClass.KEY_COMPROMISE, 90): 0.752,
    (StalenessClass.KEY_COMPROMISE, 215): 0.443,
    (StalenessClass.REGISTRANT_CHANGE, 45): 0.967,
    (StalenessClass.REGISTRANT_CHANGE, 90): 0.867,
    (StalenessClass.REGISTRANT_CHANGE, 215): 0.358,
    (StalenessClass.MANAGED_TLS_DEPARTURE, 45): 0.977,
    (StalenessClass.MANAGED_TLS_DEPARTURE, 90): 0.753,
    (StalenessClass.MANAGED_TLS_DEPARTURE, 215): 0.453,
}


def test_fig9_lifetime_caps(benchmark, bench_result, emit_report):
    matrix = benchmark(build_fig9, bench_result.findings)

    rows = []
    for cls, results in matrix.items():
        reductions = [r.staleness_days_reduction for r in results]
        assert reductions == sorted(reductions, reverse=True)  # monotone in cap
        for r in results:
            if r.cap_days == 90:
                assert r.staleness_days_reduction > 0.5
            rows.append(
                (
                    cls.value,
                    r.cap_days,
                    f"{100 * r.staleness_days_reduction:.1f}%",
                    f"{100 * PAPER[(cls, r.cap_days)]:.1f}%",
                    f"{100 * r.certificate_reduction:.1f}%",
                )
            )

    overall = LifetimePolicySimulator(bench_result.findings).overall_staleness_reduction(90)
    assert overall > 0.5  # paper headline: ~75%

    emit_report(
        "fig9_lifetime_caps",
        render_table(
            ["Class", "Cap (days)", "Staleness-days reduction (ours)",
             "(paper)", "Certs eliminated"],
            rows,
            title=(
                "Figure 9: Simulated staleness under lifetime caps  "
                f"[overall 90-day reduction: {100 * overall:.1f}% "
                "(paper: ~75%)]"
            ),
        ),
    )
