"""Performance benchmark — parallel lint (``--jobs``) vs serial.

Not a paper experiment: quantifies the process-pool fan-out of the lint
engine's read/parse/per-file-rule/fact-extraction phase. The gate runs
the full shipped tree (``src`` + ``tests``) both ways and requires:

* **identical output** — findings must be byte-for-byte the same for
  every worker count (the determinism contract ``--jobs`` ships with);
* **>= 1.5x speedup** on hosts with at least 4 cores. On smaller hosts
  the pool cannot win by construction, so the timing gate is skipped
  (the determinism assertion still runs).
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro.analysis.report import render_table
from repro.lint import LintRunner

ROUNDS = 2
MIN_CORES_FOR_GATE = 4
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT_PATHS = [
    os.path.join(REPO_ROOT, "src"),
    os.path.join(REPO_ROOT, "tests"),
]


def _best_of(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        started = perf_counter()
        result = fn()
        elapsed = perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _finding_records(report):
    return [f.to_record() for f in report.findings]


def test_perf_parallel_lint(emit_report):
    cores = os.cpu_count() or 1
    jobs = max(2, cores)

    serial_seconds, serial_report = _best_of(
        lambda: LintRunner(jobs=1).run(LINT_PATHS)
    )
    parallel_seconds, parallel_report = _best_of(
        lambda: LintRunner(jobs=jobs).run(LINT_PATHS)
    )

    assert _finding_records(parallel_report) == _finding_records(
        serial_report
    ), "worker count changed the findings — speed is irrelevant"
    assert parallel_report.files_scanned == serial_report.files_scanned

    speedup = serial_seconds / parallel_seconds
    emit_report(
        "perf_lint",
        render_table(
            ["Quantity", "Value"],
            [
                ("files scanned", f"{serial_report.files_scanned:,}"),
                ("cores", str(cores)),
                ("jobs", str(jobs)),
                ("serial seconds", f"{serial_seconds:.2f}"),
                ("parallel seconds", f"{parallel_seconds:.2f}"),
                ("speedup", f"{speedup:.2f}x"),
            ],
            title="Performance: parallel lint vs serial (shipped tree)",
        ),
    )

    if cores < MIN_CORES_FOR_GATE:
        pytest.skip(
            f"{cores} core(s): the pool cannot win; determinism checked, "
            "timing gate skipped"
        )
    assert speedup >= 1.5, (
        f"parallel lint only {speedup:.2f}x faster with {jobs} jobs on "
        f"{cores} cores"
    )
