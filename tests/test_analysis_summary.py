"""Tests for the executive-summary scorecard."""

import pytest

from repro.analysis.summary import evaluate_claims, render_summary
from repro.core.pipeline import PipelineResult
from repro.core.stale import StaleFindings


class TestOnWorld:
    def test_all_claims_hold_on_simulated_world(self, pipeline_result):
        checks = evaluate_claims(pipeline_result)
        assert len(checks) >= 6
        failing = [check.claim for check in checks if not check.holds]
        assert failing == []

    def test_render_summary_scorecard(self, pipeline_result):
        text = render_summary(pipeline_result)
        assert "claims hold" in text
        assert "PASS" in text
        assert "398d > 300d > 90d" in text


class TestOnEmptyFindings:
    def test_empty_results_fail_safe(self):
        empty = PipelineResult(findings=StaleFindings())
        checks = evaluate_claims(empty)
        assert all(not check.holds for check in checks)
        text = render_summary(empty)
        assert "0/" in text
