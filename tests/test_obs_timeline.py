"""Timeline data plane: writer durability, reader tolerance, summaries.

The crash-durability contract under test: a run killed mid-append leaves
a timeline whose last line may be truncated — the reader drops exactly
that line and keeps everything before it — while a malformed line
anywhere *else* is corruption and raises.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.timeline import (
    TIMELINE_NAME,
    TimelineWriter,
    diff_summaries,
    histogram_quantiles,
    quantile_from_buckets,
    read_timeline,
    snapshots,
    summarize_timeline,
    timeline_meta,
)


def _snapshot(seq, elapsed, phases=None, rss=None, final=False):
    record = {
        "kind": "snapshot",
        "seq": seq,
        "ts": 1700000000.0 + elapsed,
        "elapsed": elapsed,
        "rss_bytes": rss,
        "phases": phases or {},
        "samples": {},
        "open_spans": [],
    }
    if final:
        record["final"] = True
    return record


def write_fixture(path, records):
    writer = TimelineWriter(str(path))
    for record in records:
        writer.append(record)
    writer.close()


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        path = tmp_path / TIMELINE_NAME
        records = [
            {"kind": "meta", "schema": 1, "command": "detect",
             "heartbeat_seconds": 0.5},
            _snapshot(1, 0.5),
            {"kind": "marker", "elapsed": 0.7, "resumed_from": 123},
            _snapshot(2, 1.0, final=True),
        ]
        write_fixture(path, records)
        back = read_timeline(str(path))
        assert back == json.loads(json.dumps(records))
        assert timeline_meta(back)["command"] == "detect"
        assert [s["seq"] for s in snapshots(back)] == [1, 2]

    def test_read_accepts_directory(self, tmp_path):
        write_fixture(tmp_path / TIMELINE_NAME, [_snapshot(1, 0.1)])
        assert len(read_timeline(str(tmp_path))) == 1

    def test_truncated_last_line_dropped(self, tmp_path):
        """SIGKILL mid-append: the partial final line is not an error."""
        path = tmp_path / TIMELINE_NAME
        write_fixture(path, [_snapshot(1, 0.5), _snapshot(2, 1.0)])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "snapshot", "seq": 3, "elaps')
        back = read_timeline(str(path))
        assert [s["seq"] for s in snapshots(back)] == [1, 2]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / TIMELINE_NAME
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(_snapshot(1, 0.5)) + "\n")
            handle.write("{broken\n")
            handle.write(json.dumps(_snapshot(2, 1.0)) + "\n")
        with pytest.raises(ValueError, match=r":2: corrupt timeline record"):
            read_timeline(str(path))

    def test_non_object_record_raises(self, tmp_path):
        path = tmp_path / TIMELINE_NAME
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[1, 2]\n")
            handle.write(json.dumps(_snapshot(1, 0.5)) + "\n")
        with pytest.raises(ValueError, match="not an object"):
            read_timeline(str(path))

    def test_writer_truncates_previous_run(self, tmp_path):
        path = tmp_path / TIMELINE_NAME
        write_fixture(path, [_snapshot(1, 0.5), _snapshot(2, 1.0)])
        write_fixture(path, [_snapshot(1, 0.2)])
        assert [s["seq"] for s in snapshots(read_timeline(str(path)))] == [1]


class TestSummaries:
    def fixture_records(self):
        return [
            {"kind": "meta", "schema": 1, "command": "detect",
             "heartbeat_seconds": 0.5},
            _snapshot(1, 0.5, phases={
                "detect_shards": {"done": 1.0, "total": 4.0, "rate": None},
            }, rss=100 << 20),
            _snapshot(2, 1.0, phases={
                "detect_shards": {"done": 2.0, "total": 4.0, "rate": 2.0},
            }, rss=150 << 20),
            _snapshot(3, 1.5, phases={
                "detect_shards": {"done": 4.0, "total": 4.0, "rate": 4.0},
            }, rss=120 << 20, final=True),
        ]

    def test_summarize(self):
        summary = summarize_timeline(self.fixture_records())
        assert summary["command"] == "detect"
        assert summary["snapshots"] == 3
        assert summary["duration_seconds"] == 1.5
        assert summary["monotonic"] is True
        phase = summary["phases"]["detect_shards"]
        assert phase["done"] == 4.0 and phase["total"] == 4.0
        # 3 units between first-seen (0.5s, done=1) and last (1.5s).
        assert phase["mean_rate"] == 3.0
        assert summary["rss"] == {
            "first_bytes": 100 << 20,
            "max_bytes": 150 << 20,
            "final_bytes": 120 << 20,
        }
        assert summary["mean_interval_seconds"] == 0.5

    def test_summarize_flags_regressed_progress(self):
        records = self.fixture_records()
        records[3]["phases"]["detect_shards"]["done"] = 1.0  # went backwards
        assert summarize_timeline(records)["monotonic"] is False

    def test_summarize_empty(self):
        summary = summarize_timeline([])
        assert summary["snapshots"] == 0
        assert summary["duration_seconds"] is None

    def test_diff_flags_rss_and_rate_regressions(self):
        base = summarize_timeline(self.fixture_records())
        slower = self.fixture_records()
        slower[3]["phases"]["detect_shards"]["done"] = 1.5
        for record in snapshots(slower):
            record["rss_bytes"] = record["rss_bytes"] * 2
        diff = diff_summaries(base, summarize_timeline(slower), threshold_pct=25.0)
        assert not diff["ok"]
        assert set(diff["regressions"]) == {"rss_max_bytes", "phase:detect_shards"}

    def test_diff_passes_within_threshold(self):
        base = summarize_timeline(self.fixture_records())
        diff = diff_summaries(base, base, threshold_pct=25.0)
        assert diff["ok"] and diff["regressions"] == []

    def test_diff_ignores_phases_missing_on_one_side(self):
        base = summarize_timeline(self.fixture_records())
        other = dict(base)
        other["phases"] = {}
        diff = diff_summaries(base, other)
        assert diff["ok"]  # absent phases are reported, never gated


class TestQuantiles:
    def test_quantile_from_buckets(self):
        buckets = [(0.1, 50.0), (1.0, 90.0), (float("inf"), 100.0)]
        assert quantile_from_buckets(buckets, 0.5) == 0.1
        assert quantile_from_buckets(buckets, 0.9) == 1.0
        assert quantile_from_buckets(buckets, 0.99) == float("inf")
        assert quantile_from_buckets([], 0.5) is None
        assert quantile_from_buckets([(1.0, 0.0)], 0.5) is None

    def test_histogram_quantiles_groups_by_labels(self):
        samples = {
            'repro_serve_request_seconds_bucket{le="0.1",route="/health"}': 9.0,
            'repro_serve_request_seconds_bucket{le="+Inf",route="/health"}': 10.0,
            'repro_serve_request_seconds_bucket{le="0.1",route="/v1"}': 1.0,
            'repro_serve_request_seconds_bucket{le="+Inf",route="/v1"}': 1.0,
            "unrelated_total": 5.0,
        }
        result = histogram_quantiles(samples, "repro_serve_request_seconds")
        assert result['route="/health"'][0.5] == 0.1
        assert result['route="/health"'][0.99] == float("inf")
        assert result['route="/v1"'][0.99] == 0.1
