"""Tests for trusted-log lists."""

import pytest

from repro.ct.log import CtLog
from repro.ct.loglist import LogList, TrustOperator
from repro.util.dates import day

T0 = day(2019, 1, 1)


@pytest.fixture()
def log_list():
    ll = LogList()
    for log_id in ("a-log", "b-log", "never-trusted"):
        ll.add_log(CtLog(log_id, "Op"))
    ll.trust("a-log", TrustOperator.CHROME, T0)
    ll.trust("b-log", TrustOperator.APPLE, T0 + 100)
    return ll


class TestTrust:
    def test_duplicate_log_rejected(self, log_list):
        with pytest.raises(ValueError):
            log_list.add_log(CtLog("a-log", "Op"))

    def test_trust_unknown_log_rejected(self, log_list):
        with pytest.raises(KeyError):
            log_list.trust("ghost", TrustOperator.CHROME, T0)

    def test_logs_trusted_on_day(self, log_list):
        assert [l.log_id for l in log_list.logs_trusted_on(T0)] == ["a-log"]
        assert [l.log_id for l in log_list.logs_trusted_on(T0 + 100)] == [
            "a-log",
            "b-log",
        ]

    def test_operator_filter(self, log_list):
        chrome = log_list.logs_trusted_on(T0 + 200, TrustOperator.CHROME)
        assert [l.log_id for l in chrome] == ["a-log"]

    def test_distrust_closes_interval(self, log_list):
        log_list.distrust("a-log", TrustOperator.CHROME, T0 + 50)
        assert log_list.logs_trusted_on(T0 + 50) == []
        assert [l.log_id for l in log_list.logs_trusted_on(T0 + 10)] == ["a-log"]

    def test_distrust_without_open_interval(self, log_list):
        with pytest.raises(KeyError):
            log_list.distrust("b-log", TrustOperator.CHROME, T0)

    def test_ever_trusted_includes_distrusted(self, log_list):
        log_list.distrust("a-log", TrustOperator.CHROME, T0 + 50)
        ever = {l.log_id for l in log_list.logs_ever_trusted()}
        # The paper's criterion: trusted "at some point in time".
        assert ever == {"a-log", "b-log"}

    def test_never_trusted_excluded(self, log_list):
        assert "never-trusted" not in {l.log_id for l in log_list.logs_ever_trusted()}

    def test_all_logs(self, log_list):
        assert len(log_list.all_logs()) == 3
        assert len(log_list) == 3
