"""``repro lint --fix``: mechanical rewrites and their idempotence."""

from __future__ import annotations

from repro.lint import LintRunner, apply_fixes, fix_files

PATH = "src/repro/core/sample.py"


def lint(source: str):
    return LintRunner().run_source(source, PATH)


def fix_once(source: str):
    return apply_fixes(source, lint(source))


class TestBareExceptFix:
    SOURCE = (
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except:\n"
        "        raise ValueError('no')\n"
    )

    def test_rewrites_to_except_exception(self):
        fixed, applied = fix_once(self.SOURCE)
        assert applied == 1
        assert "except Exception:" in fixed
        assert "except:" not in fixed.replace("except Exception:", "")

    def test_fix_is_idempotent(self):
        fixed, _ = fix_once(self.SOURCE)
        again, applied = fix_once(fixed)
        assert applied == 0
        assert again == fixed

    def test_fixed_source_no_longer_fires_rl501(self):
        fixed, _ = fix_once(self.SOURCE)
        assert not [f for f in lint(fixed) if f.code == "RL501"]


class TestSortedWrapFix:
    def test_wraps_for_loop_iterable(self):
        source = (
            "def merge(a, b):\n"
            "    out = []\n"
            "    for key in set(a) | set(b):\n"
            "        out.append(key)\n"
            "    return out\n"
        )
        fixed, applied = fix_once(source)
        assert applied == 1
        assert "for key in sorted(set(a) | set(b)):" in fixed

    def test_wraps_comprehension_iterable(self):
        source = "def f(groups):\n    return [x for x in {g for g in groups}]\n"
        fixed, applied = fix_once(source)
        assert applied == 1
        assert "[x for x in sorted({g for g in groups})]" in fixed

    def test_wraps_multiline_expression(self):
        source = (
            "def merge(a, b):\n"
            "    for key in set(a) | set(\n"
            "        b\n"
            "    ):\n"
            "        yield key\n"
        )
        fixed, applied = fix_once(source)
        assert applied == 1
        assert "for key in sorted(set(a) | set(" in fixed
        assert "    )):" in fixed

    def test_fix_is_idempotent_and_silences_rl103(self):
        source = "def f(a):\n    return [k for k in set(a)]\n"
        fixed, _ = fix_once(source)
        assert not [f for f in lint(fixed) if f.code == "RL103"]
        again, applied = fix_once(fixed)
        assert applied == 0 and again == fixed


class TestMixedFixes:
    SOURCE = (
        "def f(a):\n"
        "    try:\n"
        "        for k in set(a):\n"
        "            print(k)\n"
        "    except:\n"
        "        raise RuntimeError('x')\n"
    )

    def test_both_fix_kinds_apply_in_one_pass(self):
        fixed, applied = fix_once(self.SOURCE)
        assert applied == 2
        assert "for k in sorted(set(a)):" in fixed
        assert "except Exception:" in fixed
        remaining = {f.code for f in lint(fixed)}
        assert not remaining & {"RL103", "RL501"}

    def test_double_pass_converges(self):
        once, _ = fix_once(self.SOURCE)
        twice, applied = fix_once(once)
        assert applied == 0 and twice == once


class TestFixFiles:
    def test_writes_fixed_files_and_reports_counts(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "core" / "a.py"
        target.parent.mkdir(parents=True)
        target.write_text(TestMixedFixes.SOURCE)

        report = LintRunner().run(["src"])
        results = fix_files(report.findings)
        assert results == {"src/repro/core/a.py": 2}
        assert "sorted(set(a))" in target.read_text()

        # After the rewrite the tree carries no fixable findings.
        report = LintRunner().run(["src"])
        assert not [f for f in report.findings if f.fixable]
        assert fix_files(report.findings) == {}
