"""Tests for the BygoneSSL-style acquisition advisor."""

import pytest

from repro.core.advisory import (
    KeyController,
    Remediation,
    StaleCertificateAdvisor,
)
from repro.ct.dedup import CertificateCorpus
from repro.pki.keys import KeyStore
from repro.util.dates import day
from tests.conftest import make_cert

ACQUIRED = day(2022, 6, 1)


def corpus_with(*certs):
    corpus = CertificateCorpus()
    corpus.ingest(certs)
    return corpus


class TestCheckAcquisition:
    def test_unexpired_prior_cert_is_exposure(self):
        cert = make_cert(sans=("foo.com", "www.foo.com"), serial=140_001,
                         not_before=ACQUIRED - 100, lifetime=365)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert not report.is_clean
        exposure = report.exposures[0]
        assert exposure.matched_names == ("foo.com", "www.foo.com")
        assert exposure.exposure_days_remaining == 265
        assert report.exposure_ends == cert.not_after
        assert "impersonation possible" in report.summary()

    def test_expired_prior_cert_is_not_exposure(self):
        cert = make_cert(sans=("foo.com",), serial=140_002,
                         not_before=ACQUIRED - 400, lifetime=90)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.is_clean
        assert "safe to deploy" in report.summary()

    def test_post_acquisition_cert_is_not_exposure(self):
        cert = make_cert(sans=("foo.com",), serial=140_003,
                         not_before=ACQUIRED + 10, lifetime=90)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.is_clean

    def test_subdomain_certificates_matched(self):
        cert = make_cert(sans=("mail.foo.com",), serial=140_004,
                         not_before=ACQUIRED - 10, lifetime=365)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.exposures[0].matched_names == ("mail.foo.com",)

    def test_unrelated_domains_ignored(self):
        cert = make_cert(sans=("foofoo.com",), serial=140_005,
                         not_before=ACQUIRED - 10, lifetime=365)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.is_clean  # label-aligned matching only

    def test_exposures_sorted_longest_first(self):
        near = make_cert(sans=("foo.com",), serial=140_006,
                         not_before=ACQUIRED - 300, lifetime=365)
        far = make_cert(sans=("foo.com",), serial=140_007,
                        not_before=ACQUIRED - 10, lifetime=365)
        report = StaleCertificateAdvisor(corpus_with(near, far)).check_acquisition(
            "foo.com", ACQUIRED
        )
        remaining = [e.exposure_days_remaining for e in report.exposures]
        assert remaining == sorted(remaining, reverse=True)
        assert report.total_exposure_days == sum(remaining)


class TestControllerClassification:
    def test_managed_tls_provider(self):
        cert = make_cert(sans=("sni1234.cloudflaressl.com", "foo.com"),
                         serial=140_010, not_before=ACQUIRED - 10, lifetime=365)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.exposures[0].controller is KeyController.MANAGED_TLS_PROVIDER

    def test_previous_registrant(self):
        store = KeyStore()
        key = store.generate("registrant-42", ACQUIRED - 10)
        cert = make_cert(sans=("foo.com",), serial=140_011, key=key,
                         not_before=ACQUIRED - 10, lifetime=365)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.exposures[0].controller is KeyController.PREVIOUS_REGISTRANT

    def test_unknown_third_party(self):
        report = StaleCertificateAdvisor(
            corpus_with(
                make_cert(sans=("foo.com",), serial=140_012,
                          not_before=ACQUIRED - 10, lifetime=365)
            )
        ).check_acquisition("foo.com", ACQUIRED)
        assert report.exposures[0].controller is KeyController.UNKNOWN_THIRD_PARTY


class TestRemediation:
    def test_revocation_suggested_when_endpoints_exist(self):
        cert = make_cert(sans=("foo.com",), serial=140_020,
                         not_before=ACQUIRED - 10, lifetime=365,
                         crl_url="http://crl.example/x.crl")
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.exposures[0].remediation is Remediation.REQUEST_REVOCATION
        assert "remediation" in report.exposures[0].describe()

    def test_wait_for_expiry_without_revocation_infra(self):
        cert = make_cert(sans=("foo.com",), serial=140_021,
                         not_before=ACQUIRED - 10, lifetime=365,
                         crl_url=None, ocsp_url=None)
        report = StaleCertificateAdvisor(corpus_with(cert)).check_acquisition(
            "foo.com", ACQUIRED
        )
        assert report.exposures[0].remediation is Remediation.WAIT_FOR_EXPIRY


class TestMonitorNewIssuance:
    def test_new_certs_after_acquisition_listed(self):
        old = make_cert(sans=("foo.com",), serial=140_030,
                        not_before=ACQUIRED - 50, lifetime=90)
        new = make_cert(sans=("foo.com",), serial=140_031,
                        not_before=ACQUIRED + 5, lifetime=90)
        advisor = StaleCertificateAdvisor(corpus_with(old, new))
        issued = advisor.monitor_new_issuance("foo.com", ACQUIRED)
        assert [c.serial for c in issued] == [140_031]


class TestOnSimulatedWorld:
    def test_re_registered_domains_show_exposures(self, small_world, pipeline_result):
        from repro.core.stale import StalenessClass

        findings = pipeline_result.findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        assert findings
        advisor = StaleCertificateAdvisor(small_world.corpus)
        finding = findings[0]
        report = advisor.check_acquisition(
            finding.affected_domain, finding.invalidation_day
        )
        assert not report.is_clean
        serials = {e.certificate.serial for e in report.exposures}
        assert finding.certificate.serial in serials
