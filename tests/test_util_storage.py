"""Tests for the JSONL store and single-document JSON helpers."""

import os

import pytest

from repro.util.storage import JsonlStore, dump_json, dump_jsonl, load_json, load_jsonl


class TestDumpLoad:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.jsonl")
        records = [{"a": 1}, {"b": [1, 2]}, {"c": {"d": "x"}}]
        assert dump_jsonl(path, records) == 3
        assert list(load_jsonl(path)) == records

    def test_gzip_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.jsonl.gz")
        records = [{"i": i} for i in range(100)]
        dump_jsonl(path, records)
        assert list(load_jsonl(path)) == records

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "data.jsonl")
        dump_jsonl(path, [{"a": 1}])
        assert not os.path.exists(path + ".tmp")

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            list(load_jsonl(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "blank.jsonl")
        with open(path, "w") as handle:
            handle.write('{"a": 1}\n\n{"b": 2}\n')
        assert list(load_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_keys_sorted_for_stable_diffs(self, tmp_path):
        path = str(tmp_path / "sorted.jsonl")
        dump_jsonl(path, [{"z": 1, "a": 2}])
        with open(path) as handle:
            assert handle.read() == '{"a":2,"z":1}\n'


class TestJsonlStore:
    def test_encode_decode_hooks(self, tmp_path):
        path = str(tmp_path / "objs.jsonl")
        store = JsonlStore(
            path,
            encode=lambda pair: {"x": pair[0], "y": pair[1]},
            decode=lambda rec: (rec["x"], rec["y"]),
        )
        store.write([(1, 2), (3, 4)])
        assert store.read_all() == [(1, 2), (3, 4)]

    def test_exists(self, tmp_path):
        store = JsonlStore(str(tmp_path / "missing.jsonl"))
        assert not store.exists()
        store.write([])
        assert store.exists()


class TestJsonDocument:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "doc.json")
        payload = {"a": [1, 2, 3], "b": {"nested": True}, "c": None}
        assert dump_json(path, payload) == path
        assert load_json(path) == payload

    def test_gzip_roundtrip(self, tmp_path):
        path = str(tmp_path / "doc.json.gz")
        payload = {"rows": list(range(500))}
        dump_json(path, payload)
        assert load_json(path) == payload

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "doc.json")
        dump_json(path, {"a": 1})
        assert not os.path.exists(path + ".tmp")

    def test_malformed_document_raises(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            handle.write("{truncated")
        with pytest.raises(ValueError, match="malformed JSON"):
            load_json(path)

    def test_keys_sorted_for_stable_diffs(self, tmp_path):
        path = str(tmp_path / "sorted.json")
        dump_json(path, {"z": 1, "a": 2})
        with open(path) as handle:
            assert handle.read() == '{"a":2,"z":1}'
