"""Tests for ECDF, survival curves, and percentile helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import Ecdf, SurvivalCurve, histogram_by, median, percentile, quantiles


class TestPercentiles:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_bounds(self):
        values = list(range(11))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 10

    def test_percentile_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_percentile_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_quantiles_batch(self):
        assert quantiles([1, 2, 3, 4, 5], [0, 50, 100]) == [1, 3, 5]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_median_between_min_and_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestEcdf:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Ecdf([])

    def test_evaluate_steps(self):
        ecdf = Ecdf([1, 2, 2, 3])
        assert ecdf.evaluate(0) == 0.0
        assert ecdf.evaluate(1) == 0.25
        assert ecdf.evaluate(2) == 0.75
        assert ecdf.evaluate(3) == 1.0

    def test_proportion_above(self):
        ecdf = Ecdf([10, 20, 30, 40])
        assert ecdf.proportion_above(20) == pytest.approx(0.5)

    def test_quantile(self):
        ecdf = Ecdf([1, 2, 3, 4])
        assert ecdf.quantile(0.5) == 2
        assert ecdf.quantile(1.0) == 4

    def test_quantile_non_integer_product(self):
        # Regression: ceil(q*n) must round UP for fractional products.
        ecdf = Ecdf([1, 2, 3, 4])
        assert ecdf.quantile(0.3) == 2  # ceil(1.2) = 2 -> second smallest
        assert ecdf.quantile(0.76) == 4  # ceil(3.04) = 4

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=40),
           st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_is_smallest_sample_reaching_q(self, samples, q):
        ecdf = Ecdf(samples)
        value = ecdf.quantile(q)
        assert ecdf.evaluate(value) >= q - 1e-12
        smaller = [s for s in samples if s < value]
        if smaller:
            assert ecdf.evaluate(max(smaller)) < q

    def test_quantile_rejects_zero(self):
        with pytest.raises(ValueError):
            Ecdf([1]).quantile(0.0)

    def test_curve_monotone(self):
        ecdf = Ecdf([5, 1, 9, 4, 4, 2])
        curve = ecdf.curve(points=50)
        ys = [y for _, y in curve]
        assert ys == sorted(ys)
        assert curve[-1][1] == 1.0

    def test_curve_single_value(self):
        assert Ecdf([7, 7]).curve() == [(7, 1.0)]

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=80))
    def test_evaluate_matches_count(self, samples):
        ecdf = Ecdf(samples)
        x = samples[0]
        expected = sum(1 for s in samples if s <= x) / len(samples)
        assert ecdf.evaluate(x) == pytest.approx(expected)


class TestSurvivalCurve:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SurvivalCurve([])

    def test_survival_basic(self):
        curve = SurvivalCurve([10, 20, 30, 40])
        assert curve.survival_at(0) == 1.0
        assert curve.survival_at(10) == 0.75
        assert curve.survival_at(40) == 0.0

    def test_reduction_if_capped_equals_survival(self):
        curve = SurvivalCurve([30, 100, 200, 400])
        assert curve.reduction_if_capped(90) == curve.survival_at(90) == 0.75

    def test_steps_are_decreasing(self):
        curve = SurvivalCurve([5, 5, 1, 9, 3])
        steps = curve.steps()
        times = [p.time for p in steps]
        survs = [p.survival for p in steps]
        assert times == sorted(times)
        assert survs == sorted(survs, reverse=True)
        assert steps[-1].survival == 0.0

    def test_steps_collapse_duplicates(self):
        steps = SurvivalCurve([2, 2, 2]).steps()
        assert len(steps) == 1
        assert steps[0].survival == 0.0

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=60), st.integers(0, 500))
    def test_survival_is_fraction_strictly_greater(self, samples, t):
        curve = SurvivalCurve(samples)
        expected = sum(1 for s in samples if s > t) / len(samples)
        assert curve.survival_at(t) == pytest.approx(expected)


class TestHistogramBy:
    def test_counts(self):
        assert histogram_by(["a", "b", "a"]) == {"a": 2, "b": 1}

    def test_sums_values(self):
        assert histogram_by(["a", "a", "b"], [1.0, 2.0, 4.0]) == {"a": 3.0, "b": 4.0}
