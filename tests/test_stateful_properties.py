"""Stateful property tests (hypothesis RuleBasedStateMachine).

Two core data structures get adversarial operation sequences:

* the registry — registrations, renewals, transfers, deletions, and
  re-registrations in arbitrary valid orders must preserve the invariants
  the registrant-change detector relies on (creation dates only move
  forward via re-registration; at most one active span; WHOIS answers
  consistent with the span set);
* the CT log — any interleaving of submissions and tree-head reads must
  keep inclusion and consistency proofs verifiable (append-only history).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.ct.log import CtLog
from repro.ct.merkle import verify_consistency, verify_inclusion
from repro.util.dates import day
from repro.whois.registry import Registry
from tests.conftest import make_cert

T0 = day(2018, 1, 1)


class RegistryMachine(RuleBasedStateMachine):
    """Random walks over the registry API, time always moving forward."""

    def __init__(self):
        super().__init__()
        self.registry = Registry(operated_tlds=("com",))
        self.clock = T0
        self.counter = 0
        self.names = ["walk0.com", "walk1.com", "walk2.com"]

    def _advance(self, days):
        self.clock += days
        return self.clock

    @rule(index=st.integers(0, 2), gap=st.integers(1, 200))
    def register_if_free(self, index, gap):
        name = self.names[index]
        when = self._advance(gap)
        if self.registry.current(name) is None:
            spans = self.registry.spans(name)
            if not spans or (spans[-1].deleted_on is not None and spans[-1].deleted_on <= when):
                self.registry.register(name, f"owner-{self.counter}", "R", when)
                self.counter += 1

    @rule(index=st.integers(0, 2), gap=st.integers(1, 100))
    def renew_if_possible(self, index, gap):
        name = self.names[index]
        when = self._advance(gap)
        registration = self.registry.current(name)
        if registration is None:
            return
        from repro.whois.lifecycle import DomainState

        if registration.state_on(when) in (DomainState.ACTIVE, DomainState.AUTO_RENEW_GRACE):
            self.registry.renew(name, when)

    @rule(index=st.integers(0, 2), gap=st.integers(1, 100))
    def transfer_if_active(self, index, gap):
        name = self.names[index]
        when = self._advance(gap)
        registration = self.registry.current(name)
        if registration is None:
            return
        from repro.whois.lifecycle import DomainState

        if registration.state_on(when) is not DomainState.RELEASED:
            self.registry.transfer(name, f"owner-{self.counter}", when)
            self.counter += 1

    @rule(index=st.integers(0, 2), gap=st.integers(1, 100))
    def delete_if_active(self, index, gap):
        name = self.names[index]
        when = self._advance(gap)
        if self.registry.current(name) is not None:
            self.registry.delete(name, when)

    @invariant()
    def at_most_one_active_span(self):
        for name in self.names:
            spans = self.registry.spans(name)
            active = [s for s in spans if s.deleted_on is None]
            assert len(active) <= 1

    @invariant()
    def creation_dates_strictly_increase(self):
        for name in self.names:
            creations = [s.creation_date for s in self.registry.spans(name)]
            assert creations == sorted(creations)
            assert len(creations) == len(set(creations)) or not creations

    @invariant()
    def spans_do_not_overlap(self):
        for name in self.names:
            spans = self.registry.spans(name)
            for previous, current in zip(spans, spans[1:]):
                assert previous.deleted_on is not None
                assert previous.deleted_on <= current.creation_date

    @invariant()
    def whois_matches_some_span(self):
        for name in self.names:
            record = self.registry.whois(name, self.clock)
            spans = self.registry.spans(name)
            if record is None:
                continue
            assert any(s.creation_date == record.creation_date for s in spans)


TestRegistryStateful = RegistryMachine.TestCase
TestRegistryStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)


class CtLogMachine(RuleBasedStateMachine):
    """Submissions interleaved with audited reads of an append-only log."""

    def __init__(self):
        super().__init__()
        self.log = CtLog("stateful-log", "Op")
        self.serial = 170_000
        self.checkpoints = []  # (size, root)

    @rule(batch=st.integers(1, 5))
    def submit_batch(self, batch):
        for _ in range(batch):
            self.serial += 1
            self.log.submit(make_cert(serial=self.serial, not_before=T0), T0)

    @rule()
    def take_checkpoint(self):
        size = self.log.tree_size
        if size:
            self.checkpoints.append((size, self.log.root_hash(size)))

    @precondition(lambda self: self.log.tree_size > 0)
    @rule(data=st.data())
    def verify_random_inclusion(self, data):
        size = self.log.tree_size
        index = data.draw(st.integers(0, size - 1))
        entry = self.log.get_entries(index, index)[0]
        proof = self.log.inclusion_proof(index, size)
        assert verify_inclusion(
            entry.leaf_bytes(), index, size, proof, self.log.root_hash(size)
        )

    @invariant()
    def all_checkpoints_remain_consistent(self):
        current_size = self.log.tree_size
        if not current_size:
            return
        current_root = self.log.root_hash(current_size)
        for size, root in self.checkpoints:
            proof = self.log.consistency_proof(size, current_size)
            assert verify_consistency(size, current_size, root, current_root, proof)


TestCtLogStateful = CtLogMachine.TestCase
TestCtLogStateful.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
