"""Tests for the simulated TLS handshake and the interception threat model."""

import pytest

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.pki.keys import KeyStore
from repro.pki.tls import (
    HandshakeStatus,
    Network,
    TlsClient,
    TlsServer,
)
from repro.revocation.checking import RevocationChecker, RevocationPolicy
from repro.revocation.ocsp import OcspResponder
from repro.revocation.publisher import CaCrlPublisher
from repro.revocation.reasons import RevocationReason
from repro.util.dates import day

T0 = day(2022, 1, 1)


@pytest.fixture()
def pki(key_store):
    ca = CertificateAuthority(
        "TLS Test CA", key_store, policy=IssuancePolicy(require_validation=False)
    )
    owner_key = key_store.generate("server:legit", T0)
    certificate = ca.issue(["example.com", "*.example.com"], owner_key, T0)
    publisher = CaCrlPublisher(ca)
    responder = OcspResponder(publisher)
    return ca, certificate, publisher, responder, key_store


class TestHandshake:
    def test_legitimate_server_authenticates(self, pki):
        ca, certificate, _pub, _resp, key_store = pki
        server = TlsServer("server:legit", certificate, key_store)
        client = TlsClient([ca], trusted_roots=[ca])
        result = client.handshake("www.example.com", server, T0 + 10)
        assert result.authenticated
        assert result.status is HandshakeStatus.OK

    def test_server_without_key_fails_possession_proof(self, pki):
        ca, certificate, _pub, _resp, key_store = pki
        imposter = TlsServer("server:imposter", certificate, key_store)
        client = TlsClient([ca], trusted_roots=[ca])
        result = client.handshake("example.com", imposter, T0 + 10)
        assert result.status is HandshakeStatus.SERVER_LACKS_KEY

    def test_expired_certificate_rejected(self, pki):
        ca, certificate, _pub, _resp, key_store = pki
        server = TlsServer("server:legit", certificate, key_store)
        client = TlsClient([ca], trusted_roots=[ca])
        result = client.handshake("example.com", server, certificate.not_after + 1)
        assert result.status is HandshakeStatus.CHAIN_INVALID

    def test_wrong_hostname_rejected(self, pki):
        ca, certificate, _pub, _resp, key_store = pki
        server = TlsServer("server:legit", certificate, key_store)
        client = TlsClient([ca], trusted_roots=[ca])
        result = client.handshake("other.net", server, T0 + 10)
        assert result.status is HandshakeStatus.CHAIN_INVALID

    def test_revoked_certificate_rejected_by_checking_client(self, pki):
        ca, certificate, publisher, responder, key_store = pki
        publisher.revoke(certificate, T0 + 5, RevocationReason.KEY_COMPROMISE)
        server = TlsServer("server:legit", certificate, key_store)
        checking = TlsClient(
            [ca], trusted_roots=[ca],
            revocation=RevocationChecker(RevocationPolicy.SOFT_FAIL, responder),
        )
        result = checking.handshake("example.com", server, T0 + 10)
        assert result.status is HandshakeStatus.REVOKED


class TestInterceptionThreatModel:
    """The paper's scenario, end to end: a third party with a stale key
    impersonates the domain against differently-configured clients."""

    def _stale_world(self, pki):
        """The domain's owner changed; the OLD owner's cert is unexpired
        and the OLD owner mounts an on-path interception."""
        ca, stale_cert, publisher, responder, key_store = pki
        # New owner stands up a fresh certificate and serves the site.
        new_key = key_store.generate("server:newowner", T0 + 50)
        new_cert = ca.issue(["example.com"], new_key, T0 + 50)
        legit = TlsServer("server:newowner", new_cert, key_store)
        attacker = TlsServer("server:legit", stale_cert, key_store)  # prior owner
        network = Network()
        network.route("example.com", legit)
        return ca, stale_cert, publisher, responder, key_store, network, attacker

    def test_no_interception_normal_traffic(self, pki):
        ca, _stale, _pub, _resp, key_store, network, _attacker = self._stale_world(pki)
        client = TlsClient([ca], trusted_roots=[ca])
        result = network.connect(client, "example.com", T0 + 60)
        assert result.authenticated
        assert result.server_id == "server:newowner"

    def test_stale_cert_interception_succeeds_against_chrome_like(self, pki):
        ca, _stale, _pub, _resp, key_store, network, attacker = self._stale_world(pki)
        network.intercept("example.com", attacker)
        client = TlsClient([ca], trusted_roots=[ca])  # no revocation checking
        result = network.connect(client, "example.com", T0 + 60)
        assert result.authenticated  # the client believes the prior owner!
        assert result.server_id == "server:legit"

    def test_revocation_plus_soft_fail_still_intercepted(self, pki):
        ca, stale, publisher, responder, key_store, network, attacker = self._stale_world(pki)
        publisher.revoke(stale, T0 + 55, RevocationReason.KEY_COMPROMISE)
        network.intercept("example.com", attacker, drop_revocation=True)
        firefox = TlsClient(
            [ca], trusted_roots=[ca],
            revocation=RevocationChecker(RevocationPolicy.SOFT_FAIL, responder),
        )
        result = network.connect(firefox, "example.com", T0 + 60)
        assert result.authenticated  # soft-fail bypassed (paper §2.4)

    def test_hard_fail_client_blocks_interception(self, pki):
        ca, stale, publisher, responder, key_store, network, attacker = self._stale_world(pki)
        publisher.revoke(stale, T0 + 55, RevocationReason.KEY_COMPROMISE)
        network.intercept("example.com", attacker, drop_revocation=True)
        hard = TlsClient(
            [ca], trusted_roots=[ca],
            revocation=RevocationChecker(RevocationPolicy.HARD_FAIL, responder),
        )
        result = network.connect(hard, "example.com", T0 + 60)
        assert result.status is HandshakeStatus.REVOCATION_UNAVAILABLE

    def test_expiration_ends_the_exposure(self, pki):
        ca, stale, _pub, _resp, key_store, network, attacker = self._stale_world(pki)
        network.intercept("example.com", attacker)
        client = TlsClient([ca], trusted_roots=[ca])
        result = network.connect(client, "example.com", stale.not_after + 1)
        assert result.status is HandshakeStatus.CHAIN_INVALID

    def test_no_route(self, pki):
        ca, *_rest = pki
        network = Network()
        client = TlsClient([ca], trusted_roots=[ca])
        assert network.connect(client, "ghost.net", T0).status is HandshakeStatus.NO_ROUTE

    def test_clear_intercept_restores_route(self, pki):
        ca, _stale, _pub, _resp, key_store, network, attacker = self._stale_world(pki)
        network.intercept("example.com", attacker)
        network.clear_intercept("example.com")
        client = TlsClient([ca], trusted_roots=[ca])
        assert network.connect(client, "example.com", T0 + 60).server_id == "server:newowner"
