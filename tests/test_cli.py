"""Tests for the command-line interface (in-process, tiny worlds)."""

import json

import pytest

from repro.cli import build_parser, main

ARGS = ["--scale", "0.02", "--seed", "7"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scale == 0.1
        assert args.seed == 20231024

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--experiment", "fig99"])

    def test_world_flags_accepted_after_subcommand(self):
        args = build_parser().parse_args(["watch", "--scale", "0.02", "--seed", "7"])
        assert args.scale == 0.02
        assert args.seed == 7

    def test_world_flags_after_subcommand_keep_defaults_when_absent(self):
        args = build_parser().parse_args(["detect"])
        assert args.scale == 0.1
        assert args.seed == 20231024

    def test_watch_defaults(self):
        args = build_parser().parse_args(["watch"])
        assert args.checkpoint_dir is None
        assert args.resume is False
        assert args.checkpoint_every == 30
        assert args.days is None
        assert args.format == "text"

    @pytest.mark.parametrize("command", ["detect", "lifetime", "report", "watch"])
    def test_observability_flags_accepted(self, command):
        args = build_parser().parse_args(
            [command, "--metrics-out", "m.prom", "--log-json",
             "--trace-out", "t.json"]
        )
        assert args.metrics_out == "m.prom"
        assert args.log_json is True
        assert args.trace_out == "t.json"

    @pytest.mark.parametrize("command", ["detect", "lifetime", "report", "watch"])
    def test_observability_flags_default_off(self, command):
        args = build_parser().parse_args([command])
        assert args.metrics_out is None
        assert args.log_json is False
        assert args.trace_out is None

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "trace.json"])
        assert args.trace == "trace.json"
        assert args.top == 15
        assert args.format == "text"

    def test_obs_diff_defaults(self):
        args = build_parser().parse_args(["obs-diff", "a", "b"])
        assert args.run_a == "a"
        assert args.run_b == "b"
        assert args.threshold == 25.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8323
        assert args.warm_check is False
        assert args.max_requests is None
        assert args.workers == 1
        assert args.bundle is None
        assert args.metrics_out is None

    def test_serve_accepts_bundle_and_obs_flags(self):
        args = build_parser().parse_args(
            ["serve", "--bundle", "b", "--warm-check", "--port", "0",
             "--metrics-out", "m.prom", "--trace-out", "t.json",
             "--format", "json"]
        )
        assert args.bundle == "b"
        assert args.warm_check is True
        assert args.port == 0
        assert args.metrics_out == "m.prom"
        assert args.trace_out == "t.json"
        assert args.format == "json"


class TestCommands:
    def test_simulate(self, capsys):
        assert main(ARGS + ["simulate"]) == 0
        out = capsys.readouterr().out
        assert "ct_unique_certificates" in out

    def test_detect_prints_table4(self, capsys):
        assert main(ARGS + ["detect"]) == 0
        out = capsys.readouterr().out
        assert "Revoked: all" in out
        assert "Cloudflare managed TLS departure" in out

    def test_lifetime(self, capsys):
        assert main(ARGS + ["lifetime", "--caps", "90,215"]) == 0
        out = capsys.readouterr().out
        assert "OVERALL" in out
        assert "90" in out and "215" in out

    def test_lifetime_rejects_bad_caps(self, capsys):
        assert main(ARGS + ["lifetime", "--caps", "-5"]) == 2

    def test_report_summary_scorecard(self, capsys):
        assert main(ARGS + ["report", "--experiment", "summary"]) == 0
        assert "claims hold" in capsys.readouterr().out

    @pytest.mark.parametrize("experiment", ["table3", "table4", "table7", "fig6", "fig8"])
    def test_report_experiments(self, capsys, experiment):
        assert main(ARGS + ["report", "--experiment", experiment]) == 0
        assert capsys.readouterr().out.strip()

    def test_report_taxonomy_tables_need_no_simulation(self, capsys):
        assert main(["report", "--experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Certificate Information Taxonomy" in out
        assert main(["report", "--experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "managed_tls_departure" in out
        assert "third_party" in out

    def test_save_then_detect_from_bundle(self, tmp_path, capsys):
        bundle_dir = str(tmp_path / "bundle")
        assert main(ARGS + ["save", "--dir", bundle_dir]) == 0
        capsys.readouterr()
        assert main(ARGS + ["detect", "--bundle", bundle_dir]) == 0
        out = capsys.readouterr().out
        assert "Revoked: all" in out

    def test_detect_save_findings(self, tmp_path, capsys):
        path = str(tmp_path / "findings.jsonl.gz")
        assert main(ARGS + ["detect", "--save-findings", path]) == 0
        from repro.core.stale import StaleCertificate
        from repro.util.storage import load_jsonl

        findings = [StaleCertificate.from_record(r) for r in load_jsonl(path)]
        assert findings

    def test_advise_clean_domain(self, capsys):
        code = main(ARGS + ["advise", "never-registered.com", "--acquired", "2022-01-01"])
        assert code == 0
        assert "safe to deploy" in capsys.readouterr().out

    def test_advise_invalid_date(self, capsys):
        assert main(ARGS + ["advise", "x.com", "--acquired", "soon"]) == 2

    def test_advise_mixed_separator_date_rejected(self, capsys):
        # Regression: "2020-01/02" used to be silently normalized into a
        # valid date instead of failing with the usage error.
        assert main(ARGS + ["advise", "x.com", "--acquired", "2020-01/02"]) == 2
        assert "invalid date" in capsys.readouterr().err

    def test_log_json_emits_structured_records(self, capsys):
        assert main(ARGS + ["simulate"]) == 0
        capsys.readouterr()
        assert main(ARGS + ["detect", "--log-json"]) == 0
        err = capsys.readouterr().err
        span_lines = [
            json.loads(line) for line in err.splitlines() if line.startswith("{")
        ]
        assert any(
            record["event"] == "span" and record["name"] == "detector"
            for record in span_lines
        )

    def test_detect_format_json(self, capsys):
        assert main(ARGS + ["detect", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "Table 4" in payload["title"]
        assert payload["columns"]
        assert payload["rows"]
        assert payload["shard_stats"] is None  # single worker: batch engine

    def test_detect_workers_match_single_worker(self, capsys):
        assert main(ARGS + ["detect", "--format", "json"]) == 0
        single = json.loads(capsys.readouterr().out)
        assert main(ARGS + ["detect", "--workers", "2", "--format", "json"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        stats = sharded.pop("shard_stats")
        single.pop("shard_stats")
        assert sharded == single
        assert stats["num_shards"] == 2
        assert stats["workers"] == 2

    def test_detect_workers_text_prints_shard_table(self, capsys):
        assert main(ARGS + ["detect", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Parallel shard stats" in out
        assert "shard 0" in out and "shard 1" in out

    def test_detect_bundle_saves_then_loads(self, tmp_path, capsys):
        bundle_dir = str(tmp_path / "bundle")
        assert main(ARGS + ["detect", "--bundle", bundle_dir]) == 0
        first = capsys.readouterr()
        assert "saved bundle" in first.err
        assert main(ARGS + ["detect", "--bundle", bundle_dir]) == 0
        second = capsys.readouterr()
        assert "loading bundle" in second.err
        assert "simulating world" not in second.err
        assert second.out == first.out

    def test_lifetime_accepts_workers(self, capsys):
        assert main(ARGS + ["lifetime", "--caps", "90", "--workers", "2"]) == 0
        assert "OVERALL" in capsys.readouterr().out

    def test_report_accepts_workers(self, capsys):
        assert main(ARGS + ["report", "--experiment", "fig6", "--workers", "2"]) == 0
        assert capsys.readouterr().out.strip()

    def test_report_format_json(self, capsys):
        assert main(ARGS + ["report", "--experiment", "fig6", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]

    def test_advise_exposed_domain_exit_code(self, small_world, capsys):
        # Find a domain with a genuine pre-acquisition exposure, then drive
        # the CLI path against a same-seed world.
        from repro.core.advisory import StaleCertificateAdvisor

        advisor = StaleCertificateAdvisor(small_world.corpus)
        target = None
        for certificate in small_world.corpus.certificates():
            fqdn = next(iter(certificate.fqdns()))
            if certificate.lifetime_days > 300:
                target = (fqdn, certificate.not_before + 30)
                break
        assert target is not None
        report = advisor.check_acquisition(target[0], target[1])
        assert not report.is_clean


class TestWatch:
    def test_watch_verify_matches_batch(self, capsys):
        assert main(ARGS + ["watch", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out
        assert "Stream metrics" in out

    def test_watch_partial_run_is_provisional(self, capsys):
        assert main(ARGS + ["watch", "--days", "30"]) == 0
        out = capsys.readouterr().out
        assert "PARTIAL" in out

    def test_watch_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(ARGS + ["watch", "--days", "120", "--checkpoint-dir", ckpt,
                            "--checkpoint-every", "30"]) == 0
        capsys.readouterr()
        assert main(ARGS + ["watch", "--checkpoint-dir", ckpt, "--resume",
                            "--verify", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["verified_equivalent"] is True
        assert payload["stats"]["resumed_from_day"] is not None

    def test_watch_resume_mismatched_world_clean_error(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(ARGS + ["watch", "--days", "60", "--checkpoint-dir", ckpt]) == 0
        code = main(["--scale", "0.02", "--seed", "8", "watch",
                     "--checkpoint-dir", ckpt, "--resume"])
        assert code == 2
        assert "different dataset bundle" in capsys.readouterr().err

    def test_watch_format_json(self, capsys):
        assert main(ARGS + ["watch", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["table4"]
        assert sum(payload["stats"]["events_by_type"].values()) > 0

class TestServe:
    def test_warm_check_text(self, capsys):
        assert main(ARGS + ["serve", "--warm-check"]) == 0
        captured = capsys.readouterr()
        assert "index ready" in captured.err
        assert "0 failure(s)" in captured.out

    def test_warm_check_json(self, capsys):
        assert main(ARGS + ["serve", "--warm-check", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["failures"] == 0
        assert payload["index"]["findings"] > 0
        assert all(check["ok"] for check in payload["checks"])

    def test_warm_check_from_saved_bundle(self, tmp_path, capsys):
        bundle_dir = str(tmp_path / "bundle")
        assert main(ARGS + ["save", "--dir", bundle_dir]) == 0
        capsys.readouterr()
        assert main(ARGS + ["serve", "--bundle", bundle_dir, "--warm-check"]) == 0
        captured = capsys.readouterr()
        assert "loading bundle" in captured.err
        assert "simulating world" not in captured.err

    def test_corrupt_bundle_exits_2(self, tmp_path, capsys):
        import gzip
        import os

        bundle_dir = str(tmp_path / "bundle")
        assert main(ARGS + ["save", "--layout", "legacy",
                            "--dir", bundle_dir]) == 0
        capsys.readouterr()
        with gzip.open(os.path.join(bundle_dir, "corpus.jsonl.gz"), "wt") as f:
            f.write("not json\n")
        assert main(ARGS + ["serve", "--bundle", bundle_dir, "--warm-check"]) == 2
        assert "cannot build serving index" in capsys.readouterr().err

    def test_corrupt_columnar_bundle_exits_2(self, tmp_path, capsys):
        import glob
        import os

        bundle_dir = str(tmp_path / "bundle")
        assert main(ARGS + ["save", "--dir", bundle_dir]) == 0
        capsys.readouterr()
        segment = sorted(glob.glob(os.path.join(bundle_dir, "certs-*.seg")))[0]
        with open(segment, "r+b") as f:
            f.truncate(16)
        assert main(ARGS + ["serve", "--bundle", bundle_dir, "--warm-check"]) == 2
        assert "cannot build serving index" in capsys.readouterr().err

    def test_warm_check_writes_run_artifacts(self, tmp_path, capsys):
        metrics_path = str(tmp_path / "metrics.prom")
        assert main(ARGS + ["serve", "--warm-check",
                            "--metrics-out", metrics_path]) == 0
        assert "wrote metrics to" in capsys.readouterr().err
        from repro.obs import names, parse_text

        with open(metrics_path, "r", encoding="utf-8") as handle:
            samples = parse_text(handle.read())
        route_200 = (
            f'{names.SERVE_REQUESTS}{{route="/health",status="200"}}'
        )
        assert samples.get(route_200, 0) >= 1
        assert any(names.SERVE_INDEX_FINDINGS in key for key in samples)


class TestRunArtifacts:
    def test_trace_out_writes_loadable_trace_and_manifest(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.prom")
        assert main(ARGS + ["detect", "--trace-out", trace_path,
                            "--metrics-out", metrics_path]) == 0
        err = capsys.readouterr().err
        assert "wrote trace to" in err
        assert "wrote run manifest to" in err

        from repro.obs import load_trace
        from repro.obs.runmeta import load_run_manifest, resolve_artifact

        events = load_trace(trace_path)
        span_names = {e["name"] for e in events if e["ph"] in ("B", "E")}
        assert "cli_command" in span_names
        assert "detector" in span_names

        manifest = load_run_manifest(str(tmp_path / "run.json"))
        assert manifest["schema"] == 1
        assert manifest["command"] == "detect"
        assert manifest["seed"] == 7
        assert manifest["scale"] == 0.02
        assert manifest["exit_status"] == "ok"
        assert manifest["exit_code"] == 0
        assert manifest["wall_seconds"] > 0
        assert manifest["trace_events"] > 0
        assert manifest["argv"] == ARGS + [
            "detect", "--trace-out", trace_path, "--metrics-out", metrics_path
        ]
        if manifest["peak_rss_bytes"] is not None:
            assert manifest["peak_rss_bytes"] > 0
        assert resolve_artifact(manifest, "metrics_path") == metrics_path
        assert resolve_artifact(manifest, "trace_path") == trace_path

    def test_workers_trace_contains_all_shard_lanes(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        assert main(ARGS + ["detect", "--workers", "2",
                            "--trace-out", trace_path]) == 0
        from repro.obs import load_trace

        events = [e for e in load_trace(trace_path) if e["ph"] in ("B", "E")]
        assert {e["pid"] for e in events} == {0, 1, 2}
        detector_lanes = {e["pid"] for e in events if e["name"] == "detector"}
        assert detector_lanes == {1, 2}

    def test_crashed_run_still_writes_metrics(self, tmp_path, capsys, monkeypatch):
        # Satellite regression test: artifacts are written from a finally,
        # so a command that blows up mid-run still leaves partial metrics,
        # the trace, and a manifest recording the failure.
        import repro.cli as cli_module

        def explode(result):
            raise RuntimeError("simulated mid-run crash")

        monkeypatch.setattr(cli_module, "build_table4", explode)
        metrics_path = str(tmp_path / "metrics.prom")
        trace_path = str(tmp_path / "trace.jsonl")
        with pytest.raises(RuntimeError, match="simulated mid-run crash"):
            main(ARGS + ["detect", "--metrics-out", metrics_path,
                         "--trace-out", trace_path])
        err = capsys.readouterr().err
        assert "wrote metrics to" in err

        from repro.obs import load_trace, parse_text
        from repro.obs.runmeta import load_run_manifest

        with open(metrics_path, encoding="utf-8") as handle:
            samples = parse_text(handle.read())
        # The pipeline ran before the crash, so real series are present...
        assert any(s.startswith("repro_findings_total") for s in samples)
        # ...and the raising span was counted.
        assert samples['repro_span_exceptions_total{name="cli_command"}'] == 1
        manifest = load_run_manifest(str(tmp_path / "run.json"))
        assert manifest["exit_status"] == "error"
        assert manifest["exit_code"] is None
        ends = {
            e["name"]: e["args"]["status"]
            for e in load_trace(trace_path)
            if e["ph"] == "E"
        }
        assert ends["cli_command"] == "error"


class TestProfileCommand:
    def _traced_run(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        assert main(ARGS + ["detect", "--trace-out", trace_path]) == 0
        capsys.readouterr()
        return trace_path

    def test_profile_text_output(self, tmp_path, capsys):
        trace_path = self._traced_run(tmp_path, capsys)
        assert main(["profile", trace_path, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Span profile" in out
        assert "Critical path" in out
        assert "cli_command" in out

    def test_profile_critical_path_sums_to_wall_time(self, tmp_path, capsys):
        trace_path = self._traced_run(tmp_path, capsys)
        assert main(["profile", trace_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] > 0
        assert payload["wall_seconds"] > 0
        assert payload["critical_path_seconds"] == pytest.approx(
            payload["wall_seconds"], rel=1e-3
        )
        by_name = {entry["name"]: entry for entry in payload["names"]}
        assert by_name["cli_command"]["count"] == 1
        # Self time never exceeds cumulative time.
        for entry in payload["names"]:
            assert entry["self_seconds"] <= entry["cumulative_seconds"] + 1e-9

    def test_profile_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "missing.json")]) == 2
        assert "cannot profile" in capsys.readouterr().err

    def test_profile_empty_trace_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}', encoding="utf-8")
        assert main(["profile", str(path)]) == 2
        assert "no closed spans" in capsys.readouterr().err


class TestObsDiffCommand:
    def _metrics_file(self, path, samples):
        lines = [f"{series} {value}" for series, value in samples.items()]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_self_compare_is_clean_and_exits_zero(self, tmp_path, capsys):
        path = self._metrics_file(
            tmp_path / "m.prom", {"x_total": 5, "y_seconds_sum": 1.5}
        )
        assert main(["obs-diff", path, path]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out
        assert "2 series compared" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        a = self._metrics_file(tmp_path / "a.prom", {"x_seconds_sum": 1.0})
        b = self._metrics_file(tmp_path / "b.prom", {"x_seconds_sum": 3.0})
        assert main(["obs-diff", a, b, "--threshold", "50"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "1 regression(s) beyond 50%" in out

    def test_threshold_loosens_the_gate(self, tmp_path, capsys):
        a = self._metrics_file(tmp_path / "a.prom", {"x_seconds_sum": 1.0})
        b = self._metrics_file(tmp_path / "b.prom", {"x_seconds_sum": 3.0})
        assert main(["obs-diff", a, b, "--threshold", "500"]) == 0

    def test_missing_run_is_usage_error(self, tmp_path, capsys):
        a = self._metrics_file(tmp_path / "a.prom", {"x_total": 1})
        assert main(["obs-diff", a, str(tmp_path / "nope.prom")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_output_lists_regressions(self, tmp_path, capsys):
        a = self._metrics_file(tmp_path / "a.prom", {"c_total": 10})
        b = self._metrics_file(tmp_path / "b.prom", {"c_total": 100})
        assert main(["obs-diff", a, b, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        (regression,) = payload["regressions"]
        assert regression["series"] == "c_total"
        assert regression["delta_pct"] == 900.0

    def test_cli_runs_diff_against_their_manifests(self, tmp_path, capsys):
        # Two real runs of the same workload: wall times differ slightly
        # but nothing should regress at a sane threshold.
        for name in ("run_a", "run_b"):
            out_dir = tmp_path / name
            assert main(ARGS + ["detect",
                                "--metrics-out", str(out_dir / "metrics.prom")]) == 0
        capsys.readouterr()
        code = main(["obs-diff", str(tmp_path / "run_a"), str(tmp_path / "run_b"),
                     "--threshold", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "run_wall_seconds" in out or "no regressions" in out


class TestWatchCorruptCheckpoint:
    def test_watch_resume_corrupt_checkpoint_clean_error(self, tmp_path, capsys):
        # Regression: a truncated checkpoint used to surface as a raw
        # EOFError/BadGzipFile traceback instead of a usage error.
        ckpt = str(tmp_path / "ckpt")
        assert main(ARGS + ["watch", "--days", "60", "--checkpoint-dir", ckpt,
                            "--checkpoint-every", "20"]) == 0
        capsys.readouterr()
        from repro.stream import CheckpointStore

        store = CheckpointStore(ckpt)
        with open(store.path, "rb") as handle:
            payload = handle.read()
        with open(store.path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        code = main(ARGS + ["watch", "--checkpoint-dir", ckpt, "--resume"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "truncated or corrupt" in err
