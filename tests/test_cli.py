"""Tests for the command-line interface (in-process, tiny worlds)."""

import pytest

from repro.cli import build_parser, main

ARGS = ["--scale", "0.02", "--seed", "7"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scale == 0.1
        assert args.seed == 20231024

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--experiment", "fig99"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(ARGS + ["simulate"]) == 0
        out = capsys.readouterr().out
        assert "ct_unique_certificates" in out

    def test_detect_prints_table4(self, capsys):
        assert main(ARGS + ["detect"]) == 0
        out = capsys.readouterr().out
        assert "Revoked: all" in out
        assert "Cloudflare managed TLS departure" in out

    def test_lifetime(self, capsys):
        assert main(ARGS + ["lifetime", "--caps", "90,215"]) == 0
        out = capsys.readouterr().out
        assert "OVERALL" in out
        assert "90" in out and "215" in out

    def test_lifetime_rejects_bad_caps(self, capsys):
        assert main(ARGS + ["lifetime", "--caps", "-5"]) == 2

    def test_report_summary_scorecard(self, capsys):
        assert main(ARGS + ["report", "--experiment", "summary"]) == 0
        assert "claims hold" in capsys.readouterr().out

    @pytest.mark.parametrize("experiment", ["table3", "table4", "table7", "fig6", "fig8"])
    def test_report_experiments(self, capsys, experiment):
        assert main(ARGS + ["report", "--experiment", experiment]) == 0
        assert capsys.readouterr().out.strip()

    def test_report_taxonomy_tables_need_no_simulation(self, capsys):
        assert main(["report", "--experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Certificate Information Taxonomy" in out
        assert main(["report", "--experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "managed_tls_departure" in out
        assert "third_party" in out

    def test_save_then_detect_from_bundle(self, tmp_path, capsys):
        bundle_dir = str(tmp_path / "bundle")
        assert main(ARGS + ["save", "--dir", bundle_dir]) == 0
        capsys.readouterr()
        assert main(ARGS + ["detect", "--bundle", bundle_dir]) == 0
        out = capsys.readouterr().out
        assert "Revoked: all" in out

    def test_detect_save_findings(self, tmp_path, capsys):
        path = str(tmp_path / "findings.jsonl.gz")
        assert main(ARGS + ["detect", "--save-findings", path]) == 0
        from repro.core.stale import StaleCertificate
        from repro.util.storage import load_jsonl

        findings = [StaleCertificate.from_record(r) for r in load_jsonl(path)]
        assert findings

    def test_advise_clean_domain(self, capsys):
        code = main(ARGS + ["advise", "never-registered.com", "--acquired", "2022-01-01"])
        assert code == 0
        assert "safe to deploy" in capsys.readouterr().out

    def test_advise_invalid_date(self, capsys):
        assert main(ARGS + ["advise", "x.com", "--acquired", "soon"]) == 2

    def test_advise_exposed_domain_exit_code(self, small_world, capsys):
        # Find a domain with a genuine pre-acquisition exposure, then drive
        # the CLI path against a same-seed world.
        from repro.core.advisory import StaleCertificateAdvisor

        advisor = StaleCertificateAdvisor(small_world.corpus)
        target = None
        for certificate in small_world.corpus.certificates():
            fqdn = next(iter(certificate.fqdns()))
            if certificate.lifetime_days > 300:
                target = (fqdn, certificate.not_before + 30)
                break
        assert target is not None
        report = advisor.check_acquisition(target[0], target[1])
        assert not report.is_clean
