"""Tests for corpus dedup and the anomalous-FQDN filter."""

import pytest

from repro.ct.dedup import CertificateCorpus
from repro.util.dates import day
from tests.conftest import make_cert, make_key

T0 = day(2021, 1, 1)


class TestDedup:
    def test_precert_final_collapse(self):
        corpus = CertificateCorpus()
        cert = make_cert(not_before=T0)
        corpus.ingest([cert.as_precertificate(), cert.with_scts(["sct"])])
        assert len(corpus) == 1
        assert corpus.stats.raw_entries == 2
        assert corpus.stats.duplicates_collapsed == 1
        # The final certificate (with SCTs) wins as the canonical instance.
        only = next(corpus.certificates())
        assert not only.is_precertificate
        assert only.scts == ("sct",)

    def test_final_first_then_precert_keeps_final(self):
        corpus = CertificateCorpus()
        cert = make_cert(not_before=T0)
        corpus.ingest([cert.with_scts(["sct"]), cert.as_precertificate()])
        assert not next(corpus.certificates()).is_precertificate

    def test_distinct_certificates_kept(self):
        corpus = CertificateCorpus()
        corpus.ingest([make_cert(serial=50_001), make_cert(serial=50_002)])
        assert len(corpus) == 2

    def test_cross_log_duplicates_collapse(self):
        corpus = CertificateCorpus()
        precert = make_cert(not_before=T0).as_precertificate()
        corpus.ingest([precert])
        corpus.ingest([precert])  # same entry seen from a second log
        assert len(corpus) == 1


class TestAnomalousFqdnFilter:
    def test_filter_drops_test_domains(self):
        corpus = CertificateCorpus(fqdn_cert_limit=3)
        key = make_key()
        # 5 certificates for the same FQDN: over the limit of 3.
        for serial in range(60_000, 60_005):
            corpus.ingest([make_cert(sans=("flowers.example.com",), serial=serial, key=key)])
        corpus.ingest([make_cert(sans=("normal.com",), serial=60_010, key=key)])
        corpus.finalize()
        assert "flowers.example.com" in corpus.stats.anomalous_fqdns
        assert corpus.stats.certificates_dropped_as_anomalous == 5
        remaining = {c.subject_cn for c in corpus.certificates()}
        assert remaining == {"normal.com"}

    def test_filter_noop_below_limit(self):
        corpus = CertificateCorpus(fqdn_cert_limit=10)
        for serial in range(61_000, 61_003):
            corpus.ingest([make_cert(serial=serial)])
        corpus.finalize()
        assert corpus.stats.anomalous_fqdns == set()
        assert len(corpus) == 3


class TestQueries:
    def test_by_revocation_key(self):
        corpus = CertificateCorpus()
        cert = make_cert(authority_key_id="akid-q", serial=777)
        corpus.ingest([cert])
        assert corpus.by_revocation_key()[("akid-q", 777)] is cert

    def test_covering_domain(self):
        corpus = CertificateCorpus()
        corpus.ingest([make_cert(sans=("*.foo.com",), serial=70_001)])
        corpus.ingest([make_cert(sans=("bar.com",), serial=70_002)])
        assert len(corpus.covering_domain("www.foo.com")) == 1
        assert len(corpus.covering_domain("bar.com")) == 1
        assert corpus.covering_domain("baz.org") == []

    def test_with_san_suffix(self):
        corpus = CertificateCorpus()
        corpus.ingest(
            [make_cert(sans=("sni1234.cloudflaressl.com", "cust.com"), serial=70_010)]
        )
        corpus.ingest([make_cert(sans=("plain.com",), serial=70_011)])
        hits = corpus.with_san_suffix("cloudflaressl.com")
        assert len(hits) == 1
