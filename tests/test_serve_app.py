"""HTTP-layer tests for the staleness query service.

All requests go through :func:`repro.serve.call_app` — a synthetic WSGI
environ and a captured ``start_response`` — so tier-1 never opens a
socket. Covers status codes, JSON schemas, the one error model, /health,
deterministic response ordering, and the request metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import names, parse_text, use_registry
from repro.serve import FindingsIndex, call_app, create_app, warm_check


@pytest.fixture(scope="module")
def app(pipeline_result):
    return create_app(FindingsIndex(pipeline_result))


class TestEndpoints:
    def test_health(self, app):
        response = call_app(app, "/health")
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["index"]["findings"] == len(app.index)
        assert set(payload["index"]) >= {"findings", "domains", "issuers", "classes"}

    def test_domain_found(self, app):
        name = app.index.domains()[0]
        response = call_app(app, f"/v1/domains/{name}")
        assert response.status == 200
        payload = response.json()
        assert payload["domain"] == name
        assert payload["exposed"] is True
        for record in payload["findings"]:
            assert set(record) >= {
                "staleness_class", "issuer", "serial", "invalidation",
                "staleness_days", "days_to_invalidation",
            }

    def test_domain_with_on_filter(self, app):
        name = app.index.domains()[0]
        response = call_app(app, f"/v1/domains/{name}", query="on=1990-01-01")
        assert response.status == 200
        payload = response.json()
        assert payload["on"] == "1990-01-01"
        assert payload["exposed"] is False and payload["findings"] == []

    @pytest.mark.parametrize("axis", ["class", "issuer", "year"])
    def test_aggregates(self, app, axis):
        response = call_app(app, "/v1/aggregates", query=f"by={axis}")
        assert response.status == 200
        payload = response.json()
        assert payload["by"] == axis
        assert payload["rows"] == app.index.aggregates(axis)

    def test_aggregates_default_axis_is_class(self, app):
        assert call_app(app, "/v1/aggregates").json()["by"] == "class"

    def test_survival_all_classes(self, app):
        response = call_app(app, "/v1/survival")
        assert response.status == 200
        payload = response.json()
        assert payload["at"] == [90, 215]
        assert [c["class"] for c in payload["classes"]] == [
            cls.value for cls in app.index.survival_classes()
        ]
        for entry in payload["classes"]:
            assert 0.0 <= entry["survival"]["90"] <= 1.0

    def test_survival_one_class_custom_at(self, app):
        cls = app.index.survival_classes()[0]
        response = call_app(
            app, "/v1/survival", query=f"class={cls.value}&at=30,300"
        )
        payload = response.json()
        assert payload["at"] == [30, 300]
        assert [c["class"] for c in payload["classes"]] == [cls.value]
        assert payload["classes"][0] == app.index.survival(cls, (30, 300))

    def test_caps_default_grid(self, app):
        response = call_app(app, "/v1/whatif/caps")
        assert response.status == 200
        assert response.json()["caps"] == [45, 90, 215]

    def test_caps_arbitrary_ballot_value(self, app):
        payload = call_app(app, "/v1/whatif/caps", query="days=47").json()
        assert payload["caps"] == [47]
        assert all(row["cap_days"] == 47 for row in payload["classes"])


class TestErrorModel:
    def assert_error(self, response, status, code):
        assert response.status == status
        payload = response.json()
        assert set(payload) == {"error"}
        assert payload["error"]["status"] == status
        assert payload["error"]["code"] == code
        assert "Traceback" not in response.body.decode("utf-8")

    def test_unknown_domain_404(self, app):
        response = call_app(app, "/v1/domains/zzz-not-indexed.example")
        self.assert_error(response, 404, "unknown_domain")

    def test_invalid_domain_400(self, app):
        response = call_app(app, "/v1/domains/bad..name")
        self.assert_error(response, 400, "bad_domain")

    def test_unknown_route_404(self, app):
        self.assert_error(call_app(app, "/v1/nope"), 404, "unknown_route")
        self.assert_error(call_app(app, "/v1/domains/"), 404, "unknown_route")

    def test_bad_aggregate_axis_400(self, app):
        response = call_app(app, "/v1/aggregates", query="by=volume")
        self.assert_error(response, 400, "bad_query")

    def test_bad_survival_class_400(self, app):
        response = call_app(app, "/v1/survival", query="class=meltdown")
        self.assert_error(response, 400, "bad_query")

    def test_bad_caps_400(self, app):
        for query in ("days=0", "days=abc", "days=", "days=999999"):
            response = call_app(app, "/v1/whatif/caps", query=query)
            self.assert_error(response, 400, "bad_query")

    def test_bad_on_date_400(self, app):
        name = app.index.domains()[0]
        response = call_app(app, f"/v1/domains/{name}", query="on=not-a-date")
        self.assert_error(response, 400, "bad_query")

    def test_repeated_parameter_400(self, app):
        response = call_app(app, "/v1/aggregates", query="by=class&by=issuer")
        self.assert_error(response, 400, "bad_query")

    def test_write_methods_405_with_allow(self, app):
        for method in ("POST", "PUT", "DELETE"):
            response = call_app(app, "/health", method=method)
            self.assert_error(response, 405, "method_not_allowed")
            assert response.headers["Allow"] == "GET, HEAD"

    def test_unexpected_failure_is_clean_500(self, app, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("index melted")

        monkeypatch.setattr(app.index, "aggregates", boom)
        response = call_app(app, "/v1/aggregates")
        self.assert_error(response, 500, "internal_error")
        assert "index melted" not in response.body.decode("utf-8")


class TestDeterminism:
    def test_responses_are_byte_identical_across_calls(self, app):
        name = app.index.domains()[0]
        for path, query in (
            ("/health", ""),
            (f"/v1/domains/{name}", ""),
            ("/v1/aggregates", "by=issuer"),
            ("/v1/survival", ""),
            ("/v1/whatif/caps", "days=45,90"),
        ):
            first = call_app(app, path, query=query)
            second = call_app(app, path, query=query)
            assert first.body == second.body
            assert first.headers["Content-Length"] == str(len(first.body))

    def test_bodies_use_sorted_keys(self, app):
        body = call_app(app, "/v1/aggregates").body.decode("utf-8")
        payload = json.loads(body)
        assert body == json.dumps(payload, indent=2, sort_keys=True)

    def test_head_returns_empty_body_with_full_headers(self, app):
        get = call_app(app, "/health")
        head = call_app(app, "/health", method="HEAD")
        assert head.status == 200
        assert head.body == b""
        assert head.headers["Content-Length"] == get.headers["Content-Length"]

    def test_content_type_is_json(self, app):
        response = call_app(app, "/health")
        assert response.headers["Content-Type"].startswith("application/json")


class TestObservability:
    def test_requests_counted_by_route_and_status(self, pipeline_result):
        with use_registry() as registry:
            app = create_app(FindingsIndex(pipeline_result))
            call_app(app, "/health")
            call_app(app, "/health")
            call_app(app, "/v1/domains/zzz-not-indexed.example")
            counter = registry.counter(
                names.SERVE_REQUESTS, labels=("route", "status")
            )
            assert counter.value(route="/health", status="200") == 2
            assert (
                counter.value(route="/v1/domains/{domain}", status="404") == 1
            )

    def test_latency_histogram_uses_route_template(self, pipeline_result):
        with use_registry() as registry:
            app = create_app(FindingsIndex(pipeline_result))
            name = app.index.domains()[0]
            call_app(app, f"/v1/domains/{name}")
            samples = parse_text(registry.render_text())
            key = (
                f"{names.SERVE_REQUEST_SECONDS}_count"
                '{route="/v1/domains/{domain}"}'
            )
            assert samples[key] == 1
            # The raw domain never becomes a label value.
            assert not any(name in sample for sample in samples)

    def test_index_gauges_set_at_build(self, pipeline_result):
        with use_registry() as registry:
            index = FindingsIndex(pipeline_result)
            assert registry.gauge(names.SERVE_INDEX_FINDINGS).value() == len(index)


class TestMetricsEndpoint:
    def test_metrics_scrape_is_prometheus_text(self, pipeline_result):
        with use_registry() as registry:
            app = create_app(FindingsIndex(pipeline_result))
            call_app(app, "/health")
            response = call_app(app, "/metrics")
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            # The body is the live registry's exposition: parseable, and
            # it contains the request counter the /health call just bumped.
            samples = parse_text(response.body.decode("utf-8"))
            key = f'{names.SERVE_REQUESTS}{{route="/health",status="200"}}'
            assert samples[key] == 1
            assert registry.render_text()  # same registry, still live

    def test_metrics_requests_are_themselves_counted(self, pipeline_result):
        with use_registry() as registry:
            app = create_app(FindingsIndex(pipeline_result))
            call_app(app, "/metrics")
            call_app(app, "/metrics")
            counter = registry.counter(
                names.SERVE_REQUESTS, labels=("route", "status")
            )
            assert counter.value(route="/metrics", status="200") == 2

    def test_metrics_head_returns_empty_body(self, pipeline_result):
        with use_registry():
            app = create_app(FindingsIndex(pipeline_result))
            response = call_app(app, "/metrics", method="HEAD")
            assert response.status == 200
            assert response.body == b""

    def test_metrics_write_method_405_json_error(self, pipeline_result):
        with use_registry():
            app = create_app(FindingsIndex(pipeline_result))
            response = call_app(app, "/metrics", method="POST")
            assert response.status == 405
            assert response.headers["Allow"] == "GET, HEAD"
            payload = response.json()
            assert payload["error"]["code"] == "method_not_allowed"


class TestWarmCheck:
    def test_warm_check_passes_on_seed_world(self, app):
        report = warm_check(app)
        assert report["ok"] is True
        assert report["failures"] == 0
        assert report["probes"] == len(report["checks"]) == 13
        assert report["index"]["findings"] == len(app.index)

    def test_warm_check_handles_empty_index(self):
        from repro.core.pipeline import PipelineResult
        from repro.core.stale import StaleFindings

        app = create_app(FindingsIndex(PipelineResult(findings=StaleFindings())))
        report = warm_check(app)
        assert report["ok"] is True

    def test_warm_check_reports_failures(self, app, monkeypatch):
        def broken(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(app.index, "aggregates", broken)
        report = warm_check(app)
        assert report["ok"] is False
        assert report["failures"] >= 1
