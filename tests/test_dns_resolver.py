"""Tests for the CNAME-chasing resolver."""

import pytest

from repro.dns.records import RecordType
from repro.dns.resolver import Resolver, ResolutionStatus
from repro.dns.zone import ZoneStore


@pytest.fixture()
def store():
    zones = ZoneStore()
    example = zones.create("example.com")
    example.add("example.com", RecordType.A, "192.0.2.10")
    example.add("example.com", RecordType.NS, "ns1.dns.net")
    example.add("www.example.com", RecordType.CNAME, "edge.cdn.net")
    cdn = zones.create("cdn.net")
    cdn.add("edge.cdn.net", RecordType.A, "203.0.113.5")
    return zones


class TestResolve:
    def test_direct_a(self, store):
        result = Resolver(store).resolve("example.com", RecordType.A)
        assert result.ok
        assert result.rdatas() == ["192.0.2.10"]

    def test_nxdomain_for_unknown_zone(self, store):
        result = Resolver(store).resolve("missing.org", RecordType.A)
        assert result.status is ResolutionStatus.NXDOMAIN

    def test_cname_chase_across_zones(self, store):
        result = Resolver(store).resolve("www.example.com", RecordType.A)
        assert result.ok
        assert result.rdatas() == ["203.0.113.5"]
        assert result.cname_chain == ["edge.cdn.net"]

    def test_cname_query_returns_cname_without_chasing(self, store):
        result = Resolver(store).resolve("www.example.com", RecordType.CNAME)
        assert result.ok
        assert result.rdatas() == ["edge.cdn.net"]
        assert result.cname_chain == []

    def test_nodata_when_name_exists_without_type(self, store):
        result = Resolver(store).resolve("example.com", RecordType.AAAA)
        assert result.status is ResolutionStatus.NODATA

    def test_cname_loop_detected(self):
        zones = ZoneStore()
        zone = zones.create("loop.com")
        zone.add("a.loop.com", RecordType.CNAME, "b.loop.com")
        zone.add("b.loop.com", RecordType.CNAME, "a.loop.com")
        result = Resolver(zones).resolve("a.loop.com", RecordType.A)
        assert result.status is ResolutionStatus.CNAME_LOOP

    def test_chain_too_long(self):
        zones = ZoneStore()
        zone = zones.create("deep.com")
        for i in range(12):
            zone.add(f"n{i}.deep.com", RecordType.CNAME, f"n{i + 1}.deep.com")
        result = Resolver(zones).resolve("n0.deep.com", RecordType.A)
        assert result.status is ResolutionStatus.CHAIN_TOO_LONG

    def test_dangling_cname_is_nxdomain(self, store):
        # Target zone dropped: the paper's dangling-record scenario.
        store.drop("cdn.net")
        result = Resolver(store).resolve("www.example.com", RecordType.A)
        assert result.status is ResolutionStatus.NXDOMAIN
        assert result.cname_chain == ["edge.cdn.net"]
