"""Dataset access API: scans, zone-map pruning, indexes, layout detection.

Pruning correctness is proven against brute force: whatever a
zone-map-pruned ``scan`` yields must equal filtering every row. The
fixtures use a tiny ``rows_per_segment`` so the seed world spans many
segments and pruning has something real to skip.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.data import (
    DATASET_MANIFEST,
    Dataset,
    SegmentFormatError,
    detect_layout,
    open_bundle,
    save_legacy_bundle,
    write_dataset,
)

ROWS_PER_SEGMENT = 64


@pytest.fixture(scope="module")
def bundle(small_world):
    return small_world.to_bundle()


@pytest.fixture(scope="module")
def dataset_dir(bundle, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("columnar"))
    write_dataset(bundle, directory, rows_per_segment=ROWS_PER_SEGMENT)
    return directory


@pytest.fixture()
def dataset(dataset_dir):
    with Dataset.open(dataset_dir) as handle:
        yield handle


class TestOpen:
    def test_tables_cover_the_bundle(self, dataset, bundle):
        assert len(dataset.certs) == len(bundle.corpus)
        assert len(dataset.whois) == len(bundle.whois_creation_pairs)
        assert len(dataset.dns) > 0
        assert len(dataset.revocations) > 0

    def test_multiple_segments_exist(self, dataset_dir, dataset):
        segments = [
            name for name in os.listdir(dataset_dir)
            if name.startswith("certs-") and name.endswith(".seg")
        ]
        assert len(segments) == -(-len(dataset.certs) // ROWS_PER_SEGMENT)
        assert len(segments) > 1

    def test_windows_round_trip(self, dataset, bundle):
        assert dataset.windows == bundle.windows

    def test_certificates_round_trip(self, dataset, bundle):
        original = list(bundle.corpus.certificates())
        rebuilt = [dataset.certs.certificate(r) for r in range(len(original))]
        assert [c.dedup_fingerprint() for c in rebuilt] == [
            c.dedup_fingerprint() for c in original
        ]


class TestScanPruning:
    def test_scan_matches_brute_force(self, dataset):
        certs = dataset.certs
        lo, hi = certs.zone_range("not_before")
        mid = (lo + hi) // 2
        day_range = (mid, mid + 30)
        pruned = list(certs.scan(("serial",), day_range=day_range))
        not_before = list(certs.column("not_before"))
        not_after = list(certs.column("not_after"))
        serials = list(certs.column("serial"))
        expected = [
            (row, (serials[row],))
            for row in range(len(certs))
            if not_before[row] <= day_range[1] and not_after[row] >= day_range[0]
        ]
        assert pruned == expected

    def test_narrow_range_prunes_segments(self, dataset):
        certs = dataset.certs
        lo, _hi = certs.zone_range("not_before")
        # A window ending before any certificate starts cannot match
        # anything, and the zone maps prove it per segment.
        matched = list(certs.scan(("serial",), day_range=(lo - 100, lo - 50)))
        assert matched == []
        assert certs.scan_stats["segments_scanned"] == 0
        assert certs.scan_stats["segments_pruned"] > 1

    def test_full_range_scans_everything(self, dataset):
        certs = dataset.certs
        lo, hi = certs.zone_range("not_before")
        rows = list(certs.scan((), day_range=(lo, hi + 100_000)))
        assert len(rows) == len(certs)
        assert certs.scan_stats["segments_pruned"] == 0


class TestIndexes:
    def test_revkey_lookup_matches_brute_force(self, dataset, bundle):
        certs = dataset.certs
        akids = list(certs.column("authority_key_id"))
        serials = list(certs.column("serial"))
        sample = sorted({(akids[r], serials[r]) for r in range(len(certs))})[:20]
        for key in sample:
            expected = [
                row for row in range(len(certs))
                if (akids[row], serials[row]) == key
            ]
            assert certs.rows_for_revocation_key(key) == expected

    def test_lookup_misses_return_empty(self, dataset):
        assert dataset.certs.rows_for_revocation_key(("no-such-akid", -1)) == []
        assert dataset.certs.rows_for_e2ld("zzz-not-a-domain.example") == []

    def test_interval_query_matches_brute_force(self, dataset):
        certs = dataset.certs
        lo, hi = certs.zone_range("not_before")
        mid = (lo + hi) // 2
        window = (mid, mid + 45)
        not_before = list(certs.column("not_before"))
        not_after = list(certs.column("not_after"))
        expected = sorted(
            row for row in range(len(certs))
            if not_before[row] <= window[1] and not_after[row] >= window[0]
        )
        assert certs.interval_query(*window) == expected

    def test_bad_index_key_arity_raises(self, dataset):
        with pytest.raises(ValueError):
            dataset.certs.lookup("revkey", ("only-one-part",))

    def test_unknown_index_raises_keyerror(self, dataset):
        with pytest.raises(KeyError):
            dataset.certs.lookup("no-such-index", ("x",))


class TestLayoutDetection:
    def test_columnar_layout(self, dataset_dir):
        assert detect_layout(dataset_dir) == "columnar"

    def test_legacy_layout(self, bundle, tmp_path):
        save_legacy_bundle(bundle, str(tmp_path))
        assert detect_layout(str(tmp_path)) == "legacy"

    def test_unknown_layout(self, tmp_path):
        assert detect_layout(str(tmp_path)) is None

    def test_open_bundle_reads_both_layouts(self, bundle, dataset_dir, tmp_path):
        save_legacy_bundle(bundle, str(tmp_path))
        legacy = open_bundle(str(tmp_path))
        columnar = open_bundle(dataset_dir)
        assert len(columnar.corpus) == len(legacy.corpus) == len(bundle.corpus)

    def test_open_bundle_on_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_bundle(str(tmp_path))


class TestOpenFailsFast:
    """Corruption surfaces at Dataset.open, not mid-detection."""

    def _copy(self, source, destination):
        import shutil

        shutil.copytree(source, destination)
        return str(destination)

    def test_corrupt_manifest(self, dataset_dir, tmp_path):
        broken = self._copy(dataset_dir, tmp_path / "broken")
        with open(os.path.join(broken, DATASET_MANIFEST), "w") as handle:
            handle.write("not json")
        with pytest.raises(SegmentFormatError):
            Dataset.open(broken)

    def test_unknown_format_version(self, dataset_dir, tmp_path):
        broken = self._copy(dataset_dir, tmp_path / "broken")
        manifest_path = os.path.join(broken, DATASET_MANIFEST)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(SegmentFormatError):
            Dataset.open(broken)

    def test_truncated_segment_fails_at_open(self, dataset_dir, tmp_path):
        broken = self._copy(dataset_dir, tmp_path / "broken")
        segment = sorted(
            name for name in os.listdir(broken)
            if name.startswith("certs-") and name.endswith(".seg")
        )[-1]
        path = os.path.join(broken, segment)
        with open(path, "r+b") as handle:
            handle.truncate(16)
        with pytest.raises(SegmentFormatError):
            Dataset.open(broken)

    def test_missing_segment_fails_at_open(self, dataset_dir, tmp_path):
        broken = self._copy(dataset_dir, tmp_path / "broken")
        os.remove(os.path.join(broken, "idx-certs-revkey.seg"))
        with pytest.raises((OSError, SegmentFormatError)):
            Dataset.open(broken)
