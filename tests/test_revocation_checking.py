"""Tests for OCSP, stapling, and client revocation policies.

These encode the paper's Section 2.4 threat model: soft-fail checking is
defeated by an on-path interceptor that drops revocation traffic, and only
expiration reliably stops a revoked-but-unexpired stale certificate.
"""

import pytest

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.revocation.checking import (
    CheckDecision,
    ConnectionContext,
    RevocationChecker,
    RevocationPolicy,
    interception_succeeds,
)
from repro.revocation.ocsp import OcspResponder, OcspStatus, StapleCache
from repro.revocation.publisher import CaCrlPublisher
from repro.revocation.reasons import RevocationReason
from repro.util.dates import day

T0 = day(2022, 1, 1)


@pytest.fixture()
def env(key_store):
    ca = CertificateAuthority(
        "OCSP CA", key_store, policy=IssuancePolicy(require_validation=False)
    )
    key = key_store.generate("sub", T0)
    cert = ca.issue(["example.com"], key, T0)
    publisher = CaCrlPublisher(ca)
    responder = OcspResponder(publisher)
    return ca, cert, publisher, responder


class TestOcspResponder:
    def test_good_status(self, env):
        _ca, cert, _pub, responder = env
        assert responder.query(cert, T0 + 1).status is OcspStatus.GOOD

    def test_revoked_status_with_reason(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 5, RevocationReason.KEY_COMPROMISE)
        response = responder.query(cert, T0 + 6)
        assert response.status is OcspStatus.REVOKED
        assert response.reason is RevocationReason.KEY_COMPROMISE
        assert response.revocation_day == T0 + 5

    def test_revocation_not_visible_before_it_happens(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 5)
        assert responder.query(cert, T0 + 4).status is OcspStatus.GOOD

    def test_unknown_for_foreign_certificate(self, env, key_store):
        _ca, _cert, _pub, responder = env
        other_ca = CertificateAuthority(
            "Other", key_store, policy=IssuancePolicy(require_validation=False)
        )
        foreign = other_ca.issue(["x.com"], key_store.generate("s", T0), T0)
        assert responder.query(foreign, T0).status is OcspStatus.UNKNOWN

    def test_staple_cache_freshness(self, env):
        _ca, cert, _pub, responder = env
        staples = StapleCache(responder)
        staples.refresh(cert, T0)
        assert staples.staple_for(cert, T0 + 7) is not None
        assert staples.staple_for(cert, T0 + 8) is None  # staple expired


class TestRevocationChecker:
    def test_none_policy_always_accepts(self, env):
        _ca, cert, publisher, _responder = env
        publisher.revoke(cert, T0 + 1, RevocationReason.KEY_COMPROMISE)
        checker = RevocationChecker(RevocationPolicy.NONE)
        assert checker.connection_outcome(cert, T0 + 2) is CheckDecision.ACCEPT

    def test_checking_policy_requires_responder(self):
        with pytest.raises(ValueError):
            RevocationChecker(RevocationPolicy.SOFT_FAIL)

    def test_soft_fail_rejects_when_status_reachable(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1)
        checker = RevocationChecker(RevocationPolicy.SOFT_FAIL, responder)
        assert checker.connection_outcome(cert, T0 + 2) is CheckDecision.REJECT_REVOKED

    def test_soft_fail_bypassed_by_interceptor(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1, RevocationReason.KEY_COMPROMISE)
        checker = RevocationChecker(RevocationPolicy.SOFT_FAIL, responder)
        context = ConnectionContext(interceptor_drops_revocation_traffic=True)
        assert checker.connection_outcome(cert, T0 + 2, context) is CheckDecision.ACCEPT

    def test_hard_fail_resists_interceptor(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1)
        checker = RevocationChecker(RevocationPolicy.HARD_FAIL, responder)
        context = ConnectionContext(interceptor_drops_revocation_traffic=True)
        assert (
            checker.connection_outcome(cert, T0 + 2, context)
            is CheckDecision.REJECT_UNAVAILABLE
        )

    def test_must_staple_hard_fails_without_staple(self, env):
        _ca, cert, _publisher, responder = env
        staples = StapleCache(responder)
        checker = RevocationChecker(
            RevocationPolicy.SOFT_FAIL, responder, staples, honor_must_staple=True
        )
        context = ConnectionContext(staple_presented=False)
        decision = checker.connection_outcome(cert, T0 + 1, context, must_staple=True)
        assert decision is CheckDecision.REJECT_UNAVAILABLE

    def test_must_staple_accepts_fresh_good_staple(self, env):
        _ca, cert, _publisher, responder = env
        staples = StapleCache(responder)
        staples.refresh(cert, T0 + 1)
        checker = RevocationChecker(
            RevocationPolicy.SOFT_FAIL, responder, staples, honor_must_staple=True
        )
        assert (
            checker.connection_outcome(cert, T0 + 2, must_staple=True)
            is CheckDecision.ACCEPT
        )

    def test_must_staple_rejects_revoked_staple(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1)
        staples = StapleCache(responder)
        staples.refresh(cert, T0 + 2)
        checker = RevocationChecker(
            RevocationPolicy.SOFT_FAIL, responder, staples, honor_must_staple=True
        )
        assert (
            checker.connection_outcome(cert, T0 + 3, must_staple=True)
            is CheckDecision.REJECT_REVOKED
        )


class TestInterceptionModel:
    def test_revoked_stale_cert_still_intercepts_chrome_like(self, env):
        """The paper's core point: revocation gives no recourse."""
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1, RevocationReason.KEY_COMPROMISE)
        chrome = RevocationChecker(RevocationPolicy.NONE)
        assert interception_succeeds(chrome, cert, T0 + 30, revoked=True)

    def test_revoked_stale_cert_intercepts_firefox_soft_fail(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1, RevocationReason.KEY_COMPROMISE)
        firefox = RevocationChecker(RevocationPolicy.SOFT_FAIL, responder)
        assert interception_succeeds(firefox, cert, T0 + 30, revoked=True)

    def test_expiration_is_the_backstop(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1, RevocationReason.KEY_COMPROMISE)
        chrome = RevocationChecker(RevocationPolicy.NONE)
        after_expiry = cert.not_after + 1
        assert not interception_succeeds(chrome, cert, after_expiry, revoked=True)

    def test_hard_fail_stops_interception(self, env):
        _ca, cert, publisher, responder = env
        publisher.revoke(cert, T0 + 1)
        hard = RevocationChecker(RevocationPolicy.HARD_FAIL, responder)
        assert not interception_succeeds(hard, cert, T0 + 30, revoked=True)

    def test_must_staple_stops_interception(self, env):
        _ca, cert, _publisher, responder = env
        staples = StapleCache(responder)
        checker = RevocationChecker(
            RevocationPolicy.SOFT_FAIL, responder, staples, honor_must_staple=True
        )
        assert not interception_succeeds(
            checker, cert, T0 + 30, revoked=False, must_staple=True
        )
