"""Columnar vs legacy bundle equivalence across every consumer.

The acceptance bar for the columnar data plane: the batch pipeline, the
sharded parallel pipeline (real process pool), the streaming replay,
and the serving index must produce *identical* findings whether the
bundle on disk is columnar segments or legacy JSONL — and none of the
internal paths may touch the deprecated shim (zero DeprecationWarning).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import MeasurementPipeline, ParallelMeasurementPipeline
from repro.data import check_equivalent, convert, open_bundle, save_legacy_bundle, write_dataset
from repro.serve import FindingsIndex
from repro.stream import StreamEngine, canonical_findings


@pytest.fixture(scope="module")
def cutoff(small_world):
    return small_world.config.timeline.revocation_cutoff


@pytest.fixture(scope="module")
def legacy_dir(small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("eq-legacy"))
    save_legacy_bundle(small_world.to_bundle(), directory)
    return directory


@pytest.fixture(scope="module")
def columnar_dir(small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("eq-columnar"))
    write_dataset(small_world.to_bundle(), directory)
    return directory


@pytest.fixture(scope="module")
def legacy_findings(legacy_dir, cutoff):
    bundle = open_bundle(legacy_dir)
    result = MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()
    return canonical_findings(result.findings)


class TestConsumerEquivalence:
    def test_batch_findings_identical(self, columnar_dir, cutoff, legacy_findings):
        bundle = open_bundle(columnar_dir)
        result = MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()
        assert canonical_findings(result.findings) == legacy_findings

    def test_parallel_process_pool_identical(
        self, columnar_dir, cutoff, legacy_findings
    ):
        bundle = open_bundle(columnar_dir)
        result = ParallelMeasurementPipeline(
            bundle, workers=4, revocation_cutoff_day=cutoff
        ).run()
        assert canonical_findings(result.findings) == legacy_findings
        assert result.shard_stats.executor == "process"

    def test_stream_replay_identical(self, columnar_dir, cutoff, legacy_findings):
        bundle = open_bundle(columnar_dir)
        result = StreamEngine(bundle, revocation_cutoff_day=cutoff).replay()
        assert result.complete
        assert canonical_findings(result.findings) == legacy_findings

    def test_serve_index_identical(self, columnar_dir, legacy_dir, cutoff):
        columnar = FindingsIndex.from_bundle(
            columnar_dir, revocation_cutoff_day=cutoff
        )
        legacy = FindingsIndex.from_bundle(
            legacy_dir, revocation_cutoff_day=cutoff
        )
        assert len(columnar) == len(legacy)
        assert columnar.domains() == legacy.domains()
        assert columnar.aggregates("class") == legacy.aggregates("class")
        assert columnar.aggregates("issuer") == legacy.aggregates("issuer")


class TestConvert:
    def test_round_trip_is_equivalent(self, legacy_dir, tmp_path):
        columnar = str(tmp_path / "columnar")
        back = str(tmp_path / "legacy-again")
        convert(legacy_dir, columnar, layout="columnar")
        convert(columnar, back, layout="legacy")
        assert check_equivalent(legacy_dir, columnar) == []
        assert check_equivalent(columnar, back) == []

    def test_unknown_layout_rejected(self, legacy_dir, tmp_path):
        with pytest.raises(ValueError):
            convert(legacy_dir, str(tmp_path / "out"), layout="parquet")


class TestForkSafety:
    def test_mmap_survives_process_pool_fork_and_closes(
        self, columnar_dir, cutoff, legacy_findings
    ):
        """A forked worker inherits the parent's mapped segments; runs
        must still merge correctly and the parent must close cleanly."""
        bundle = open_bundle(columnar_dir)
        with ProcessPoolExecutor(max_workers=2):
            pass  # prove fork itself is safe with segments already mapped
        result = ParallelMeasurementPipeline(
            bundle, workers=2, revocation_cutoff_day=cutoff
        ).run()
        assert canonical_findings(result.findings) == legacy_findings
        bundle.close()
        # Reopen and run again: closing released the maps, nothing leaked.
        reopened = open_bundle(columnar_dir)
        again = MeasurementPipeline(
            reopened, revocation_cutoff_day=cutoff
        ).run()
        assert canonical_findings(again.findings) == legacy_findings
        reopened.close()


class TestNoDeprecationWarnings:
    def test_internal_paths_never_touch_the_shim(
        self, small_world, columnar_dir, cutoff, tmp_path
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            destination = str(tmp_path / "fresh")
            write_dataset(small_world.to_bundle(), destination)
            bundle = open_bundle(destination)
            MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()
            FindingsIndex.from_bundle(
                columnar_dir, revocation_cutoff_day=cutoff
            )
