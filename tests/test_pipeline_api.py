"""Pipeline API surface: run_bundle, result persistence, Detector protocol."""

from __future__ import annotations

import pytest

from repro import MeasurementPipeline, StalenessClass
from repro.core.detectors import (
    Detector,
    KeyCompromiseDetector,
    ManagedTlsDetector,
    RegistrantChangeDetector,
)
from repro.core.pipeline import DETECTOR_REGISTRY, DatasetBundle, PipelineResult
from repro.ct.dedup import CertificateCorpus
from repro.stream.detectors import (
    IncrementalKeyCompromiseDetector,
    IncrementalManagedTlsDetector,
    IncrementalRegistrantChangeDetector,
)
from repro.stream.engine import canonical_findings


@pytest.fixture(scope="module")
def bundle(small_world):
    return small_world.to_bundle()


@pytest.fixture(scope="module")
def cutoff(small_world):
    return small_world.config.timeline.revocation_cutoff


class TestRunBundle:
    def test_matches_constructor_path(self, bundle, cutoff, pipeline_result):
        result = MeasurementPipeline.run_bundle(bundle, revocation_cutoff_day=cutoff)
        assert canonical_findings(result.findings) == canonical_findings(
            pipeline_result.findings
        )
        assert result.revocation_stats == pipeline_result.revocation_stats

    def test_workers_route_to_parallel_engine(self, bundle, cutoff, pipeline_result):
        result = MeasurementPipeline.run_bundle(
            bundle, revocation_cutoff_day=cutoff, workers=2
        )
        assert canonical_findings(result.findings) == canonical_findings(
            pipeline_result.findings
        )
        assert result.shard_stats is not None
        assert result.shard_stats.workers == 2

    def test_single_worker_has_no_shard_stats(self, bundle, cutoff):
        result = MeasurementPipeline.run_bundle(bundle, revocation_cutoff_day=cutoff)
        assert result.shard_stats is None


class TestResultPersistence:
    def test_round_trip(self, tmp_path, pipeline_result):
        path = str(tmp_path / "result.json")
        pipeline_result.to_json(path)
        restored = PipelineResult.from_json(path)
        assert canonical_findings(restored.findings) == canonical_findings(
            pipeline_result.findings
        )
        assert restored.revocation_stats == pipeline_result.revocation_stats
        assert restored.windows == pipeline_result.windows
        assert restored.shard_stats is None

    def test_round_trip_gzipped(self, tmp_path, pipeline_result):
        path = str(tmp_path / "result.json.gz")
        pipeline_result.to_json(path)
        restored = PipelineResult.from_json(path)
        assert len(restored.findings) == len(pipeline_result.findings)

    def test_round_trip_preserves_shard_stats(self, tmp_path, bundle, cutoff):
        result = MeasurementPipeline.run_bundle(
            bundle, revocation_cutoff_day=cutoff, workers=2
        )
        path = str(tmp_path / "parallel.json")
        result.to_json(path)
        restored = PipelineResult.from_json(path)
        assert restored.shard_stats is not None
        assert restored.shard_stats.num_shards == result.shard_stats.num_shards
        assert [s.to_record() for s in restored.shard_stats.shards] == [
            s.to_record() for s in result.shard_stats.shards
        ]

    def test_aggregates_survive_round_trip(self, tmp_path, pipeline_result):
        path = str(tmp_path / "result.json")
        pipeline_result.to_json(path)
        restored = PipelineResult.from_json(path)
        original = {
            row.staleness_class: row.stale_certificates
            for row in pipeline_result.aggregate_table()
        }
        assert {
            row.staleness_class: row.stale_certificates
            for row in restored.aggregate_table()
        } == original


class TestDetectorProtocol:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: KeyCompromiseDetector(CertificateCorpus()),
            lambda: RegistrantChangeDetector(CertificateCorpus()),
            lambda: ManagedTlsDetector(CertificateCorpus()),
            lambda: IncrementalKeyCompromiseDetector(),
            lambda: IncrementalRegistrantChangeDetector(),
            lambda: IncrementalManagedTlsDetector(),
        ],
        ids=[
            "batch-kc", "batch-rc", "batch-mt",
            "stream-kc", "stream-rc", "stream-mt",
        ],
    )
    def test_all_detectors_satisfy_protocol(self, build):
        assert isinstance(build(), Detector)

    def test_registry_keys_match_stream_names(self):
        assert [spec.key for spec in DETECTOR_REGISTRY] == [
            IncrementalKeyCompromiseDetector.name,
            IncrementalRegistrantChangeDetector.name,
            IncrementalManagedTlsDetector.name,
        ]

    def test_registry_applies_gates_on_dataset_presence(self):
        empty = DatasetBundle(corpus=CertificateCorpus())
        assert [spec.applies(empty) for spec in DETECTOR_REGISTRY] == [
            False, False, False,
        ]

    def test_registry_applies_matches_batch_gating(self, bundle):
        assert all(spec.applies(bundle) for spec in DETECTOR_REGISTRY)

    def test_empty_bundle_runs_no_detectors(self):
        result = MeasurementPipeline.run_bundle(DatasetBundle(corpus=CertificateCorpus()))
        assert len(result.findings) == 0
        assert result.revocation_stats is None

    def test_registry_stats_exposed(self, bundle, cutoff):
        # Each batch detector exposes join accounting after a run.
        pipeline = MeasurementPipeline(bundle, revocation_cutoff_day=cutoff)
        result = pipeline.run()
        assert result.revocation_stats.crl_entries_merged > 0
        assert result.findings.of_class(StalenessClass.REVOKED_ALL)
