"""Property tests for the detectors against brute-force oracles.

Each detector is checked on randomized inputs against a direct, obviously-
correct reimplementation of its specification sentence from the paper.
"""

from typing import Dict, List, Set, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detectors.registrant_change import (
    RegistrantChangeDetector,
    find_re_registrations,
)
from repro.core.lifetime import capped_staleness_days
from repro.core.stale import StaleCertificate, StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2019, 1, 1)

# Strategy: a handful of domains with random registration histories and
# random certificates, all expressed as day offsets from T0.
_domains = st.sampled_from(["alpha.com", "beta.com", "gamma.net"])


@st.composite
def whois_pairs(draw):
    pairs = []
    for domain in ["alpha.com", "beta.com", "gamma.net"]:
        dates = draw(st.lists(st.integers(0, 900), min_size=1, max_size=4, unique=True))
        pairs.extend((domain, T0 + offset) for offset in sorted(dates))
    return pairs


@st.composite
def cert_specs(draw):
    specs = []
    count = draw(st.integers(0, 8))
    for index in range(count):
        domain = draw(_domains)
        start = draw(st.integers(0, 800))
        lifetime = draw(st.sampled_from([90, 365, 398]))
        specs.append((domain, T0 + start, lifetime, 200_000 + index))
    return specs


def _build_corpus(specs):
    corpus = CertificateCorpus()
    corpus.ingest(
        make_cert(sans=(domain, f"www.{domain}"), serial=serial,
                  not_before=start, lifetime=lifetime)
        for domain, start, lifetime, serial in specs
    )
    return corpus


class TestRegistrantChangeOracle:
    @settings(max_examples=80, deadline=None)
    @given(whois_pairs(), cert_specs())
    def test_matches_specification(self, pairs, specs):
        """Findings == {(cert, domain, creation) : notBefore < creation <
        notAfter, creation is a re-registration, SAN covers domain}."""
        corpus = _build_corpus(specs)
        findings = RegistrantChangeDetector(corpus, tlds=None).detect(pairs)
        got = {
            (f.certificate.serial, f.affected_domain, f.invalidation_day)
            for f in findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        }

        # Brute-force oracle straight from Section 4.2's sentence.
        expected = set()
        dates_by_domain: Dict[str, List[int]] = {}
        for domain, creation in pairs:
            dates_by_domain.setdefault(domain, []).append(creation)
        for domain, dates in dates_by_domain.items():
            for creation in sorted(set(dates))[1:]:  # re-registrations only
                for spec_domain, start, lifetime, serial in specs:
                    if spec_domain != domain:
                        continue
                    if start < creation < start + lifetime:
                        expected.add((serial, domain, creation))
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(whois_pairs())
    def test_first_creation_date_never_an_event(self, pairs):
        events = find_re_registrations(pairs, None)
        first_dates = {}
        for domain, creation in pairs:
            first_dates.setdefault(domain, min(c for d, c in pairs if d == domain))
        for event in events:
            assert event.creation_day != first_dates[event.domain]


class TestLifetimeCapOracle:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(1, 900),  # lifetime
        st.integers(0, 900),  # invalidation offset (clamped)
        st.integers(1, 900),  # cap
    )
    def test_capped_staleness_matches_direct_simulation(self, lifetime, offset, cap):
        """Capping must equal literally rebuilding the certificate with the
        clamped lifetime and recomputing staleness (dropping the finding if
        the invalidation lands outside the shorter window)."""
        offset = min(offset, lifetime)
        cert = make_cert(not_before=T0, lifetime=lifetime)
        finding = StaleCertificate(
            certificate=cert,
            staleness_class=StalenessClass.KEY_COMPROMISE,
            invalidation_day=T0 + offset,
        )
        got = capped_staleness_days(finding, cap)

        clamped = cert.clamp_lifetime(cap)
        if finding.invalidation_day > clamped.not_after:
            expected = 0
        else:
            expected = clamped.not_after - finding.invalidation_day
        assert got == expected
