"""Tests for the RFC 6962 Merkle tree and proofs (incl. property tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ct.merkle import (
    MerkleTree,
    leaf_hash,
    node_hash,
    verify_consistency,
    verify_inclusion,
)


def build_tree(n):
    tree = MerkleTree()
    for i in range(n):
        tree.append(f"entry-{i}".encode())
    return tree


class TestTreeBasics:
    def test_empty_root_is_hash_of_empty(self):
        import hashlib

        assert MerkleTree().root() == hashlib.sha256(b"").digest()

    def test_single_leaf_root_is_leaf_hash(self):
        tree = build_tree(1)
        assert tree.root() == leaf_hash(b"entry-0")

    def test_two_leaf_root(self):
        tree = build_tree(2)
        assert tree.root() == node_hash(leaf_hash(b"entry-0"), leaf_hash(b"entry-1"))

    def test_domain_separation_prevents_splicing(self):
        # leaf hash of X != node hash of (X-left, X-right) components.
        assert leaf_hash(b"ab") != node_hash(b"a", b"b")

    def test_root_of_prefix(self):
        tree = build_tree(10)
        prefix = build_tree(6)
        assert tree.root(6) == prefix.root()

    def test_root_size_bounds(self):
        tree = build_tree(3)
        with pytest.raises(ValueError):
            tree.root(4)


class TestInclusionProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 33, 64, 100])
    def test_every_index_verifies(self, size):
        tree = build_tree(size)
        root = tree.root(size)
        for index in range(size):
            proof = tree.inclusion_proof(index, size)
            assert verify_inclusion(f"entry-{index}".encode(), index, size, proof, root)

    def test_wrong_leaf_fails(self):
        tree = build_tree(10)
        proof = tree.inclusion_proof(3, 10)
        assert not verify_inclusion(b"tampered", 3, 10, proof, tree.root(10))

    def test_wrong_index_fails(self):
        tree = build_tree(10)
        proof = tree.inclusion_proof(3, 10)
        assert not verify_inclusion(b"entry-3", 4, 10, proof, tree.root(10))

    def test_wrong_root_fails(self):
        tree = build_tree(10)
        proof = tree.inclusion_proof(3, 10)
        assert not verify_inclusion(b"entry-3", 3, 10, proof, tree.root(9))

    def test_out_of_range_rejected(self):
        tree = build_tree(4)
        with pytest.raises(ValueError):
            tree.inclusion_proof(4, 4)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 120))
    def test_property_random_sizes(self, size):
        tree = build_tree(size)
        root = tree.root()
        index = size // 2
        proof = tree.inclusion_proof(index)
        assert verify_inclusion(f"entry-{index}".encode(), index, size, proof, root)


class TestConsistencyProofs:
    @pytest.mark.parametrize(
        "old,new",
        [(1, 2), (2, 3), (3, 7), (4, 8), (6, 8), (7, 13), (8, 8), (33, 100), (64, 65)],
    )
    def test_consistency_verifies(self, old, new):
        tree = build_tree(new)
        proof = tree.consistency_proof(old, new)
        assert verify_consistency(old, new, tree.root(old), tree.root(new), proof)

    def test_equal_sizes_empty_proof(self):
        tree = build_tree(5)
        assert tree.consistency_proof(5, 5) == []
        assert verify_consistency(5, 5, tree.root(5), tree.root(5), [])

    def test_rewritten_history_detected(self):
        honest = build_tree(8)
        forged = MerkleTree()
        for i in range(8):
            forged.append(f"forged-{i}".encode())
        proof = forged.consistency_proof(4, 8)
        assert not verify_consistency(4, 8, honest.root(4), forged.root(8), proof)

    def test_invalid_sizes_rejected(self):
        tree = build_tree(5)
        with pytest.raises(ValueError):
            tree.consistency_proof(0, 5)
        with pytest.raises(ValueError):
            tree.consistency_proof(6, 5)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 90), st.integers(0, 60))
    def test_property_all_pairs(self, old, extra):
        new = old + extra
        tree = build_tree(new)
        proof = tree.consistency_proof(old, new)
        assert verify_consistency(old, new, tree.root(old), tree.root(new), proof)
