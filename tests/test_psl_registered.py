"""Tests for DomainName and e2LD helpers over the embedded PSL."""

import pytest

from repro.psl.registered import (
    DomainName,
    e2ld,
    etld,
    is_subdomain_of,
    matches_wildcard,
    registrable_parts,
)


class TestDomainName:
    def test_normalizes_case_and_dots(self):
        assert DomainName(" Foo.Example.COM. ").name == "foo.example.com"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DomainName("")

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError):
            DomainName("exa mple.com")

    def test_rejects_leading_hyphen_label(self):
        with pytest.raises(ValueError):
            DomainName("-bad.com")

    def test_rejects_overlong_name(self):
        with pytest.raises(ValueError):
            DomainName(("a" * 63 + ".") * 5 + "com")

    def test_wildcard_only_leftmost(self):
        assert DomainName("*.example.com").is_wildcard
        with pytest.raises(ValueError):
            DomainName("www.*.example.com")

    def test_without_wildcard(self):
        assert DomainName("*.example.com").without_wildcard().name == "example.com"
        assert DomainName("example.com").without_wildcard().name == "example.com"

    def test_parent(self):
        assert DomainName("a.b.com").parent().name == "b.com"
        assert DomainName("com").parent() is None

    def test_labels(self):
        assert DomainName("a.b.com").labels == ("a", "b", "com")


class TestEffectiveDomains:
    def test_e2ld_generic(self):
        assert e2ld("www.example.com") == "example.com"

    def test_e2ld_uk(self):
        assert e2ld("shop.foo.co.uk") == "foo.co.uk"

    def test_e2ld_of_bare_suffix_is_none(self):
        assert e2ld("co.uk") is None

    def test_e2ld_wildcard_uses_base(self):
        assert e2ld("*.foo.com") == "foo.com"

    def test_etld(self):
        assert etld("www.example.org") == "org"
        assert etld("x.y.co.jp") == "co.jp"

    def test_registrable_parts(self):
        assert registrable_parts("a.b.example.net") == ("example.net", "net")

    def test_cloudflaressl_private_suffix(self):
        # The PSL's private-section analogue: each sniNNN label is its own
        # registrable name under cloudflaressl.com.
        assert etld("sni12345.cloudflaressl.com") == "cloudflaressl.com"


class TestSubdomainAndWildcards:
    def test_is_subdomain_of(self):
        assert is_subdomain_of("a.b.com", "b.com")
        assert is_subdomain_of("b.com", "b.com")
        assert not is_subdomain_of("ab.com", "b.com")  # label alignment

    def test_matches_wildcard_single_label(self):
        assert matches_wildcard("*.example.com", "www.example.com")
        assert not matches_wildcard("*.example.com", "a.b.example.com")
        assert not matches_wildcard("*.example.com", "example.com")

    def test_matches_exact(self):
        assert matches_wildcard("example.com", "EXAMPLE.com")
        assert not matches_wildcard("example.com", "www.example.com")
