"""Tests for the table builders over the shared small world."""

import pytest

from repro.analysis.aggregate import build_table3, build_table4
from repro.analysis.crl_coverage import build_table7
from repro.analysis.popularity_analysis import build_table6
from repro.analysis.report import render_table
from repro.analysis.reputation_analysis import build_table5
from repro.core.stale import StalenessClass
from repro.popularity import PopularityProvider
from repro.reputation import build_store_from_ownership
from repro.util.rng import RngStream


class TestTable3:
    def test_four_dataset_rows(self, small_world):
        rows = build_table3(small_world)
        assert [r.dataset for r in rows] == ["CT", "CRL", "WHOIS", "aDNS"]
        assert "2013-03-01" in rows[0].date_range
        assert "certs (deduplicated)" in rows[0].size


class TestTable4:
    def test_rows_in_paper_order(self, pipeline_result):
        rows = build_table4(pipeline_result)
        methods = [r.method for r in rows]
        assert methods[0] == "Revoked: all"
        assert "Revoked: key compromise" in methods
        assert "Domain registrant change" in methods
        assert "Cloudflare managed TLS departure" in methods

    def test_daily_rates_consistent_with_totals(self, pipeline_result):
        for row in build_table4(pipeline_result):
            assert row.daily_certs <= row.total_certs
            assert row.total_fqdns >= row.total_e2lds

    def test_paper_ordering_of_daily_e2ld_rates(self, pipeline_result):
        """Table 4's qualitative claim: managed TLS > registrant change >
        key compromise in daily e2LD rates."""
        by_method = {r.method: r for r in build_table4(pipeline_result)}
        managed = by_method["Cloudflare managed TLS departure"].daily_e2lds
        registrant = by_method["Domain registrant change"].daily_e2lds
        kc = by_method["Revoked: key compromise"].daily_e2lds
        assert managed > registrant > kc

    def test_revoked_all_dwarfs_key_compromise(self, pipeline_result):
        by_method = {r.method: r for r in build_table4(pipeline_result)}
        assert (
            by_method["Revoked: all"].total_certs
            > 5 * by_method["Revoked: key compromise"].total_certs
        )


class TestTable5:
    def test_reputation_analysis(self, small_world, pipeline_result):
        store = build_store_from_ownership(
            small_world.malicious_ownership, RngStream(11, "vt-test")
        )
        analysis = build_table5(pipeline_result.findings, store, sample_size=100_000)
        assert analysis.sampled_domains > 0
        assert 0 <= analysis.detected_domains <= analysis.sampled_domains
        # Paper finds ~1% of sampled domains malicious; ours should be small.
        assert analysis.detected_fraction < 0.2
        assert (
            analysis.mw_only + analysis.mw_and_url + analysis.url_only
            == analysis.detected_domains
        )

    def test_sampling_bound(self, small_world, pipeline_result):
        store = build_store_from_ownership(
            small_world.malicious_ownership, RngStream(11, "vt-test")
        )
        analysis = build_table5(pipeline_result.findings, store, sample_size=5)
        assert analysis.sampled_domains == 5


class TestTable6:
    def _provider(self, small_world):
        alive = {}
        for name in small_world.registry.all_domains():
            spans = small_world.registry.spans(name)
            alive[name] = (
                spans[0].creation_date,
                spans[-1].deleted_on or small_world.config.timeline.simulation_end,
            )
        return PopularityProvider(small_world.popularity_ranks, alive)

    def test_columns_and_cumulative_buckets(self, small_world, pipeline_result):
        columns = build_table6(pipeline_result.findings, self._provider(small_world))
        assert len(columns) == 3
        for column in columns:
            counts = [column.bucket_counts[b] for b in (1_000, 10_000, 100_000, 1_000_000)]
            assert counts == sorted(counts)  # cumulative
            assert column.bucket_counts[1_000_000] <= column.total_domains

    def test_long_tail_dominates(self, small_world, pipeline_result):
        """The paper's takeaway: the overwhelming majority of stale-cert
        domains are NOT in the top lists."""
        columns = build_table6(pipeline_result.findings, self._provider(small_world))
        for column in columns:
            if column.total_domains >= 20:
                assert column.percent_in_top_1m() < 50.0


class TestTable7:
    def test_coverage_rows(self, small_world):
        rows = build_table7(small_world.crl_fetcher)
        assert rows[-1].ca_operator == "Total Coverage"
        # Blocked CAs first (coverage ascending).
        assert rows[0].coverage == 0.0
        operators = {row.ca_operator for row in rows}
        assert {"Microsoft", "Visa"} <= operators

    def test_total_coverage_near_paper(self, small_world):
        total = build_table7(small_world.crl_fetcher)[-1]
        assert 0.90 <= total.coverage <= 1.0  # paper: 98.40%

    def test_render_table_smoke(self, small_world):
        rows = build_table7(small_world.crl_fetcher)
        text = render_table(
            ["CA", "Coverage"], [(r.ca_operator, r.coverage_text) for r in rows]
        )
        assert "Total Coverage" in text
