"""Unit tests for span tracing and the structured JSON log bridge."""

import io
import json
import logging

import pytest

from repro.obs import (
    configure_json_logging,
    current_span,
    log,
    names,
    remove_json_logging,
    span,
    use_collector,
    use_registry,
)
from repro.obs.metrics import MetricsRegistry


class TestSpan:
    def test_records_histogram_sample_by_name(self):
        registry = MetricsRegistry()
        with span("unit_test_block", registry=registry):
            pass
        data = registry.histogram(
            names.SPAN_SECONDS, labels=("name",)
        ).data(name="unit_test_block")
        assert data is not None
        assert data.count == 1
        assert data.sum >= 0.0

    def test_uses_active_registry_by_default(self):
        with use_registry() as registry:
            with span("scoped_block"):
                pass
        data = registry.histogram(
            names.SPAN_SECONDS, labels=("name",)
        ).data(name="scoped_block")
        assert data is not None and data.count == 1

    def test_nesting_depth_and_parent(self):
        assert current_span() is None
        with span("outer") as outer:
            assert outer.depth == 0 and outer.parent is None
            assert current_span() is outer
            with span("inner") as inner:
                assert inner.depth == 1
                assert inner.parent == "outer"
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_seconds_filled_on_exit_even_on_error(self):
        registry = MetricsRegistry()
        try:
            with span("failing", registry=registry) as traced:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert traced.seconds is not None
        data = registry.histogram(
            names.SPAN_SECONDS, labels=("name",)
        ).data(name="failing")
        assert data is not None and data.count == 1

    def test_attrs_stay_out_of_metric_labels(self):
        registry = MetricsRegistry()
        with span("labelled", registry=registry, day=17):
            pass
        family = next(iter(registry.families()))
        assert family.label_names == ("name",)


class TestSpanStatus:
    def test_status_ok_by_default(self):
        with span("fine") as traced:
            pass
        assert traced.status == "ok"

    def test_status_error_on_raise_and_exception_propagates(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="boom"):
            with span("failing", registry=registry) as traced:
                raise ValueError("boom")
        assert traced.status == "error"

    def test_exception_counter_bumped_per_name(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with span("fallible", registry=registry):
                raise RuntimeError("x")
        counter = registry.counter(
            names.SPAN_EXCEPTIONS, labels=("name",)
        )
        assert counter.value(name="fallible") == 1

    def test_exception_counter_absent_for_clean_spans(self):
        registry = MetricsRegistry()
        with span("clean", registry=registry):
            pass
        family_names = {f.name for f in registry.families()}
        assert names.SPAN_EXCEPTIONS not in family_names

    def test_status_recorded_on_trace_end_event(self):
        registry = MetricsRegistry()
        with use_collector() as collector:
            with span("traced_ok", registry=registry):
                pass
            with pytest.raises(RuntimeError):
                with span("traced_bad", registry=registry):
                    raise RuntimeError("x")
        ends = {
            e["name"]: e["args"]["status"]
            for e in collector.events()
            if e["ph"] == "E"
        }
        assert ends == {"traced_ok": "ok", "traced_bad": "error"}

    def test_status_included_in_span_log_record(self):
        registry = MetricsRegistry()
        stream = io.StringIO()
        handler = configure_json_logging(stream=stream, level=logging.DEBUG)
        try:
            with pytest.raises(RuntimeError):
                with span("logged_failure", registry=registry):
                    raise RuntimeError("x")
        finally:
            remove_json_logging(handler)
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        (record,) = [r for r in records if r.get("event") == "span"]
        assert record["name"] == "logged_failure"
        assert record["status"] == "error"


class TestJsonLogBridge:
    def _capture(self, emit, level=logging.DEBUG):
        stream = io.StringIO()
        handler = configure_json_logging(stream=stream, level=level)
        try:
            emit()
        finally:
            remove_json_logging(handler)
        return [json.loads(line) for line in stream.getvalue().splitlines()]

    def test_structured_fields_inlined(self):
        records = self._capture(
            lambda: log("fetch_done", subsystem="revocation", operator="X", tries=3)
        )
        assert len(records) == 1
        record = records[0]
        assert record["event"] == "fetch_done"
        assert record["logger"] == "repro.revocation"
        assert record["level"] == "info"
        assert record["operator"] == "X"
        assert record["tries"] == 3
        assert isinstance(record["ts"], float)

    def test_plain_stdlib_records_come_out_as_json(self):
        records = self._capture(
            lambda: logging.getLogger("repro.somewhere").warning("plain %s", "msg")
        )
        assert records == [records[0]]
        assert records[0]["event"] == "plain msg"
        assert records[0]["level"] == "warning"

    def test_span_emits_debug_record_with_attrs(self):
        registry = MetricsRegistry()

        def emit():
            with span("traced_op", registry=registry, day=42):
                pass

        records = self._capture(emit)
        (record,) = [r for r in records if r["event"] == "span"]
        assert record["name"] == "traced_op"
        assert record["day"] == 42
        assert record["depth"] == 0
        assert record["parent"] is None
        assert record["seconds"] >= 0

    def test_handler_level_filters(self):
        records = self._capture(
            lambda: log("quiet", level=logging.DEBUG), level=logging.INFO
        )
        assert records == []

    def test_non_serializable_values_degrade_to_str(self):
        records = self._capture(lambda: log("odd", payload=object()))
        assert "object object at" in records[0]["payload"]

    def test_silent_without_configured_handler(self, capsys):
        log("nobody_listens", detail=1)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""
