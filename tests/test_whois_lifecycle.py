"""Tests for the domain lifecycle state machine."""

from repro.util.dates import day
from repro.whois.lifecycle import (
    AUTO_RENEW_GRACE_DAYS,
    PENDING_DELETE_DAYS,
    REDEMPTION_DAYS,
    DomainState,
    LifecycleEvent,
    LifecycleEventType,
    release_day,
    state_on,
)

EXPIRY = day(2020, 6, 1)


class TestStateOn:
    def test_active_before_expiry(self):
        assert state_on(EXPIRY, EXPIRY - 100) is DomainState.ACTIVE
        assert state_on(EXPIRY, EXPIRY) is DomainState.ACTIVE

    def test_grace_window(self):
        assert state_on(EXPIRY, EXPIRY + 1) is DomainState.AUTO_RENEW_GRACE
        assert state_on(EXPIRY, EXPIRY + AUTO_RENEW_GRACE_DAYS) is DomainState.AUTO_RENEW_GRACE

    def test_redemption_window(self):
        first = EXPIRY + AUTO_RENEW_GRACE_DAYS + 1
        last = EXPIRY + AUTO_RENEW_GRACE_DAYS + REDEMPTION_DAYS
        assert state_on(EXPIRY, first) is DomainState.REDEMPTION
        assert state_on(EXPIRY, last) is DomainState.REDEMPTION

    def test_pending_delete_window(self):
        first = EXPIRY + AUTO_RENEW_GRACE_DAYS + REDEMPTION_DAYS + 1
        last = EXPIRY + AUTO_RENEW_GRACE_DAYS + REDEMPTION_DAYS + PENDING_DELETE_DAYS
        assert state_on(EXPIRY, first) is DomainState.PENDING_DELETE
        assert state_on(EXPIRY, last) is DomainState.PENDING_DELETE

    def test_released_after_full_timeline(self):
        assert state_on(EXPIRY, release_day(EXPIRY)) is DomainState.RELEASED

    def test_deleted_short_circuits(self):
        assert state_on(EXPIRY, EXPIRY - 10, deleted=True) is DomainState.RELEASED


class TestReleaseDay:
    def test_release_day_is_80_days_after_expiry(self):
        assert release_day(EXPIRY) - EXPIRY == (
            AUTO_RENEW_GRACE_DAYS + REDEMPTION_DAYS + PENDING_DELETE_DAYS + 1
        )


class TestLifecycleEvent:
    def test_changes_registrant_true(self):
        event = LifecycleEvent(
            "a.com", LifecycleEventType.TRANSFERRED, EXPIRY, "new", "old"
        )
        assert event.changes_registrant

    def test_changes_registrant_false_same_owner(self):
        event = LifecycleEvent(
            "a.com", LifecycleEventType.RENEWED, EXPIRY, "same", "same"
        )
        assert not event.changes_registrant

    def test_changes_registrant_false_missing_parties(self):
        event = LifecycleEvent("a.com", LifecycleEventType.REGISTERED, EXPIRY, "new")
        assert not event.changes_registrant
