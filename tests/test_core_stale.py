"""Tests for StaleCertificate records and StaleFindings aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.stale import StaleCertificate, StaleFindings, StalenessClass
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2021, 1, 1)


def finding(cls=StalenessClass.REGISTRANT_CHANGE, invalidation=T0 + 100,
            affected=None, **cert_kwargs):
    cert = make_cert(not_before=T0, lifetime=365, **cert_kwargs)
    return StaleCertificate(
        certificate=cert,
        staleness_class=cls,
        invalidation_day=invalidation,
        affected_domain=affected,
    )


class TestStaleCertificate:
    def test_staleness_period(self):
        f = finding(invalidation=T0 + 100)
        assert f.stale_from == T0 + 100
        assert f.stale_until == T0 + 365
        assert f.staleness_days == 265

    def test_days_to_invalidation(self):
        assert finding(invalidation=T0 + 100).days_to_invalidation == 100

    def test_invalidation_after_expiry_rejected(self):
        with pytest.raises(ValueError):
            finding(invalidation=T0 + 366)

    def test_is_stale_on(self):
        f = finding(invalidation=T0 + 100)
        assert f.is_stale_on(T0 + 100)
        assert f.is_stale_on(T0 + 365)
        assert not f.is_stale_on(T0 + 99)
        assert not f.is_stale_on(T0 + 366)

    def test_affected_fqdns_all_sans_for_key_compromise(self):
        f = finding(cls=StalenessClass.KEY_COMPROMISE,
                    sans=("a.com", "b.com"))
        assert f.affected_fqdns() == frozenset({"a.com", "b.com"})

    def test_affected_fqdns_scoped_for_registrant_change(self):
        f = finding(affected="a.com", sans=("a.com", "www.a.com", "b.com"))
        assert f.affected_fqdns() == frozenset({"a.com", "www.a.com"})

    def test_affected_e2lds_scoped(self):
        f = finding(affected="a.com", sans=("a.com", "b.com"))
        assert f.affected_e2lds() == frozenset({"a.com"})

    def test_affected_e2lds_all_for_key_compromise(self):
        f = finding(cls=StalenessClass.KEY_COMPROMISE, sans=("x.a.com", "y.b.com"))
        assert f.affected_e2lds() == frozenset({"a.com", "b.com"})

    @given(st.integers(0, 365))
    def test_staleness_invariant(self, offset):
        f = finding(invalidation=T0 + offset)
        assert f.staleness_days + f.days_to_invalidation == f.certificate.lifetime_days
        assert f.staleness_days >= 0


class TestStaleFindings:
    def test_add_and_group(self):
        findings = StaleFindings()
        findings.add(finding())
        findings.add(finding(cls=StalenessClass.KEY_COMPROMISE))
        assert len(findings) == 2
        assert len(findings.of_class(StalenessClass.REGISTRANT_CHANGE)) == 1

    def test_aggregate_counts_distinct_fqdns_and_e2lds(self):
        findings = StaleFindings()
        findings.add(finding(affected="a.com", sans=("a.com", "www.a.com"), serial=90_001))
        findings.add(finding(affected="a.com", sans=("a.com",), serial=90_002))
        aggregate = findings.aggregate(StalenessClass.REGISTRANT_CHANGE)
        assert aggregate.stale_certificates == 2
        assert aggregate.stale_fqdns == 2  # a.com + www.a.com
        assert aggregate.stale_e2lds == 1

    def test_aggregate_daily_rates_with_window(self):
        findings = StaleFindings()
        findings.add(finding())
        aggregate = findings.aggregate(
            StalenessClass.REGISTRANT_CHANGE, window=(T0, T0 + 99)
        )
        assert aggregate.observation_days == 100
        assert aggregate.daily_certificates == pytest.approx(0.01)

    def test_aggregate_empty_class_is_none(self):
        assert StaleFindings().aggregate(StalenessClass.KEY_COMPROMISE) is None

    def test_staleness_ecdf(self):
        findings = StaleFindings()
        for offset in (65, 165, 265):
            findings.add(finding(invalidation=T0 + offset, serial=91_000 + offset))
        ecdf = findings.staleness_ecdf(StalenessClass.REGISTRANT_CHANGE)
        assert ecdf.median_value == 200  # staleness 300/200/100 -> median 200

    def test_survival_curve(self):
        findings = StaleFindings()
        for offset in (10, 100, 300):
            findings.add(finding(invalidation=T0 + offset, serial=92_000 + offset))
        curve = findings.survival_curve(StalenessClass.REGISTRANT_CHANGE)
        assert curve.survival_at(90) == pytest.approx(2 / 3)

    def test_ecdf_empty_class_raises(self):
        with pytest.raises(ValueError):
            StaleFindings().staleness_ecdf(StalenessClass.KEY_COMPROMISE)

    def test_total_staleness_days(self):
        findings = StaleFindings()
        findings.add(finding(invalidation=T0 + 265, serial=93_001))  # 100 days
        findings.add(finding(invalidation=T0 + 165, serial=93_002))  # 200 days
        assert findings.total_staleness_days(StalenessClass.REGISTRANT_CHANGE) == 300


class TestLiveCountSeries:
    def test_counts_match_brute_force(self):
        findings = StaleFindings()
        offsets = [(10, 94_001), (100, 94_002), (200, 94_003), (300, 94_004)]
        for offset, serial in offsets:
            findings.add(finding(invalidation=T0 + offset, serial=serial))
        series = findings.live_count_series(
            StalenessClass.REGISTRANT_CHANGE, T0, T0 + 400, step_days=13
        )
        items = findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        for sample_day, count in series:
            expected = sum(1 for f in items if f.is_stale_on(sample_day))
            assert count == expected

    def test_population_replenishes_then_drains(self):
        findings = StaleFindings()
        for offset, serial in ((50, 94_010), (150, 94_011), (250, 94_012)):
            findings.add(finding(invalidation=T0 + offset, serial=serial))
        series = findings.live_count_series(
            StalenessClass.REGISTRANT_CHANGE, T0, T0 + 500, step_days=25
        )
        counts = [c for _, c in series]
        assert max(counts) >= 2  # overlapping stale windows accumulate
        assert counts[-1] == 0  # everything expires eventually

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            StaleFindings().live_count_series(
                StalenessClass.REGISTRANT_CHANGE, T0, T0 + 10, step_days=0
            )

    def test_empty_class_all_zero(self):
        series = StaleFindings().live_count_series(
            StalenessClass.KEY_COMPROMISE, T0, T0 + 50, step_days=10
        )
        assert all(count == 0 for _, count in series)
