"""Regression tests for RNG-coupling bugs in the day-loop simulator.

Two cross-cutting draws used to come straight out of shared sequential
streams, coupling unrelated entities:

* DNS scan loss drew one ``_rng_life.bernoulli`` per alive domain, so a
  domain's loss outcome (and every later lifecycle decision) depended
  on how many *other* domains happened to exist that day.
* ``_sample_recently_issued`` kept every issuance bucket forever; the
  recency-window prune must consume draw-for-draw identical RNG so old
  worlds reproduce exactly.
"""

from __future__ import annotations

import dataclasses

from repro.dns.snapshots import DomainObservation
from repro.ecosystem.simulator import WorldSimulator, simulate_world
from repro.ecosystem.workload import WorldConfig
from repro.util.dates import day


def _observation(apex: str) -> DomainObservation:
    obs = DomainObservation(apex)
    obs.rdatas["NS"] = frozenset({f"ns1.{apex}", f"ns2.{apex}"})
    return obs


def _scan_outcome(population, probe: str, scan_day, loss_rate=0.5):
    """Whether *probe* survives the scan among *population* apexes."""
    config = dataclasses.replace(
        WorldConfig(seed=777), dns_scan_loss_rate=loss_rate
    )
    simulator = WorldSimulator(config)
    simulator._current_obs = {apex: _observation(apex) for apex in population}
    observed = simulator._scan_observations(scan_day)
    return probe in observed


class TestScanLossDecoupling:
    def test_loss_outcome_invariant_to_unrelated_domains(self):
        """A domain's scan-loss fate must not depend on the rest of the zone."""
        probe = "probe-domain.com"
        scan_day = day(2022, 9, 1)
        alone = _scan_outcome([probe], probe, scan_day)
        for crowd_size in (1, 17, 50):
            crowd = [f"filler-{i}.net" for i in range(crowd_size)] + [probe]
            assert _scan_outcome(crowd, probe, scan_day) == alone

    def test_loss_outcome_varies_by_day_and_apex(self):
        """The fork labels actually matter: outcomes differ across days."""
        probe = "probe-domain.com"
        outcomes = {
            _scan_outcome([probe], probe, day(2022, 8, 1) + offset)
            for offset in range(40)
        }
        assert outcomes == {True, False}  # loss_rate=0.5: both must occur

    def test_scan_draws_do_not_consume_lifecycle_stream(self):
        """Scanning must leave the shared lifecycle stream untouched."""
        config = dataclasses.replace(
            WorldConfig(seed=777), dns_scan_loss_rate=0.5
        )
        simulator = WorldSimulator(config)
        simulator._current_obs = {
            f"filler-{i}.org": _observation(f"filler-{i}.org") for i in range(25)
        }
        state_before = simulator._rng_life._rng.getstate()
        simulator._scan_observations(day(2022, 9, 15))
        assert simulator._rng_life._rng.getstate() == state_before

    def test_zero_loss_rate_returns_full_zone(self):
        config = dataclasses.replace(
            WorldConfig(seed=777), dns_scan_loss_rate=0.0
        )
        simulator = WorldSimulator(config)
        simulator._current_obs = {"a.com": _observation("a.com")}
        assert simulator._scan_observations(day(2022, 9, 1)) == simulator._current_obs


class _UnprunedSimulator(WorldSimulator):
    """The pre-window behaviour: never collapse issuance buckets."""

    def _prune_issuance_window(self, current):
        pass


class TestIssuanceRecencyWindow:
    def test_pruned_world_identical_to_unpruned(self):
        """The window is pure bookkeeping: worlds must match event-for-event."""
        config = WorldConfig(seed=9091).scaled(0.02)
        pruned = WorldSimulator(config).run()
        unpruned = _UnprunedSimulator(config).run()
        assert pruned.dataset_summary() == unpruned.dataset_summary()
        assert len(pruned.ground_truth) == len(unpruned.ground_truth)
        fingerprints = lambda world: [
            certificate.dedup_fingerprint()
            for certificate in world.corpus.certificates()
        ]
        assert fingerprints(pruned) == fingerprints(unpruned)
        revocations = lambda world: sorted(
            (entry.serial, entry.revocation_day, entry.reason.name)
            for crl in world.crls
            for entry in crl.entries
        )
        assert revocations(pruned) == revocations(unpruned)

    def test_window_actually_prunes(self):
        """At full decade length the early buckets must have collapsed."""
        world = simulate_world(WorldConfig(seed=9091).scaled(0.02))
        # run() keeps no simulator handle; re-run a short probe instead.
        simulator = WorldSimulator(WorldConfig(seed=9091).scaled(0.02))
        simulator.run()
        assert simulator._issued_counts, "decade-long run should prune buckets"
        if simulator._issued_by_day:
            oldest_kept = min(simulator._issued_by_day)
            newest_pruned = max(simulator._issued_counts)
            assert newest_pruned < oldest_kept
        assert world.total_certificates_issued > 0


class TestScaledInvariance:
    def test_per_domain_event_rates_scale_invariant(self):
        """scaled() multiplies population and world-total event rates
        together, so the per-domain ratio is constant — not double-scaled."""
        base = WorldConfig()
        probe_days = [day(2016, 1, 1), day(2019, 6, 1), day(2022, 7, 1)]
        for factor in (0.05, 1.0, 7.0, 100.0):
            scaled = base.scaled(factor)
            for probe in probe_days:
                assert scaled.registration_rate(probe) == (
                    base.registration_rate(probe) * factor
                )
                ratio = lambda cfg: (
                    cfg.key_compromise_rate(probe) / cfg.registration_rate(probe),
                    cfg.other_revocation_rate(probe) / cfg.registration_rate(probe),
                )
                base_kc, base_other = ratio(base)
                scaled_kc, scaled_other = ratio(scaled)
                assert abs(scaled_kc - base_kc) < 1e-12
                assert abs(scaled_other - base_other) < 1e-12

    def test_scaled_composes_multiplicatively(self):
        composed = WorldConfig().scaled(4.0).scaled(2.5)
        direct = WorldConfig().scaled(10.0)
        assert composed.registration_rate_schedule == direct.registration_rate_schedule
        assert abs(composed.event_rate_factor - direct.event_rate_factor) < 1e-12
