"""Tests for the key-compromise (CRL x CT) detection pipeline (§4.1)."""

import pytest

from repro.core.detectors.key_compromise import (
    KeyCompromiseDetector,
    monthly_key_compromise_by_issuer,
)
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.revocation.reasons import RevocationReason
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2022, 1, 1)
CUTOFF = day(2021, 10, 1)


def crl_with(entries, akid="akid-kc", update=T0 + 30):
    crl = CertificateRevocationList(
        issuer_name="KC CA",
        authority_key_id=akid,
        this_update=update,
        next_update=update + 7,
        crl_number=1,
    )
    for entry in entries:
        crl.add(entry)
    return crl


@pytest.fixture()
def corpus():
    corpus = CertificateCorpus()
    corpus.ingest(
        [
            make_cert(sans=("kc.com",), serial=1, authority_key_id="akid-kc",
                      not_before=T0, lifetime=365, issuer="KC CA"),
            make_cert(sans=("other.com",), serial=2, authority_key_id="akid-kc",
                      not_before=T0, lifetime=365, issuer="KC CA"),
        ]
    )
    return corpus


class TestDetection:
    def test_key_compromise_yields_both_classes(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        crl = crl_with([CrlEntry(1, T0 + 30, RevocationReason.KEY_COMPROMISE)])
        findings = detector.detect([crl])
        assert len(findings.of_class(StalenessClass.REVOKED_ALL)) == 1
        kc = findings.of_class(StalenessClass.KEY_COMPROMISE)
        assert len(kc) == 1
        assert kc[0].staleness_days == 335
        assert kc[0].invalidation_day == T0 + 30

    def test_other_reasons_only_revoked_all(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        crl = crl_with([CrlEntry(2, T0 + 30, RevocationReason.SUPERSEDED)])
        findings = detector.detect([crl])
        assert len(findings.of_class(StalenessClass.REVOKED_ALL)) == 1
        assert findings.of_class(StalenessClass.KEY_COMPROMISE) == []

    def test_unmatched_revocations_counted(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        crl = crl_with([CrlEntry(999, T0 + 30)])  # serial not in CT
        findings = detector.detect([crl])
        assert len(findings) == 0
        assert detector.stats.unmatched == 1

    def test_wrong_issuer_key_not_matched(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        crl = crl_with([CrlEntry(1, T0 + 30)], akid="akid-other")
        findings = detector.detect([crl])
        assert len(findings) == 0


class TestFilters:
    def test_revoked_before_valid_filtered(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        crl = crl_with([CrlEntry(1, T0 - 10)])
        findings = detector.detect([crl])
        assert len(findings) == 0
        assert detector.stats.filtered_revoked_before_valid == 1

    def test_revoked_after_expiration_filtered(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        crl = crl_with([CrlEntry(1, T0 + 400)])
        findings = detector.detect([crl])
        assert len(findings) == 0
        assert detector.stats.filtered_revoked_after_expiration == 1

    def test_pre_cutoff_filtered(self):
        corpus = CertificateCorpus()
        old = make_cert(sans=("old.com",), serial=3, authority_key_id="akid-kc",
                        not_before=day(2021, 6, 1), lifetime=365, issuer="KC CA")
        corpus.ingest([old])
        detector = KeyCompromiseDetector(corpus, revocation_cutoff_day=CUTOFF)
        crl = crl_with([CrlEntry(3, day(2021, 8, 1))])
        findings = detector.detect([crl])
        assert len(findings) == 0
        assert detector.stats.filtered_before_cutoff == 1

    def test_filters_can_be_disabled(self, corpus):
        detector = KeyCompromiseDetector(corpus, revocation_cutoff_day=CUTOFF)
        crl = crl_with([CrlEntry(1, T0 - 10)])
        findings = detector.detect([crl], apply_filters=False)
        # Invalidation day clamped into validity so staleness stays defined.
        assert len(findings.of_class(StalenessClass.REVOKED_ALL)) == 1
        assert findings.of_class(StalenessClass.REVOKED_ALL)[0].invalidation_day == T0

    def test_duplicate_crl_days_merge(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        entry = CrlEntry(1, T0 + 30, RevocationReason.KEY_COMPROMISE)
        crls = [crl_with([entry], update=T0 + 30 + i) for i in range(5)]
        findings = detector.detect(crls)
        assert len(findings.of_class(StalenessClass.KEY_COMPROMISE)) == 1


class TestMonthlySeries:
    def test_monthly_by_issuer(self, corpus):
        detector = KeyCompromiseDetector(corpus)
        crl = crl_with(
            [
                CrlEntry(1, T0 + 10, RevocationReason.KEY_COMPROMISE),
                CrlEntry(2, T0 + 45, RevocationReason.KEY_COMPROMISE),
            ]
        )
        findings = detector.detect([crl])
        series = monthly_key_compromise_by_issuer(findings)
        assert series[("2022-01", "KC CA")] == 1
        assert series[("2022-02", "KC CA")] == 1
