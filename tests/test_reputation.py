"""Tests for the VT-like store, AVClass2-style tagging, and aliases."""

import pytest

from repro.reputation.avclass import extract_family, tokenize_label
from repro.reputation.malpedia import resolve_alias
from repro.reputation.virustotal import (
    VENDOR_THRESHOLD,
    FileReport,
    UrlVerdict,
    VirusTotalStore,
    build_store_from_ownership,
)
from repro.util.dates import day
from repro.util.rng import RngStream

T0 = day(2019, 1, 1)


def verdicts(domain, count, category="phishing", flagged_on=T0):
    return [
        UrlVerdict(domain, f"http://{domain}/x", f"vendor-{i:02d}", category, flagged_on)
        for i in range(count)
    ]


class TestVirusTotalStore:
    def test_url_threshold_enforced(self):
        store = VirusTotalStore()
        for verdict in verdicts("under.com", VENDOR_THRESHOLD - 1):
            store.add_url_verdict(verdict)
        for verdict in verdicts("over.com", VENDOR_THRESHOLD):
            store.add_url_verdict(verdict)
        assert store.flagged_url_categories("under.com") == {}
        assert store.flagged_url_categories("over.com") == {"phishing": VENDOR_THRESHOLD}
        assert not store.is_detected("under.com")
        assert store.is_detected("over.com")

    def test_same_vendor_counted_once(self):
        store = VirusTotalStore()
        for _ in range(10):
            store.add_url_verdict(
                UrlVerdict("dup.com", "http://dup.com/x", "vendor-01", "phishing", T0)
            )
        assert store.flagged_url_categories("dup.com") == {}

    def test_file_threshold(self):
        store = VirusTotalStore()
        store.add_file_report(
            FileReport("mal.com", "f" * 64, ("Trojan.Emotet.Gen",), 7, T0, "downloader")
        )
        store.add_file_report(
            FileReport("weak.com", "e" * 64, ("Trojan.Emotet.Gen",), 2, T0, "downloader")
        )
        assert len(store.detected_files("mal.com")) == 1
        assert store.detected_files("weak.com") == []

    def test_first_malicious_day_min_of_files_and_urls(self):
        store = VirusTotalStore()
        store.add_file_report(
            FileReport("both.com", "a" * 64, ("W32/virut.A",), 9, T0 + 50, "virus")
        )
        for verdict in verdicts("both.com", VENDOR_THRESHOLD, flagged_on=T0 + 10):
            store.add_url_verdict(verdict)
        assert store.first_malicious_day("both.com") == T0 + 10

    def test_first_malicious_day_none_without_detections(self):
        assert VirusTotalStore().first_malicious_day("clean.com") is None


class TestBuildFromOwnership:
    def test_synthesis_respects_ownership_windows(self):
        ownership = [("evil.com", "registrant-9", T0, T0 + 300)]
        store = build_store_from_ownership(
            ownership, RngStream(3, "vt"), url_activity_probability=1.0,
            file_activity_probability=1.0,
        )
        first = store.first_malicious_day("evil.com")
        assert first is None or T0 <= first <= T0 + 300
        assert store.url_verdicts("evil.com")
        assert store.file_reports("evil.com")

    def test_deterministic(self):
        ownership = [("evil.com", "r", T0, T0 + 100), ("bad.net", "r2", T0, T0 + 50)]
        a = build_store_from_ownership(ownership, RngStream(3, "vt"))
        b = build_store_from_ownership(ownership, RngStream(3, "vt"))
        assert a.domains() == b.domains()


class TestAvclass:
    def test_tokenize(self):
        assert tokenize_label("Trojan.Emotet.Gen!x") == ["trojan", "emotet", "gen", "x"]

    def test_extract_family_majority(self):
        labels = ("Trojan.Emotet.Gen", "W32/emotet.A", "Mal/Geodo-B")
        assert extract_family(labels) == "emotet"  # geodo aliases to emotet

    def test_generic_labels_yield_none(self):
        assert extract_family(("Trojan.Generic.Gen", "Mal/Agent-B")) is None

    def test_alias_resolution(self):
        assert resolve_alias("Bladabindi") == "njrat"
        assert resolve_alias("xloader") == "formbook"
        assert resolve_alias("unknownfam") == "unknownfam"
