"""Unit tests for the incremental detector wrappers.

Each class is exercised directly (no engine) to pin down the streaming
semantics: retroactive joins, mid-stream revisions, pending-state
resolution, and checkpoint round-trips. Whole-world equivalence against the
batch detectors lives in test_stream_equivalence.py.
"""

import pytest

from repro.core.stale import StalenessClass
from repro.dns.records import RecordType
from repro.dns.snapshots import DailySnapshot
from repro.revocation.crl import CrlEntry
from repro.revocation.reasons import RevocationReason
from repro.stream import (
    IncrementalKeyCompromiseDetector,
    IncrementalManagedTlsDetector,
    IncrementalRegistrantChangeDetector,
)
from repro.stream.events import CrlDeltaPublished, DnsSnapshotTaken, WhoisCreationObserved
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2021, 1, 1)
CF_NS = ("ada.ns.cloudflare.com", "bob.ns.cloudflare.com")


def crl_delta(entries, akid="akid-test", on_day=None):
    return CrlDeltaPublished(
        day=on_day if on_day is not None else T0,
        issuer_name="CA",
        authority_key_id=akid,
        entries=tuple(entries),
    )


def whois(domain, creation_day):
    return WhoisCreationObserved(day=creation_day, domain=domain, creation_day=creation_day)


def snapshot_event(scan_day, observations):
    snapshot = DailySnapshot(scan_day)
    for apex, by_type in observations.items():
        for rtype, values in by_type.items():
            snapshot.observe(apex, rtype, values)
    return DnsSnapshotTaken(day=scan_day, snapshot=snapshot)


def managed_cert(domain="cust.com", serial=301, not_before=day(2020, 6, 1), lifetime=730):
    return make_cert(
        sans=(f"sni{serial}.cloudflaressl.com", domain, f"*.{domain}"),
        serial=serial,
        not_before=not_before,
        lifetime=lifetime,
        issuer="CloudFlare ECC CA-2",
    )


class TestIncrementalKeyCompromise:
    def test_cert_then_revocation_emits_both_classes(self):
        detector = IncrementalKeyCompromiseDetector()
        cert = make_cert(sans=("kc.com",), serial=1, not_before=T0)
        assert detector.register_certificate(cert) == []
        emitted = detector.handle_crl_delta(
            crl_delta([CrlEntry(1, T0 + 30, RevocationReason.KEY_COMPROMISE)])
        )
        assert sorted(f.staleness_class.value for f in emitted) == [
            "key_compromise", "revoked_all",
        ]
        assert all(f.invalidation_day == T0 + 30 for f in emitted)

    def test_revocation_before_cert_joins_retroactively(self):
        detector = IncrementalKeyCompromiseDetector()
        emitted = detector.handle_crl_delta(
            crl_delta([CrlEntry(1, T0 + 30, RevocationReason.SUPERSEDED)])
        )
        assert emitted == []
        assert len(detector.pending_revocations()) == 1
        cert = make_cert(sans=("kc.com",), serial=1, not_before=T0)
        emitted = detector.register_certificate(cert)
        assert [f.staleness_class for f in emitted] == [StalenessClass.REVOKED_ALL]
        assert detector.pending_revocations() == {}

    def test_earlier_republication_revises_finding(self):
        detector = IncrementalKeyCompromiseDetector()
        cert = make_cert(sans=("kc.com",), serial=1, not_before=T0)
        detector.register_certificate(cert)
        detector.handle_crl_delta(crl_delta([CrlEntry(1, T0 + 60)]))
        revised = detector.handle_crl_delta(crl_delta([CrlEntry(1, T0 + 20)]))
        assert [f.invalidation_day for f in revised] == [T0 + 20]
        # Converged view holds only the revised finding.
        assert [f.invalidation_day for f in detector.findings()] == [T0 + 20]

    def test_later_republication_ignored(self):
        detector = IncrementalKeyCompromiseDetector()
        cert = make_cert(sans=("kc.com",), serial=1, not_before=T0)
        detector.register_certificate(cert)
        detector.handle_crl_delta(crl_delta([CrlEntry(1, T0 + 20)]))
        assert detector.handle_crl_delta(crl_delta([CrlEntry(1, T0 + 60)])) == []

    def test_filters_and_stats_match_batch_semantics(self):
        cutoff = T0 + 10
        detector = IncrementalKeyCompromiseDetector(revocation_cutoff_day=cutoff)
        ok = make_cert(sans=("ok.com",), serial=1, not_before=T0, lifetime=100)
        early = make_cert(sans=("early.com",), serial=2, not_before=T0 + 50)
        expired = make_cert(sans=("expired.com",), serial=3, not_before=T0, lifetime=30)
        for cert in (ok, early, expired):
            detector.register_certificate(cert)
        detector.handle_crl_delta(
            crl_delta(
                [
                    CrlEntry(1, T0 + 20),   # survives
                    CrlEntry(2, T0 + 20),   # revoked before notBefore
                    CrlEntry(3, T0 + 60),   # revoked after notAfter
                    CrlEntry(99, T0 + 20),  # no certificate in CT
                ]
            )
        )
        stats = detector.stats
        assert stats.crl_entries_merged == 4
        assert stats.matched_in_ct == 3
        assert stats.unmatched == 1
        assert stats.filtered_revoked_before_valid == 1
        assert stats.filtered_revoked_after_expiration == 1
        assert stats.survivors == 1
        assert len(detector.findings()) == 1

    def test_checkpoint_roundtrip_rebuilds_findings(self):
        detector = IncrementalKeyCompromiseDetector()
        cert = make_cert(sans=("kc.com",), serial=1, not_before=T0)
        detector.register_certificate(cert)
        detector.handle_crl_delta(
            crl_delta([CrlEntry(1, T0 + 30, RevocationReason.KEY_COMPROMISE)])
        )
        state = detector.checkpoint_state()

        restored = IncrementalKeyCompromiseDetector()
        restored.restore_state(state)
        assert restored.findings() == []  # certs not re-ingested yet
        restored.register_certificate(cert)
        assert {f.staleness_class for f in restored.findings()} == {
            StalenessClass.REVOKED_ALL, StalenessClass.KEY_COMPROMISE,
        }


class TestIncrementalRegistrantChange:
    def test_second_creation_date_emits(self):
        detector = IncrementalRegistrantChangeDetector()
        cert = make_cert(sans=("re.com",), not_before=T0, lifetime=365)
        detector.register_certificate(cert)
        assert detector.handle_whois(whois("re.com", T0 - 100)) == []
        emitted = detector.handle_whois(whois("re.com", T0 + 50))
        assert len(emitted) == 1
        finding = emitted[0]
        assert finding.staleness_class is StalenessClass.REGISTRANT_CHANGE
        assert finding.invalidation_day == T0 + 50
        assert finding.detail == f"re_registered_after={T0 - 100}"

    def test_duplicate_crawl_observation_ignored(self):
        detector = IncrementalRegistrantChangeDetector()
        detector.register_certificate(make_cert(sans=("re.com",), not_before=T0))
        detector.handle_whois(whois("re.com", T0 - 100))
        detector.handle_whois(whois("re.com", T0 + 50))
        assert detector.handle_whois(whois("re.com", T0 + 50)) == []
        assert len(detector.findings()) == 1

    def test_tld_filter(self):
        detector = IncrementalRegistrantChangeDetector(tlds=("com",))
        detector.register_certificate(make_cert(sans=("re.org",), not_before=T0))
        detector.handle_whois(whois("re.org", T0 - 100))
        assert detector.handle_whois(whois("re.org", T0 + 50)) == []

    def test_cert_must_strictly_span_creation_day(self):
        detector = IncrementalRegistrantChangeDetector()
        cert = make_cert(sans=("re.com",), not_before=T0, lifetime=50)
        detector.register_certificate(cert)
        detector.handle_whois(whois("re.com", T0 - 100))
        # creation exactly at notAfter: not strictly inside.
        assert detector.handle_whois(whois("re.com", T0 + 50)) == []

    def test_out_of_order_arrival_revises_detail(self):
        detector = IncrementalRegistrantChangeDetector()
        cert = make_cert(sans=("re.com",), not_before=T0 - 400, lifetime=800)
        detector.register_certificate(cert)
        detector.handle_whois(whois("re.com", T0 - 300))
        detector.handle_whois(whois("re.com", T0 + 50))
        # A late crawl surfaces a middle date: the T0+50 pair's previous day
        # changes, and a new re-registration at T0-100 appears.
        emitted = detector.handle_whois(whois("re.com", T0 - 100))
        days = sorted((f.invalidation_day, f.detail) for f in detector.findings())
        assert days == [
            (T0 - 100, f"re_registered_after={T0 - 300}"),
            (T0 + 50, f"re_registered_after={T0 - 100}"),
        ]
        assert len(emitted) == 2  # revision + new event

    def test_checkpoint_roundtrip(self):
        detector = IncrementalRegistrantChangeDetector()
        cert = make_cert(sans=("re.com",), not_before=T0)
        detector.register_certificate(cert)
        detector.handle_whois(whois("re.com", T0 - 100))
        detector.handle_whois(whois("re.com", T0 + 50))
        state = detector.checkpoint_state()

        restored = IncrementalRegistrantChangeDetector()
        restored.restore_state(state)
        restored.register_certificate(cert)
        restored.rebuild_findings()
        assert [f.invalidation_day for f in restored.findings()] == [T0 + 50]


class TestIncrementalManagedTls:
    def test_delegation_loss_emits_departure(self):
        detector = IncrementalManagedTlsDetector()
        cert = managed_cert("cust.com")
        detector.register_certificate(cert)
        detector.handle_snapshot(snapshot_event(T0, {"cust.com": {RecordType.NS: CF_NS}}))
        emitted = detector.handle_snapshot(
            snapshot_event(T0 + 1, {"cust.com": {RecordType.NS: ("ns1.other.net",)}})
        )
        assert len(emitted) == 1  # apex and wildcard share the FQDN "cust.com"
        finding = emitted[0]
        assert finding.affected_domain == "cust.com"
        assert finding.invalidation_day == T0 + 1
        assert finding.staleness_class is StalenessClass.MANAGED_TLS_DEPARTURE
        assert finding.detail == "left=ada.ns.cloudflare.com,bob.ns.cloudflare.com"

    def test_shuffle_within_cloudflare_not_departure(self):
        detector = IncrementalManagedTlsDetector()
        detector.register_certificate(managed_cert("cust.com"))
        detector.handle_snapshot(snapshot_event(T0, {"cust.com": {RecordType.NS: CF_NS}}))
        emitted = detector.handle_snapshot(
            snapshot_event(
                T0 + 1,
                {"cust.com": {RecordType.NS: ("carol.ns.cloudflare.com",)}},
            )
        )
        assert emitted == []

    def test_disappearance_confirmed_by_reobservation_elsewhere(self):
        detector = IncrementalManagedTlsDetector()
        detector.register_certificate(managed_cert("cust.com"))
        detector.handle_snapshot(snapshot_event(T0, {"cust.com": {RecordType.NS: CF_NS}}))
        assert detector.handle_snapshot(snapshot_event(T0 + 1, {})) == []
        assert detector.pending_departures() == 1
        emitted = detector.handle_snapshot(
            snapshot_event(T0 + 2, {"cust.com": {RecordType.NS: ("ns1.other.net",)}})
        )
        assert emitted  # confirmed: departed on the disappearance day
        assert all(f.invalidation_day == T0 + 1 for f in emitted)
        assert detector.pending_departures() == 0

    def test_disappearance_reappearing_on_cloudflare_is_scan_loss(self):
        detector = IncrementalManagedTlsDetector()
        detector.register_certificate(managed_cert("cust.com"))
        detector.handle_snapshot(snapshot_event(T0, {"cust.com": {RecordType.NS: CF_NS}}))
        detector.handle_snapshot(snapshot_event(T0 + 1, {}))
        emitted = detector.handle_snapshot(
            snapshot_event(T0 + 2, {"cust.com": {RecordType.NS: CF_NS}})
        )
        assert emitted == []
        assert detector.pending_departures() == 0
        assert detector.findings() == []

    def test_lookahead_exhaustion_confirms_departure(self):
        detector = IncrementalManagedTlsDetector()
        detector.register_certificate(managed_cert("cust.com"))
        detector.handle_snapshot(snapshot_event(T0, {"cust.com": {RecordType.NS: CF_NS}}))
        emitted = []
        for offset in range(1, 5):
            emitted.extend(detector.handle_snapshot(snapshot_event(T0 + offset, {})))
        assert emitted  # three unobserved scans exhaust the lookahead
        assert all(f.invalidation_day == T0 + 1 for f in emitted)

    def test_finalize_flushes_pendings(self):
        detector = IncrementalManagedTlsDetector()
        detector.register_certificate(managed_cert("cust.com"))
        detector.handle_snapshot(snapshot_event(T0, {"cust.com": {RecordType.NS: CF_NS}}))
        detector.handle_snapshot(snapshot_event(T0 + 1, {}))
        assert detector.pending_departures() == 1
        emitted = detector.finalize()
        assert emitted
        assert detector.pending_departures() == 0

    def test_expired_cert_not_joined(self):
        detector = IncrementalManagedTlsDetector()
        detector.register_certificate(
            managed_cert("cust.com", not_before=T0 - 400, lifetime=100)
        )
        detector.handle_snapshot(snapshot_event(T0, {"cust.com": {RecordType.NS: CF_NS}}))
        emitted = detector.handle_snapshot(
            snapshot_event(T0 + 1, {"cust.com": {RecordType.NS: ("ns1.other.net",)}})
        )
        assert emitted == []

    def test_checkpoint_roundtrip_preserves_pendings_and_findings(self):
        detector = IncrementalManagedTlsDetector()
        cert = managed_cert("gone.com")
        still_cert = managed_cert("still.com", serial=302)
        detector.register_certificate(cert)
        detector.register_certificate(still_cert)
        detector.handle_snapshot(
            snapshot_event(
                T0,
                {
                    "gone.com": {RecordType.NS: CF_NS},
                    "still.com": {RecordType.NS: CF_NS},
                },
            )
        )
        detector.handle_snapshot(
            snapshot_event(
                T0 + 1,
                {
                    "gone.com": {RecordType.NS: ("ns1.other.net",)},
                    # still.com unobserved: becomes a pending disappearance
                },
            )
        )
        assert detector.pending_departures() == 1
        state = detector.checkpoint_state()

        by_fingerprint = {c.dedup_fingerprint(): c for c in (cert, still_cert)}
        restored = IncrementalManagedTlsDetector()
        restored.restore_state(state, by_fingerprint.__getitem__)
        # The engine re-ingests the CT prefix after restore; mirror that.
        restored.register_certificate(cert)
        restored.register_certificate(still_cert)
        assert restored.pending_departures() == 1
        assert sorted(f.affected_domain for f in restored.findings()) == sorted(
            f.affected_domain for f in detector.findings()
        )
        # The restored pending resolves identically.
        assert restored.finalize()
