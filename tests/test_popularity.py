"""Tests for top-list samples and min-rank lookups."""

import pytest

from repro.popularity.alexa import (
    BIANNUAL_SAMPLE_DAYS,
    PopularityProvider,
    rank_buckets,
)
from repro.util.dates import day


class TestSampleDays:
    def test_biannual_2014_to_2022(self):
        assert len(BIANNUAL_SAMPLE_DAYS) == 18  # 9 years x 2
        assert BIANNUAL_SAMPLE_DAYS[0] == day(2014, 1, 15)
        assert BIANNUAL_SAMPLE_DAYS[-1] == day(2022, 7, 15)


class TestProvider:
    def test_rank_jitter_bounded(self):
        provider = PopularityProvider({"a.com": 1000}, churn=0.35)
        for sample_day in BIANNUAL_SAMPLE_DAYS:
            rank = provider.sample(sample_day).rank_of("a.com")
            assert 1 <= rank <= 1_000_000
            assert 500 <= rank <= 1500

    def test_alive_window_filters_samples(self):
        alive = {"a.com": (day(2018, 1, 1), day(2019, 12, 31))}
        provider = PopularityProvider({"a.com": 500}, alive_on=alive)
        assert provider.sample(day(2017, 7, 15)).rank_of("a.com") is None
        assert provider.sample(day(2018, 7, 15)).rank_of("a.com") is not None
        assert provider.sample(day(2021, 1, 15)).rank_of("a.com") is None

    def test_min_rank_across_samples(self):
        provider = PopularityProvider({"a.com": 10_000})
        min_rank = provider.min_rank("a.com")
        per_sample = [
            provider.sample(d).rank_of("a.com") for d in BIANNUAL_SAMPLE_DAYS
        ]
        assert min_rank == min(per_sample)

    def test_min_rank_unknown_domain(self):
        assert PopularityProvider({}).min_rank("ghost.com") is None

    def test_samples_cached_and_deterministic(self):
        provider = PopularityProvider({"a.com": 100})
        d = BIANNUAL_SAMPLE_DAYS[0]
        assert provider.sample(d) is provider.sample(d)
        other = PopularityProvider({"a.com": 100})
        assert other.sample(d).rank_of("a.com") == provider.sample(d).rank_of("a.com")


class TestRankBuckets:
    def test_cumulative_buckets(self):
        counts = rank_buckets([500, 5_000, 50_000, 500_000, None])
        assert counts == {1_000: 1, 10_000: 2, 100_000: 3, 1_000_000: 4}

    def test_boundary_inclusive(self):
        counts = rank_buckets([1_000])
        assert counts[1_000] == 1

    def test_empty(self):
        assert rank_buckets([]) == {1_000: 0, 10_000: 0, 100_000: 0, 1_000_000: 0}
