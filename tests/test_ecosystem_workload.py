"""Tests for the world configuration schedules and scaling."""

import pytest

from repro.ecosystem.entities import HostingMode
from repro.ecosystem.workload import WorldConfig
from repro.util.dates import day


class TestSchedules:
    def test_registration_rate_steps(self):
        config = WorldConfig()
        assert config.registration_rate(day(2014, 1, 1)) == 2.0
        assert config.registration_rate(day(2019, 1, 1)) == 6.0
        assert config.registration_rate(day(2012, 1, 1)) == 0.0  # pre-schedule

    def test_tls_adoption_grows(self):
        config = WorldConfig()
        assert (
            config.tls_adoption(day(2013, 6, 1))
            < config.tls_adoption(day(2017, 1, 1))
            < config.tls_adoption(day(2021, 1, 1))
        )

    def test_key_compromise_rate_rises(self):
        config = WorldConfig()
        assert config.key_compromise_rate(day(2023, 2, 1)) > config.key_compromise_rate(
            day(2020, 1, 1)
        )

    def test_hosting_mix_evolves_toward_automation(self):
        config = WorldConfig()
        early = config.hosting_mix(day(2014, 1, 1))
        late = config.hosting_mix(day(2020, 1, 1))
        assert HostingMode.SELF_ACME not in early
        assert late[HostingMode.SELF_ACME] > late[HostingMode.SELF_MANUAL]

    def test_managed_modes_flag(self):
        assert HostingMode.CLOUDFLARE_MANAGED.is_managed_tls
        assert HostingMode.HOSTING_PLATFORM.is_managed_tls
        assert not HostingMode.SELF_ACME.is_managed_tls
        assert not HostingMode.SELF_MANUAL.is_managed_tls


class TestScaling:
    def test_scaled_multiplies_registrations(self):
        base = WorldConfig()
        half = base.scaled(0.5)
        d = day(2019, 1, 1)
        assert half.registration_rate(d) == pytest.approx(0.5 * base.registration_rate(d))

    def test_scaled_multiplies_event_rates(self):
        base = WorldConfig()
        half = base.scaled(0.5)
        d = day(2023, 1, 1)
        assert half.key_compromise_rate(d) == pytest.approx(
            0.5 * base.key_compromise_rate(d)
        )
        assert half.other_revocation_rate(d) == pytest.approx(
            0.5 * base.other_revocation_rate(d)
        )

    def test_scaled_composes(self):
        quarter = WorldConfig().scaled(0.5).scaled(0.5)
        d = day(2019, 1, 1)
        assert quarter.registration_rate(d) == pytest.approx(
            0.25 * WorldConfig().registration_rate(d)
        )
        assert quarter.event_rate_factor == pytest.approx(0.25)

    def test_scaled_preserves_other_fields(self):
        scaled = WorldConfig(seed=5).scaled(0.1)
        assert scaled.seed == 5
        assert scaled.renew_probability == WorldConfig().renew_probability

    def test_config_frozen(self):
        with pytest.raises(Exception):
            WorldConfig().seed = 1
