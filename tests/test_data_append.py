"""Byte-identity of the append-oriented writers vs the batch writers.

The streaming generator's whole correctness story rests on
``AppendSegmentWriter`` emitting exactly the bytes ``SegmentWriter``
would, and ``ExternalSorter`` reproducing ``sorted()``. These tests
compare raw file bytes, including the spill paths.
"""

import os

import pytest

from repro.data.append import AppendSegmentWriter, ExternalSorter
from repro.data.segment import Segment, SegmentWriter

ROWS = [
    (3, "alpha", {"NS": ["ns1.example", "ns2.example"]}),
    (-7, "beta", ["x", "y"]),
    (2**62, "", {}),
    (0, "Ωmega", None),
    (42, "alpha", [1, 2, 3]),
]
COLUMNS = (("num", "i64"), ("label", "str"), ("payload", "json"))


def _batch_bytes(rows, meta=None):
    writer = SegmentWriter("t", meta=meta)
    writer.add_i64("num", [row[0] for row in rows])
    writer.add_str("label", [row[1] for row in rows])
    writer.add_json("payload", [row[2] for row in rows])
    return writer.to_bytes(), writer._zonemap


def _append_bytes(tmp_path, rows, meta=None, spill_bytes=8 << 20):
    writer = AppendSegmentWriter("t", COLUMNS, meta=meta, spill_bytes=spill_bytes)
    for row in rows:
        writer.append_row(row)
    zonemap = writer.zonemap()
    path = os.path.join(str(tmp_path), "appended.seg")
    writer.write(path)
    with open(path, "rb") as handle:
        return handle.read(), zonemap


def test_append_writer_bytes_match_batch_writer(tmp_path):
    expected, expected_zonemap = _batch_bytes(ROWS, meta={"key_columns": ["num"]})
    actual, zonemap = _append_bytes(tmp_path, ROWS, meta={"key_columns": ["num"]})
    assert actual == expected
    assert zonemap == expected_zonemap


def test_append_writer_spill_path_is_byte_identical(tmp_path):
    rows = [(i, f"name-{i % 17}", {"k": [i, i + 1]}) for i in range(5000)]
    expected, _ = _batch_bytes(rows)
    actual, _ = _append_bytes(tmp_path, rows, spill_bytes=64)  # force spills
    assert actual == expected


def test_append_writer_empty_table_matches(tmp_path):
    expected, _ = _batch_bytes([])
    actual, zonemap = _append_bytes(tmp_path, [])
    assert actual == expected
    assert zonemap == {}


def test_append_writer_output_is_readable(tmp_path):
    path = os.path.join(str(tmp_path), "t.seg")
    writer = AppendSegmentWriter("t", COLUMNS)
    for row in ROWS:
        writer.append_row(row)
    assert writer.write(path) == len(ROWS)
    segment = Segment.open(path)
    assert segment.rows == len(ROWS)
    assert list(segment.column("num")) == [row[0] for row in ROWS]
    assert list(segment.column("label")) == [row[1] for row in ROWS]
    assert segment.column("payload")[1] == ["x", "y"]


def test_append_writer_rejects_bad_rows():
    writer = AppendSegmentWriter("t", COLUMNS)
    with pytest.raises(ValueError):
        writer.append_row((1, "only-two"))
    with pytest.raises(ValueError):
        writer.append_row((2**64, "x", None))
    writer.close()


def test_external_sorter_equals_sorted_across_spills():
    items = [((i * 7919) % 1000, f"k{i % 13}", i) for i in range(10000)]
    sorter = ExternalSorter(run_size=512)
    sorter.extend(items)
    assert len(sorter) == len(items)
    assert list(sorter.sorted_iter()) == sorted(items)


def test_external_sorter_small_stream_no_spill():
    sorter = ExternalSorter()
    for item in [(3, 0), (1, 1), (2, 2)]:
        sorter.add(item)
    assert list(sorter.sorted_iter()) == [(1, 1), (2, 2), (3, 0)]
