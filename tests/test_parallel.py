"""Sharded parallel engine: partition invariants and batch equivalence."""

from __future__ import annotations

import pytest

from repro import MeasurementPipeline, ParallelMeasurementPipeline
from repro.core.pipeline import DatasetBundle
from repro.dns.snapshots import SnapshotStore
from repro.parallel import (
    ProcessPoolShardExecutor,
    SerialExecutor,
    domain_key,
    partition_bundle,
)
from repro.stream.engine import canonical_findings


@pytest.fixture(scope="module")
def bundle(small_world):
    return small_world.to_bundle()


@pytest.fixture(scope="module")
def cutoff(small_world):
    return small_world.config.timeline.revocation_cutoff


@pytest.fixture(scope="module")
def batch_result(bundle, cutoff):
    return MeasurementPipeline(bundle, revocation_cutoff_day=cutoff).run()


@pytest.fixture(scope="module")
def plan(bundle):
    return partition_bundle(bundle, 4)


class TestPartitionInvariants:
    def test_rejects_zero_shards(self, bundle):
        with pytest.raises(ValueError):
            partition_bundle(bundle, 0)

    def test_every_certificate_in_exactly_one_shard_per_axis(self, bundle, plan):
        all_fingerprints = {
            certificate.dedup_fingerprint()
            for certificate in bundle.corpus.certificates()
        }
        for axis in ("revocation_certificates", "domain_certificates"):
            per_shard = [
                {c.dedup_fingerprint() for c in getattr(shard, axis)}
                for shard in plan.shards
            ]
            assert sum(len(s) for s in per_shard) == len(all_fingerprints), axis
            union = set()
            for shard_set in per_shard:
                assert not (union & shard_set), f"{axis}: fingerprint in two shards"
                union |= shard_set
            assert union == all_fingerprints, axis

    def test_revocation_keys_never_straddle_shards(self, plan):
        for shard in plan.shards:
            for certificate in shard.revocation_certificates:
                assert (
                    plan.revocation_assignment[certificate.authority_key_id]
                    == shard.index
                )
            for crl in shard.crls:
                assert plan.revocation_assignment[crl.authority_key_id] == shard.index

    def test_domain_keys_never_straddle_shards(self, plan):
        for shard in plan.shards:
            for certificate in shard.domain_certificates:
                for registrable in certificate.e2lds():
                    # Every join key of a certificate lives where the
                    # certificate lives: the RC/MT lookups cannot miss.
                    assert plan.domain_assignment[registrable] == shard.index
            for domain, _creation_day in shard.whois_creation_pairs:
                assert plan.domain_assignment[domain_key(domain)] == shard.index
            if shard.dns_snapshots is None:
                continue
            for scan_day in shard.dns_snapshots.days():
                snapshot = shard.dns_snapshots.get(scan_day)
                for apex in snapshot.apexes():
                    assert plan.domain_assignment[domain_key(apex)] == shard.index

    def test_inputs_are_fully_covered(self, bundle, plan):
        assert sum(len(s.crls) for s in plan.shards) == len(bundle.crls)
        assert sum(len(s.whois_creation_pairs) for s in plan.shards) == len(
            bundle.whois_creation_pairs
        )
        total_observations = sum(
            len(bundle.dns_snapshots.get(scan_day))
            for scan_day in bundle.dns_snapshots.days()
        )
        assert (
            sum(s.snapshot_observations() for s in plan.shards) == total_observations
        )

    def test_every_shard_sees_every_scan_day(self, bundle, plan):
        # The managed-TLS lookahead needs the full day grid even on shards
        # that own no apexes on a given day.
        expected_days = bundle.dns_snapshots.days()
        for shard in plan.shards:
            assert shard.dns_snapshots.days() == expected_days

    def test_single_shard_partition_is_the_whole_bundle(self, bundle):
        plan = partition_bundle(bundle, 1)
        shard = plan.shards[0]
        assert len(shard.revocation_certificates) == len(bundle.corpus)
        assert len(shard.domain_certificates) == len(bundle.corpus)
        assert len(shard.crls) == len(bundle.crls)
        assert len(shard.whois_creation_pairs) == len(bundle.whois_creation_pairs)

    def test_partition_is_deterministic(self, bundle, plan):
        again = partition_bundle(bundle, 4)
        assert again.domain_assignment == plan.domain_assignment
        assert again.revocation_assignment == plan.revocation_assignment
        for shard, shard_again in zip(plan.shards, again.shards):
            assert [c.dedup_fingerprint() for c in shard.domain_certificates] == [
                c.dedup_fingerprint() for c in shard_again.domain_certificates
            ]


class TestEquivalence:
    def test_serial_four_shards_match_batch(self, bundle, cutoff, batch_result):
        result = ParallelMeasurementPipeline(
            bundle, workers=1, num_shards=4, revocation_cutoff_day=cutoff
        ).run()
        assert canonical_findings(result.findings) == canonical_findings(
            batch_result.findings
        )
        assert result.revocation_stats == batch_result.revocation_stats
        assert result.windows == batch_result.windows

    def test_process_pool_four_workers_match_batch(self, bundle, cutoff, batch_result):
        result = ParallelMeasurementPipeline(
            bundle, workers=4, revocation_cutoff_day=cutoff
        ).run()
        assert canonical_findings(result.findings) == canonical_findings(
            batch_result.findings
        )
        assert result.revocation_stats == batch_result.revocation_stats
        assert result.shard_stats.executor == "process"

    def test_many_small_shards_match_batch(self, bundle, cutoff, batch_result):
        result = ParallelMeasurementPipeline(
            bundle,
            workers=1,
            num_shards=13,
            revocation_cutoff_day=cutoff,
            executor=SerialExecutor(),
        ).run()
        assert canonical_findings(result.findings) == canonical_findings(
            batch_result.findings
        )
        assert result.revocation_stats == batch_result.revocation_stats

    def test_merged_findings_order_is_deterministic(self, bundle, cutoff):
        first = ParallelMeasurementPipeline(
            bundle, workers=1, num_shards=4, revocation_cutoff_day=cutoff
        ).run()
        second = ParallelMeasurementPipeline(
            bundle, workers=1, num_shards=4, revocation_cutoff_day=cutoff
        ).run()
        assert [f.to_record() for f in first.findings.all_findings()] == [
            f.to_record() for f in second.findings.all_findings()
        ]

    def test_no_crls_means_no_revocation_stats(self, bundle, cutoff):
        reduced = DatasetBundle(
            corpus=bundle.corpus,
            crls=[],
            whois_creation_pairs=bundle.whois_creation_pairs,
            dns_snapshots=bundle.dns_snapshots,
            windows=bundle.windows,
        )
        batch = MeasurementPipeline(reduced, revocation_cutoff_day=cutoff).run()
        parallel = ParallelMeasurementPipeline(
            reduced, workers=1, num_shards=4, revocation_cutoff_day=cutoff
        ).run()
        assert parallel.revocation_stats is None
        assert batch.revocation_stats is None
        assert canonical_findings(parallel.findings) == canonical_findings(
            batch.findings
        )

    def test_single_snapshot_disables_managed_tls(self, bundle, cutoff):
        store = SnapshotStore()
        first_day = bundle.dns_snapshots.days()[0]
        store.put(bundle.dns_snapshots.get(first_day))
        reduced = DatasetBundle(
            corpus=bundle.corpus,
            crls=bundle.crls,
            whois_creation_pairs=[],
            dns_snapshots=store,
            windows=bundle.windows,
        )
        batch = MeasurementPipeline(reduced, revocation_cutoff_day=cutoff).run()
        parallel = ParallelMeasurementPipeline(
            reduced, workers=1, num_shards=3, revocation_cutoff_day=cutoff
        ).run()
        assert canonical_findings(parallel.findings) == canonical_findings(
            batch.findings
        )
        assert parallel.revocation_stats == batch.revocation_stats

    def test_shard_stats_account_for_the_run(self, bundle, cutoff):
        result = ParallelMeasurementPipeline(
            bundle, workers=1, num_shards=4, revocation_cutoff_day=cutoff
        ).run()
        stats = result.shard_stats
        assert stats is not None
        assert stats.num_shards == 4
        assert stats.executor == "serial"
        assert len(stats.shards) == 4
        assert stats.total_findings == len(result.findings)
        assert sum(s.revocation_certificates for s in stats.shards) == len(
            bundle.corpus
        )
        for shard in stats.shards:
            assert set(shard.detector_seconds) == {
                "key_compromise", "registrant_change", "managed_tls",
            }

    def test_invalid_worker_counts_rejected(self, bundle):
        with pytest.raises(ValueError):
            ParallelMeasurementPipeline(bundle, workers=0)
        with pytest.raises(ValueError):
            ProcessPoolShardExecutor(0)
