"""Equivalence suite for the streaming world generator.

The generator's contract has three legs:

1. **Path identity** — streaming rows through ``StreamingDatasetWriter``
   (append writers + external sorts) produces *byte-identical* bundle
   directories to materialising every row and writing through the batch
   ``SegmentWriter`` machinery.
2. **Shard invariance** — the emitted world is a pure function of the
   config: any shard count K, serial or multiprocess, yields the same
   bytes, and therefore the same detection findings.
3. **Bounded memory** — ``save --gen-shards`` keeps the parent's peak
   RSS flat as the world grows (gated in benchmarks/test_perf_gen.py at
   10x scale; here we assert the run.json plumbing end to end).
"""

from __future__ import annotations

import filecmp
import json
import os
import subprocess
import sys

import pytest

from repro.core.pipeline import MeasurementPipeline
from repro.data import check_equivalent
from repro.data.dataset import Dataset, open_bundle
from repro.ecosystem.streamgen import (
    GenContext,
    save_materialized,
    save_streamed,
    shard_ranges,
    stream_rows,
)
from repro.ecosystem.timeline import DEFAULT_TIMELINE
from repro.ecosystem.workload import WorldConfig

SEED_CONFIG = WorldConfig(seed=20231024).scaled(0.02)


def _assert_directories_byte_identical(reference: str, candidate: str) -> None:
    names = sorted(os.listdir(reference))
    assert sorted(os.listdir(candidate)) == names
    different = [
        name
        for name in names
        if not filecmp.cmp(
            os.path.join(reference, name), os.path.join(candidate, name),
            shallow=False,
        )
    ]
    assert different == []


@pytest.fixture(scope="module")
def reference_bundle(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("streamgen") / "reference")
    counts = save_materialized(SEED_CONFIG, directory)
    return directory, counts


class TestByteIdentity:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_streamed_matches_materialized(self, tmp_path, reference_bundle, shards):
        reference, reference_counts = reference_bundle
        directory = str(tmp_path / f"streamed-{shards}")
        counts = save_streamed(
            SEED_CONFIG, directory, shards=shards, use_processes=False
        )
        assert counts == reference_counts
        _assert_directories_byte_identical(reference, directory)

    def test_multiprocess_workers_match(self, tmp_path, reference_bundle):
        reference, _ = reference_bundle
        directory = str(tmp_path / "streamed-mp")
        save_streamed(SEED_CONFIG, directory, shards=3, use_processes=True)
        _assert_directories_byte_identical(reference, directory)

    def test_check_equivalent_passes(self, tmp_path, reference_bundle):
        reference, _ = reference_bundle
        directory = str(tmp_path / "streamed-eq")
        save_streamed(SEED_CONFIG, directory, shards=2, use_processes=False)
        assert check_equivalent(reference, directory) == []

    def test_bundle_opens_and_is_well_formed(self, reference_bundle):
        reference, counts = reference_bundle
        dataset = Dataset.open(reference)
        assert dataset.table("certs").rows == counts["certs"]
        assert dataset.table("dns").rows == counts["dns"]
        bundle = dataset.to_bundle()
        assert len(bundle.corpus) == counts["certs"]


class TestShardInvariance:
    def test_shard_ranges_partition_exactly(self):
        for total, shards in [(0, 1), (7, 3), (100, 8), (5, 5), (3, 7)]:
            ranges = shard_ranges(total, shards)
            assert len(ranges) == shards
            assert ranges[0][0] == 0 and ranges[-1][1] == total
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            sizes = [hi - lo for lo, hi in ranges]
            assert max(sizes) - min(sizes) <= 1

    def test_row_stream_is_shard_count_invariant(self):
        """Per-table row sequences are identical for every K (batch
        boundaries — and hence cross-table interleaving — may differ)."""
        streams = {}
        for shards in (1, 2, 5):
            ctx = GenContext(SEED_CONFIG)
            per_table = {}
            for table, rows in stream_rows(ctx, shards=shards):
                per_table.setdefault(table, []).extend(rows)
            streams[shards] = per_table
        assert streams[1] == streams[2] == streams[5]

    def test_findings_invariant_across_shard_counts(self, tmp_path):
        per_class = {}
        for shards in (1, 3):
            directory = str(tmp_path / f"world-{shards}")
            save_streamed(
                SEED_CONFIG, directory, shards=shards, use_processes=False
            )
            result = MeasurementPipeline(
                open_bundle(directory),
                revocation_cutoff_day=DEFAULT_TIMELINE.revocation_cutoff,
            ).run()
            per_class[shards] = sorted(
                (
                    finding.staleness_class.value,
                    finding.certificate.serial,
                    finding.invalidation_day,
                    finding.affected_domain,
                )
                for finding in result.findings.all_findings()
            )
            assert per_class[shards], "seed world should produce findings"
        assert per_class[1] == per_class[3]


class TestCliStreamedSave:
    def _run(self, tmp_path, *extra):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return subprocess.run(
            [sys.executable, "-m", "repro", "save", *extra],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
        )

    def test_save_gen_shards_writes_bundle_and_run_manifest(self, tmp_path):
        bundle_dir = str(tmp_path / "bundle")
        metrics = str(tmp_path / "out" / "metrics.prom")
        proc = self._run(
            tmp_path,
            "--scale", "0.01", "--gen-shards", "2",
            "--dir", bundle_dir, "--metrics-out", metrics,
        )
        assert proc.returncode == 0, proc.stderr
        assert Dataset.open(bundle_dir).table("certs").rows > 0
        with open(os.path.join(str(tmp_path), "out", "run.json")) as handle:
            manifest = json.load(handle)
        assert manifest["command"] == "save"
        assert manifest["peak_rss_bytes"] > 0
        # Two shard workers ran and were waited for.
        assert manifest["peak_rss_children_bytes"] > 0
        with open(metrics) as handle:
            metrics_text = handle.read()
        assert "repro_gen_shards 2" in metrics_text
        assert 'repro_gen_rows_total{table="certs"}' in metrics_text

    def test_save_gen_shards_rejects_legacy_layout(self, tmp_path):
        proc = self._run(
            tmp_path,
            "--scale", "0.01", "--gen-shards", "2",
            "--dir", str(tmp_path / "nope"), "--layout", "legacy",
        )
        assert proc.returncode == 2
        assert "columnar" in proc.stderr
