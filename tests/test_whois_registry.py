"""Tests for the registry database and registration lifecycle operations."""

import pytest

from repro.util.dates import day
from repro.whois.lifecycle import DomainState, LifecycleEventType, release_day
from repro.whois.registry import Registry

T0 = day(2019, 1, 10)


@pytest.fixture()
def registry():
    return Registry()


class TestRegister:
    def test_basic_registration(self, registry):
        reg = registry.register("foo.com", "alice", "Registrar A", T0)
        assert reg.creation_date == T0
        assert reg.expiration_date == T0 + 365
        assert registry.current("foo.com") is reg

    def test_double_registration_rejected(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        with pytest.raises(ValueError):
            registry.register("foo.com", "bob", "R", T0 + 10)

    def test_re_registration_after_delete(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.delete("foo.com", T0 + 100)
        reg2 = registry.register("foo.com", "bob", "R", T0 + 200)
        assert reg2.creation_date == T0 + 200
        assert len(registry.spans("foo.com")) == 2
        events = [e.event_type for e in registry.events()]
        assert LifecycleEventType.RE_REGISTERED in events

    def test_re_registration_before_delete_rejected(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.delete("foo.com", T0 + 100)
        with pytest.raises(ValueError):
            registry.register("foo.com", "bob", "R", T0 + 50)


class TestRenewTransferDelete:
    def test_renew_extends_from_expiration(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        reg = registry.renew("foo.com", T0 + 100)
        assert reg.expiration_date == T0 + 365 + 365

    def test_renew_in_grace_is_restore(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.renew("foo.com", T0 + 365 + 10)
        events = [e.event_type for e in registry.events()]
        assert LifecycleEventType.RESTORED in events

    def test_late_renewal_extends_from_original_expiry(self, registry):
        # Renewing during grace gains no free days.
        registry.register("foo.com", "alice", "R", T0)
        reg = registry.renew("foo.com", T0 + 365 + 10)
        assert reg.expiration_date == T0 + 365 + 365

    def test_renew_in_pending_delete_rejected(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        pending = T0 + 365 + 46 + 31  # past grace + redemption
        with pytest.raises(ValueError):
            registry.renew("foo.com", pending)

    def test_transfer_keeps_creation_date(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        reg = registry.transfer("foo.com", "bob", T0 + 50)
        assert reg.creation_date == T0  # the stealth change the paper misses
        assert reg.registrant_id == "bob"
        assert registry.registrant_on("foo.com", T0 + 10) == "alice"
        assert registry.registrant_on("foo.com", T0 + 60) == "bob"

    def test_delete_emits_event(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.delete("foo.com", T0 + 30)
        assert registry.current("foo.com") is None
        assert registry.events()[-1].event_type is LifecycleEventType.DELETED

    def test_expire_and_release_runs_full_timeline(self, registry):
        reg = registry.register("foo.com", "alice", "R", T0)
        released = registry.expire_and_release("foo.com")
        assert released == release_day(reg.expiration_date)

    def test_operations_on_unknown_domain(self, registry):
        with pytest.raises(KeyError):
            registry.renew("nope.com", T0)
        with pytest.raises(KeyError):
            registry.transfer("nope.com", "x", T0)


class TestQueries:
    def test_whois_reflects_state(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        record = registry.whois("foo.com", T0 + 10)
        assert record.creation_date == T0
        assert record.status is DomainState.ACTIVE

    def test_whois_grace_status(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        record = registry.whois("foo.com", T0 + 365 + 5)
        assert record.status is DomainState.AUTO_RENEW_GRACE

    def test_whois_before_creation_is_none(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        assert registry.whois("foo.com", T0 - 1) is None

    def test_whois_after_delete_is_none(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.delete("foo.com", T0 + 30)
        assert registry.whois("foo.com", T0 + 31) is None

    def test_whois_spans_reregistration(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.delete("foo.com", T0 + 100)
        registry.register("foo.com", "bob", "R", T0 + 200)
        assert registry.whois("foo.com", T0 + 50).creation_date == T0
        assert registry.whois("foo.com", T0 + 250).creation_date == T0 + 200

    def test_creation_pairs_cover_all_spans(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.delete("foo.com", T0 + 100)
        registry.register("foo.com", "bob", "R", T0 + 200)
        registry.register("bar.net", "carol", "R", T0)
        pairs = set(registry.creation_pairs())
        assert pairs == {("foo.com", T0), ("foo.com", T0 + 200), ("bar.net", T0)}

    def test_registrant_on_across_spans(self, registry):
        registry.register("foo.com", "alice", "R", T0)
        registry.delete("foo.com", T0 + 100)
        registry.register("foo.com", "bob", "R", T0 + 200)
        assert registry.registrant_on("foo.com", T0 + 150) is None
        assert registry.registrant_on("foo.com", T0 + 201) == "bob"
