"""Unit + property tests for intervals and the sweep join."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import names, use_registry
from repro.util.intervals import (
    Interval,
    intersect_intervals,
    interval_sweep_join,
    naive_join,
)


class TestInterval:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_degenerate_allowed(self):
        assert Interval(3, 3).length == 0

    def test_length_is_elapsed_days(self):
        assert Interval(10, 20).length == 10

    def test_contains_inclusive(self):
        iv = Interval(10, 20)
        assert iv.contains(10)
        assert iv.contains(20)
        assert not iv.contains(9)

    def test_contains_strict_excludes_endpoints(self):
        iv = Interval(10, 20)
        assert not iv.contains(10, strict=True)
        assert not iv.contains(20, strict=True)
        assert iv.contains(11, strict=True)

    def test_overlaps_shared_day(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))
        assert not Interval(1, 4).overlaps(Interval(5, 9))

    def test_intersection(self):
        assert Interval(1, 10).intersection(Interval(5, 20)) == Interval(5, 10)
        assert Interval(1, 4).intersection(Interval(5, 8)) is None

    def test_clamp_end(self):
        assert Interval(0, 100).clamp_end(50) == Interval(0, 50)
        assert Interval(0, 30).clamp_end(50) == Interval(0, 30)

    def test_intersect_many(self):
        assert intersect_intervals([Interval(0, 10), Interval(5, 20), Interval(7, 9)]) == Interval(7, 9)
        assert intersect_intervals([Interval(0, 3), Interval(5, 9)]) is None
        assert intersect_intervals([]) is None


def _run_join(join, intervals, points, strict):
    pairs = join(
        intervals,
        points,
        interval_of=lambda iv: iv,
        event_day=lambda p: p,
        strict=strict,
    )
    return sorted((p, (iv.start, iv.end)) for p, iv in pairs)


class TestSweepJoin:
    def test_strict_containment_basic(self):
        intervals = [Interval(0, 10), Interval(5, 15), Interval(20, 30)]
        points = [5, 10, 25]
        got = _run_join(interval_sweep_join, intervals, points, strict=True)
        assert (5, (0, 10)) in got
        assert (5, (5, 15)) not in got  # starts exactly at 5
        assert (10, (5, 15)) in got
        assert (10, (0, 10)) not in got  # ends exactly at 10
        assert (25, (20, 30)) in got

    def test_non_strict_includes_endpoints(self):
        intervals = [Interval(5, 15)]
        got = _run_join(interval_sweep_join, intervals, [5, 15], strict=False)
        assert got == [(5, (5, 15)), (15, (5, 15))]

    def test_empty_inputs(self):
        assert _run_join(interval_sweep_join, [], [1, 2], True) == []
        assert _run_join(interval_sweep_join, [Interval(0, 1)], [], True) == []

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 120), st.integers(0, 60)).map(
                lambda t: Interval(t[0], t[0] + t[1])
            ),
            max_size=25,
        ),
        st.lists(st.integers(-5, 130), max_size=25),
        st.booleans(),
    )
    def test_sweep_matches_naive(self, intervals, points, strict):
        """The O(n log n) sweep and the quadratic join agree everywhere."""
        assert _run_join(interval_sweep_join, intervals, points, strict) == _run_join(
            naive_join, intervals, points, strict
        )

    def test_sweep_matches_naive_on_endpoint_dense_data(self):
        """Many intervals ending exactly at event points, both strictness modes."""
        intervals = [Interval(start, 50) for start in range(0, 50, 2)]
        intervals += [Interval(10, end) for end in range(10, 60, 5)]
        points = [10, 50, 50, 55, 15]
        for strict in (True, False):
            assert _run_join(
                interval_sweep_join, intervals, points, strict
            ) == _run_join(naive_join, intervals, points, strict)


class TestSweepRetirement:
    """Regression: under strict containment, intervals with ``end == point``
    must be retired from the active heap, not rescanned at every event.

    The pre-fix sweep only retired ``end < point``, so endpoint-dense data
    degraded to the quadratic join (output stayed correct — ``contains``
    filtered the stale entries — but every event rescanned them). The
    ``repro_interval_sweep_scans_total`` counter makes this observable.
    """

    def _scans(self, intervals, points, strict):
        with use_registry() as registry:
            _run_join(interval_sweep_join, intervals, points, strict)
            return registry.counter_total(names.SWEEP_SCANS)

    def test_strict_retires_intervals_ending_at_point(self):
        n = 40
        intervals = [Interval(0, 100)] * n
        points = [100] * n  # every interval ends exactly at every event
        assert self._scans(intervals, points, strict=True) == 0

    def test_non_strict_keeps_intervals_ending_at_point(self):
        # end == point pairs ARE emitted non-strictly, so they must stay.
        intervals = [Interval(0, 100)] * 5
        assert self._scans(intervals, [100], strict=False) == 5

    def test_strict_scan_count_stays_linear_on_chained_endpoints(self):
        # Interval i ends exactly at event i: after the fix each event
        # scans only the intervals still able to contain a later point.
        n = 30
        intervals = [Interval(0, i) for i in range(1, n + 1)]
        points = list(range(1, n + 1))
        scans = self._scans(intervals, points, strict=True)
        # Pre-fix this was Theta(n^2) (~465 for n=30); post-fix each event
        # scans exactly the intervals with end > point: n-1, n-2, ... but
        # they also strictly contain the point, so scans == emitted pairs.
        with use_registry() as registry:
            pairs = len(_run_join(interval_sweep_join, intervals, points, True))
            assert registry.counter_total(names.SWEEP_PAIRS) == pairs
        assert scans == pairs
