"""Tests for thin WHOIS records and snapshots."""

import pytest

from repro.util.dates import day
from repro.whois.lifecycle import DomainState
from repro.whois.record import ThinWhoisRecord, WhoisSnapshot

T0 = day(2018, 4, 2)


def record(domain="foo.com", creation=T0, expiration=None):
    return ThinWhoisRecord(
        domain=domain,
        registrar="Registrar A",
        creation_date=creation,
        expiration_date=expiration if expiration is not None else creation + 365,
        updated_date=creation,
    )


class TestThinWhoisRecord:
    def test_normalizes_domain(self):
        assert record(domain="FOO.Com.").domain == "foo.com"

    def test_rejects_expiry_before_creation(self):
        with pytest.raises(ValueError):
            record(creation=T0, expiration=T0 - 1)

    def test_creation_pair(self):
        assert record().creation_pair() == ("foo.com", T0)

    def test_record_roundtrip(self):
        original = ThinWhoisRecord(
            domain="foo.com",
            registrar="Registrar A",
            creation_date=T0,
            expiration_date=T0 + 365,
            updated_date=T0 + 3,
            status=DomainState.REDEMPTION,
            nameservers=("ns1.x.net", "ns2.x.net"),
        )
        assert ThinWhoisRecord.from_record(original.to_record()) == original


class TestWhoisSnapshot:
    def test_add_and_find(self):
        snapshot = WhoisSnapshot(day=T0)
        snapshot.add(record())
        assert snapshot.find("FOO.com").domain == "foo.com"
        assert snapshot.find("bar.com") is None
        assert len(snapshot) == 1

    def test_creation_pairs(self):
        snapshot = WhoisSnapshot(day=T0)
        snapshot.add(record("a.com"))
        snapshot.add(record("b.com", creation=T0 + 1))
        assert snapshot.creation_pairs() == [("a.com", T0), ("b.com", T0 + 1)]
