"""Tests for the figure builders over the shared small world."""

import pytest

from repro.analysis.figures import (
    build_fig4,
    build_fig5a,
    build_fig5b,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
)
from repro.core.stale import StalenessClass
from repro.util.dates import day, month_key


class TestFig4:
    def test_godaddy_spike_months_dominate(self, pipeline_result):
        series = build_fig4(pipeline_result.findings)
        spike = sum(series.get(m, {}).get("GoDaddy Secure CA - G2", 0)
                    for m in ("2021-11", "2021-12"))
        assert spike > 0
        # Spike months hold the bulk of GoDaddy's key-compromise reporting.
        total_godaddy = sum(
            counts.get("GoDaddy Secure CA - G2", 0) for counts in series.values()
        )
        assert spike >= 0.6 * total_godaddy

    def test_lets_encrypt_only_after_july_2022(self, pipeline_result):
        series = build_fig4(pipeline_result.findings)
        for month, counts in series.items():
            for issuer, count in counts.items():
                if issuer.startswith("Let's Encrypt") and count:
                    assert month >= "2022-07"


class TestFig5:
    def test_fig5a_growth_post_2018(self, pipeline_result):
        points = build_fig5a(pipeline_result.findings)
        assert points
        early = sum(c for m, c, _ in points if m < "2017-01")
        late = sum(c for m, c, _ in points if "2018-01" <= m <= "2021-07")
        assert late > early  # staleness grows with the LE/CDN era

    def test_fig5a_e2lds_never_exceed_certs_overall(self, pipeline_result):
        points = build_fig5a(pipeline_result.findings)
        total_certs = sum(c for _, c, _ in points)
        total_e2lds = sum(e for _, _, e in points)
        assert total_e2lds <= total_certs

    def test_fig5b_window_and_issuer_fold(self, pipeline_result):
        series = build_fig5b(pipeline_result.findings, top_issuers=2)
        assert series
        for month, by_issuer in series.items():
            assert "2018-01" <= month <= "2019-12"
            assert len(by_issuer) <= 3  # 2 named + Other

    def test_fig5b_cruiseliner_issuer_present(self, pipeline_result):
        series = build_fig5b(pipeline_result.findings)
        issuers = {i for counts in series.values() for i in counts}
        assert any("COMODO" in issuer for issuer in issuers)


class TestFig6:
    def test_median_ordering_matches_paper(self, pipeline_result):
        """Figure 6: key compromise (~398d) > managed TLS (~300d) >
        registrant change (~90d)."""
        series = {s.staleness_class: s for s in build_fig6(pipeline_result.findings)}
        kc = series[StalenessClass.KEY_COMPROMISE].median_days
        mtls = series[StalenessClass.MANAGED_TLS_DEPARTURE].median_days
        reg = series[StalenessClass.REGISTRANT_CHANGE].median_days
        assert kc > mtls > reg

    def test_curves_are_cdfs(self, pipeline_result):
        for s in build_fig6(pipeline_result.findings):
            ys = [y for _, y in s.curve]
            assert ys == sorted(ys)
            assert ys[-1] == pytest.approx(1.0)

    def test_key_compromise_staleness_mostly_over_90(self, pipeline_result):
        series = {s.staleness_class: s for s in build_fig6(pipeline_result.findings)}
        assert series[StalenessClass.KEY_COMPROMISE].proportion_over_90 > 0.5


class TestFig7:
    def test_yearly_cohorts_2016_2021(self, pipeline_result):
        cohorts = build_fig7(pipeline_result.findings)
        assert set(cohorts) <= set(range(2016, 2022))
        assert len(cohorts) >= 4
        for series in cohorts.values():
            assert series.median_days >= 0


class TestFig8:
    def test_key_compromise_invalidates_fast(self, pipeline_result):
        """Figure 8: ~1% of key compromise occurs after 90 days; over half
        of registrant change does."""
        series = {s.staleness_class: s for s in build_fig8(pipeline_result.findings)}
        assert series[StalenessClass.KEY_COMPROMISE].survival_at_90 < 0.2
        assert series[StalenessClass.REGISTRANT_CHANGE].survival_at_90 > 0.4

    def test_survival_monotone(self, pipeline_result):
        for s in build_fig8(pipeline_result.findings):
            values = [v for _, v in s.steps]
            assert values == sorted(values, reverse=True)
            assert s.survival_at_90 >= s.survival_at_215


class TestFig9:
    def test_reductions_decrease_with_cap(self, pipeline_result):
        matrix = build_fig9(pipeline_result.findings)
        for _cls, results in matrix.items():
            reductions = [r.staleness_days_reduction for r in results]
            assert reductions == sorted(reductions, reverse=True)

    def test_90_day_cap_band(self, pipeline_result):
        """Paper: 75-87% staleness-days reduction at the 90-day cap."""
        matrix = build_fig9(pipeline_result.findings)
        for _cls, results in matrix.items():
            at_90 = next(r for r in results if r.cap_days == 90)
            assert at_90.staleness_days_reduction > 0.5

    def test_all_three_classes_present(self, pipeline_result):
        matrix = build_fig9(pipeline_result.findings)
        assert set(matrix) == {
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        }
