"""GOOD: time comes from the simulated timeline, not the wall clock.

``perf_counter`` is explicitly fine — it measures durations for
telemetry and never feeds simulated results.
"""

import datetime as _dt
from time import perf_counter


def detect_on(day: int):
    started = perf_counter()
    observed = _dt.date.fromordinal(day)
    return observed, perf_counter() - started
