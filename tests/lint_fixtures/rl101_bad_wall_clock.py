"""BAD: wall-clock reads inside a simulated detection path."""

import time
from datetime import date, datetime


def detect_today():
    started = time.time()
    observation_day = date.today().toordinal()
    stamp = datetime.now()
    return started, observation_day, stamp
