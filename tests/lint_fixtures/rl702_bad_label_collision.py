"""RL702 bad: two root forks share one label tuple — identical streams."""

from repro.util.rng import RngStream


def stream_a(seed):
    return RngStream(seed, "fixture-dup")


def stream_b(seed):
    return RngStream(seed, "fixture-dup")
