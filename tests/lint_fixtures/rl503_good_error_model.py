"""GOOD: serve-path handlers route every failure into the error model."""


class ApiError(Exception):
    def __init__(self, status, code, message):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def json_error(status, code, message):
    return status, {"error": {"status": status, "code": code, "message": message}}


def handle_domain(index, name):
    try:
        answer = index.domain(name)
    except ValueError as error:
        raise ApiError(400, "bad_domain", str(error)) from error
    return 200, answer


def dispatch(handler, request, log):
    try:
        return 200, handler(request)
    except ApiError as error:
        return json_error(error.status, error.code, error.message)
    except Exception as error:
        log("serve_unhandled_error", error=repr(error))
        return json_error(500, "internal_error", "unexpected error")
