"""BAD: serve-path handlers that hide failures from the HTTP client."""


def handle_domain(index, name):
    try:
        return 200, index.domain(name)
    except ValueError:
        # Swallowed: the client gets a 200 built from nothing.
        return 200, {"domain": name, "findings": []}


def handle_caps(index, caps):
    answer = {}
    for cap in caps:
        try:
            answer[cap] = index.caps([cap])
        except Exception:
            pass
    return 200, answer
