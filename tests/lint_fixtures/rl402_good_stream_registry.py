"""GOOD: the registered wrapper provides the full uniform registry shape."""


class CompleteStreamDetector:
    name = "complete"
    event_type = "crl_delta_published"

    def consume(self, event):
        return []

    def finalize(self):
        return []

    @property
    def stats(self):
        return None

    def restore_state(self, state, resolve_certificate=None):
        return None


class StreamEngine:
    def __init__(self, bundle):
        self._kc = CompleteStreamDetector()
        self._detectors = (self._kc,)
