"""Fixture CLI anchor: references the live widget only."""

from repro.core.widgets import used_widget


def main():
    return used_widget()
