"""One live export, one dead one."""


def used_widget():
    return "used"


def dead_fixture_widget():
    return "dead"
