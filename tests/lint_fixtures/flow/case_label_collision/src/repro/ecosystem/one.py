"""First fork site — this one keeps the label."""

from repro.util.rng import RngStream


def stream(seed):
    return RngStream(seed, "shared-fixture")
