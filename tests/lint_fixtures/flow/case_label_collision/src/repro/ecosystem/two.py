"""Second fork site — collides with the one in ``one.py``."""

from repro.util.rng import RngStream


def stream(seed):
    return RngStream(seed, "shared-fixture")
