"""Source module: same enumeration, same escape route."""

import os


def discover(root):
    names = os.listdir(root)
    return names
