"""Sink module: ``sorted()`` between source and sink kills the flow."""

from repro.core.scan import discover
from repro.data.dataset import write_dataset


def export(root, out_dir):
    rows = sorted(discover(root))
    write_dataset(out_dir, rows)
