"""The dead export carries a justified suppression — the whitelist flow."""


def used_widget():
    return "used"


def dead_fixture_widget():  # repro-lint: disable=RL703  # kept: exercised by downstream notebooks
    return "dead"
