"""A dynamically dispatched call drops taint — recorded, never guessed."""

import json
import os


def tick(root):
    return os.listdir(root)


HANDLERS = {"tick": tick}


def run(root, out_path):
    handler = HANDLERS["tick"]
    rows = handler(root)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle)
