"""Sink module: the tainted rows reach a dataset write one module away."""

from repro.core.scan import discover
from repro.data.dataset import write_dataset


def export(root, out_dir):
    rows = discover(root)
    write_dataset(out_dir, rows)
