"""Source module: filesystem enumeration order escapes unsorted."""

import os


def discover(root):
    names = os.listdir(root)
    return names
