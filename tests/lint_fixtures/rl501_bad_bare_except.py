"""BAD: bare except also traps KeyboardInterrupt/SystemExit."""


def load(path):
    try:
        with open(path) as handle:
            return handle.read()
    except:  # noqa: E722 (deliberate fixture)
        return None
