"""GOOD: every metric name is a declared repro.obs.names constant."""

from repro.obs import get_registry, names


def instrument(elapsed: float) -> None:
    registry = get_registry()
    registry.counter(
        names.FINDINGS_TOTAL, names.FINDINGS_TOTAL_HELP,
        labels=("staleness_class",),
    ).inc(staleness_class="key_compromise")
    registry.histogram(
        names.DETECTOR_SECONDS, names.DETECTOR_SECONDS_HELP,
        labels=("detector",),
    ).observe(elapsed, detector="key_compromise")
