"""GOOD: every set walk is wrapped in sorted(...); lists iterate freely."""


def merge_keys(before, after):
    out = []
    for key in sorted(set(before) | set(after)):
        out.append(key)
    return out


def list_walk(items):
    return [item for item in items]


def membership_only(haystack, needle):
    return needle in set(haystack)
