"""RL302 bad: dynamic phase, undeclared phase, non-daemon thread."""

import threading

from repro.obs import phase_progress


def instrument(name, total):
    dynamic = phase_progress(name)
    dynamic.set_total(total)
    undeclared = phase_progress("warp_drive")
    undeclared.add(1)
    sampler = threading.Thread(target=instrument, args=(name, total))
    sampler.start()
