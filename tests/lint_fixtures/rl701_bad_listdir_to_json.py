"""RL701 bad: ``os.listdir`` order reaches a findings file unsorted."""

import json
import os


def collect(root):
    names = os.listdir(root)
    return names


def dump(root, out_path):
    rows = collect(root)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle)
