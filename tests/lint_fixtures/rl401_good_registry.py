"""GOOD: every build target defines detect and stats."""


class DetectorSpec:
    def __init__(self, key, build, inputs=None, applies=None):
        self.key = key
        self.build = build


class CompleteDetector:
    def __init__(self, corpus):
        self._corpus = corpus
        self.stats = None

    def detect(self, inputs, findings=None):
        return findings


DETECTOR_REGISTRY = (
    DetectorSpec(
        key="complete",
        build=lambda bundle, config: CompleteDetector(bundle.corpus),
    ),
)
