"""BAD: module-level containers mutated from function bodies."""

_CACHE = {}
_SEEN = []
_TOTAL = 0


def remember(key, value):
    _CACHE[key] = value
    _SEEN.append(key)


def bump(amount):
    global _TOTAL
    _TOTAL += amount
