"""BAD: metric names that bypass the repro.obs.names namespace."""

from repro import cli as not_names
from repro.obs import get_registry, names


def instrument():
    registry = get_registry()
    registry.counter("repro_rogue_total", "a literal name").inc()
    registry.gauge(names.TOTALLY_UNDECLARED_NAME, "typo'd constant").set(1)
    registry.histogram(not_names.SOMETHING, "wrong module").observe(2.0)
