"""GOOD: broad handlers re-raise, log, or print before moving on."""

import logging
import sys

logger = logging.getLogger(__name__)


def parse_logged(records):
    out = []
    for record in records:
        try:
            out.append(int(record))
        except Exception:
            logger.warning("unparseable record %r", record)
    return out


def rethrow(action):
    try:
        return action()
    except Exception:
        print("action failed", file=sys.stderr)
        raise


def narrow_is_fine(value):
    try:
        return float(value)
    except ValueError:
        return 0.0
