"""GOOD: handlers name what they expect."""


def load(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError:
        return None
