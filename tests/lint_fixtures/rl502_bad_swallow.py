"""BAD: broad handlers that neither re-raise nor leave a record."""


def parse_quietly(records):
    out = []
    for record in records:
        try:
            out.append(int(record))
        except Exception:
            pass
    return out


def tuple_swallow(value):
    try:
        return float(value)
    except (ValueError, BaseException):
        return 0.0
