"""BAD: merge/ordering paths walking bare sets in hash order."""


def merge_keys(before, after):
    out = []
    for key in set(before) | set(after):
        out.append(key)
    return out


def union_comprehension(groups):
    return [item for item in {x for g in groups for x in g}]


def frozen_walk(entries):
    rows = []
    for entry in frozenset(entries):
        rows.append(entry)
    return rows
