"""Bad: bypasses repro.data — deprecated shim import/call + layout literal."""

import os

from repro.ecosystem.persistence import load_bundle


def read(directory):
    bundle = load_bundle(directory)
    corpus_path = os.path.join(directory, "corpus.jsonl.gz")
    return bundle, corpus_path
