"""GOOD: randomness through explicit seeding / forked streams only."""

import random


class Stream:
    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def pick(self, items):
        return self._rng.choice(items)
