"""BAD: a stream-registry detector missing restore_state (and stats).

Works fine until the first checkpoint resume touches the missing member
mid-collection — exactly the failure mode the rule exists to catch.
"""


class IncompleteStreamDetector:
    name = "incomplete"
    event_type = "crl_delta_published"

    def consume(self, event):
        return []

    def finalize(self):
        return []


class StreamEngine:
    def __init__(self, bundle):
        self._kc = IncompleteStreamDetector()
        self._detectors = (self._kc,)
