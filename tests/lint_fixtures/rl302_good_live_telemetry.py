"""RL302 good: declared literal phases and a daemonized sampler thread."""

import threading

from repro.obs import phase_progress


def instrument(total):
    progress = phase_progress("stream_days")
    progress.set_total(total)
    progress.add(1)
    sampler = threading.Thread(target=instrument, args=(total,), daemon=True)
    sampler.start()
