"""RL702 good: one root fork whose label is declared in RNG_LABELS."""

from repro.util.rng import RngStream


def stream(seed):
    return RngStream(seed, "tls")
