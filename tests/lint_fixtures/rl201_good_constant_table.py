"""GOOD: module-level tables defined once and only read."""

_DIALECTS = {"verisign": ("%d-%b-%Y",), "legacy": ("%Y-%m-%d",)}
PRIORITY = ["crl", "whois", "dns"]


def patterns(dialect):
    return _DIALECTS.get(dialect, ())


def first_source():
    return PRIORITY[0]


class Holder:
    def __init__(self):
        self._cache = {}

    def remember(self, key, value):
        # Instance state is fine: it is constructed, passed, and merged
        # explicitly rather than hiding at module scope.
        self._cache[key] = value
