"""RL701 good: the ``sorted()`` sanitizer kills the ordering taint."""

import json
import os


def collect(root):
    names = os.listdir(root)
    return sorted(names)


def dump(root, out_path):
    rows = collect(root)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle)
