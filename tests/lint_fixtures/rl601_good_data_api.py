"""Good: bundle I/O through the repro.data front door."""

from repro.data import open_bundle, write_dataset


def roundtrip(source, destination):
    bundle = open_bundle(source)
    write_dataset(bundle, destination)
    return bundle
