"""BAD: draws from the process-global random module."""

import random
from random import choice


def pick(items):
    jitter = random.random()
    winner = choice(items)
    random.shuffle(items)
    return jitter, winner
