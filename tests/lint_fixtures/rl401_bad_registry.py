"""BAD: a DETECTOR_REGISTRY build target missing the Detector protocol.

``NoStatsDetector`` implements ``detect`` but never provides ``stats``
(no property, no class attribute, no ``self.stats`` assignment), so the
pipeline's join-accounting read crashes at runtime.
"""


class DetectorSpec:
    def __init__(self, key, build, inputs=None, applies=None):
        self.key = key
        self.build = build


class NoStatsDetector:
    def __init__(self, corpus):
        self._corpus = corpus

    def detect(self, inputs, findings=None):
        return findings


DETECTOR_REGISTRY = (
    DetectorSpec(
        key="no_stats",
        build=lambda bundle, config: NoStatsDetector(bundle.corpus),
    ),
)
