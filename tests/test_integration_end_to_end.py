"""End-to-end integration: simulated world -> pipeline -> paper claims.

These tests assert the paper's *qualitative* findings hold on the simulated
datasets — who wins, by roughly what factor, and where the crossovers fall —
rather than absolute internet-scale counts.
"""

import pytest

from repro import LifetimePolicySimulator, MeasurementPipeline, StalenessClass
from repro.core.detectors.registrant_change import find_re_registrations
from repro.ecosystem.events import GroundTruthEventType
from repro.util.stats import median


class TestPipelineRuns:
    def test_all_four_measured_classes_detected(self, pipeline_result):
        for cls in (
            StalenessClass.REVOKED_ALL,
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        ):
            assert pipeline_result.findings.of_class(cls), cls

    def test_revocation_stats_reported(self, pipeline_result):
        stats = pipeline_result.revocation_stats
        assert stats is not None
        assert stats.matched_in_ct > 0
        assert stats.survivors <= stats.matched_in_ct
        # The cutoff filter must actually fire (pre-Oct-2021 revocations
        # linger in CRLs because entries are retained past expiry).
        assert stats.filtered_before_cutoff > 0

    def test_windows_propagated(self, pipeline_result, small_world):
        timeline = small_world.config.timeline
        windows = pipeline_result.windows
        assert windows[StalenessClass.MANAGED_TLS_DEPARTURE] == (
            timeline.dns_scan_start,
            timeline.dns_scan_end,
        )


class TestPaperClaims:
    def test_abstract_90_day_claim(self, pipeline_result):
        """Abstract: 'shortening ... to 90 days yields a ~75% decrease in
        precarious access' — we assert the >50% band."""
        simulator = LifetimePolicySimulator(pipeline_result.findings)
        assert simulator.overall_staleness_reduction(90) > 0.5

    def test_staleness_periods_exceed_90_days_for_majority(self, pipeline_result):
        """§5.4: 'Over 50% of third-party stale certificates have staleness
        periods exceeding 90 days' for key compromise and managed TLS."""
        for cls in (StalenessClass.KEY_COMPROMISE, StalenessClass.MANAGED_TLS_DEPARTURE):
            ecdf = pipeline_result.findings.staleness_ecdf(cls)
            assert ecdf.proportion_above(90) > 0.5

    def test_staleness_median_ordering(self, pipeline_result):
        medians = {}
        for cls in (
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        ):
            items = pipeline_result.findings.of_class(cls)
            medians[cls] = median([f.staleness_days for f in items])
        assert (
            medians[StalenessClass.KEY_COMPROMISE]
            > medians[StalenessClass.MANAGED_TLS_DEPARTURE]
            > medians[StalenessClass.REGISTRANT_CHANGE]
        )

    def test_invalidation_days_inside_validity(self, pipeline_result):
        for finding in pipeline_result.findings.all_findings():
            certificate = finding.certificate
            assert certificate.not_before <= finding.invalidation_day <= certificate.not_after

    def test_key_compromise_findings_match_reason(self, pipeline_result):
        for finding in pipeline_result.findings.of_class(StalenessClass.KEY_COMPROMISE):
            assert "key_compromise" in finding.detail


class TestLowerBoundClaim:
    def test_detector_misses_transfers(self, small_world, pipeline_result):
        """§4.4: the WHOIS method misses transfers; ground truth confirms
        our detector is a strict lower bound on registrant changes."""
        transfers = [
            e for e in small_world.ground_truth
            if e.event_type is GroundTruthEventType.DOMAIN_TRANSFERRED
        ]
        assert transfers  # the world contains invisible changes
        detected_domains = {
            f.affected_domain
            for f in pipeline_result.findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        }
        re_registered = {
            e.domain for e in small_world.ground_truth
            if e.event_type is GroundTruthEventType.DOMAIN_RE_REGISTERED
        }
        # Every detected registrant change corresponds to a true re-registration.
        assert detected_domains <= re_registered

    def test_detected_events_subset_of_registry_truth(self, small_world):
        events = find_re_registrations(small_world.whois_creation_pairs, None)
        registry = small_world.registry
        for event in events[:200]:
            spans = registry.spans(event.domain)
            assert any(span.creation_date == event.creation_day for span in spans)


class TestCrossDatasetConsistency:
    def test_managed_findings_match_departure_ground_truth(
        self, small_world, pipeline_result
    ):
        timeline = small_world.config.timeline
        departures_in_window = {
            e.domain for e in small_world.ground_truth
            if e.event_type is GroundTruthEventType.MANAGED_TLS_DEPARTED
            and timeline.dns_scan_start < e.day <= timeline.dns_scan_end
        }
        # Registration lapses also pull a customer's delegation away from
        # Cloudflare (registrar parking) — the detector legitimately counts
        # those as departures too.
        lapses_in_window = {
            e.domain for e in small_world.ground_truth
            if e.event_type is GroundTruthEventType.DOMAIN_EXPIRED_LAPSED
            and timeline.dns_scan_start < e.day <= timeline.dns_scan_end
        }
        departures_in_window |= lapses_in_window
        detected_apexes = set()
        for f in pipeline_result.findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE):
            from repro.psl.registered import e2ld

            detected_apexes.add(e2ld(f.affected_domain))
        # Detection requires a valid managed certificate, so detected ⊆ true.
        assert detected_apexes <= departures_in_window

    def test_stale_cert_serials_exist_in_corpus(self, small_world, pipeline_result):
        corpus_keys = set(small_world.corpus.by_revocation_key())
        for finding in pipeline_result.findings.of_class(StalenessClass.KEY_COMPROMISE):
            assert finding.certificate.revocation_key() in corpus_keys
