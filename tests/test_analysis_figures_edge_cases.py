"""Edge-case tests for the figure builders (empty/degenerate inputs)."""

import pytest

from repro.analysis.figures import (
    build_fig4,
    build_fig5a,
    build_fig5b,
    build_fig6,
    build_fig7,
    build_fig8,
    build_fig9,
)
from repro.core.stale import StaleCertificate, StaleFindings, StalenessClass
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2019, 1, 1)


def single_finding(cls=StalenessClass.REGISTRANT_CHANGE, offset=100, serial=210_001):
    findings = StaleFindings()
    findings.add(
        StaleCertificate(
            certificate=make_cert(serial=serial, not_before=T0, lifetime=365),
            staleness_class=cls,
            invalidation_day=T0 + offset,
            affected_domain="example.com",
        )
    )
    return findings


class TestEmptyFindings:
    def test_fig4_empty(self):
        assert build_fig4(StaleFindings()) == {}

    def test_fig5a_empty(self):
        assert build_fig5a(StaleFindings()) == []

    def test_fig5b_empty(self):
        assert build_fig5b(StaleFindings()) == {}

    def test_fig6_empty(self):
        assert build_fig6(StaleFindings()) == []

    def test_fig7_empty(self):
        assert build_fig7(StaleFindings()) == {}

    def test_fig8_empty(self):
        assert build_fig8(StaleFindings()) == []

    def test_fig9_empty(self):
        assert build_fig9(StaleFindings()) == {}


class TestSingleFinding:
    def test_fig6_single_sample(self):
        series = build_fig6(single_finding())
        assert len(series) == 1
        assert series[0].median_days == 265

    def test_fig8_single_sample(self):
        series = build_fig8(single_finding(offset=100))
        assert series[0].survival_at_90 == 1.0  # invalidation at day 100 > 90
        assert series[0].survival_at_215 == 0.0

    def test_fig9_single_sample_monotone(self):
        matrix = build_fig9(single_finding())
        results = matrix[StalenessClass.REGISTRANT_CHANGE]
        reductions = [r.staleness_days_reduction for r in results]
        assert reductions == sorted(reductions, reverse=True)

    def test_fig5a_single(self):
        points = build_fig5a(single_finding())
        assert len(points) == 1
        month, certs, e2lds = points[0]
        assert certs == 1 and e2lds == 1

    def test_fig7_year_outside_range_excluded(self):
        findings = single_finding(offset=100)  # 2019 event: in range
        cohorts = build_fig7(findings, years=(2016, 2017))
        assert cohorts == {}

    def test_fig5b_window_excludes_out_of_range(self):
        findings = single_finding(offset=100)  # 2019-04: inside default window
        assert build_fig5b(findings)
        assert build_fig5b(findings, first_month="2020-01", last_month="2020-12") == {}


class TestFig5bIssuerFolding:
    def test_other_bucket(self):
        findings = StaleFindings()
        for index, issuer in enumerate(["CA A", "CA B", "CA C", "CA D", "CA E"]):
            findings.add(
                StaleCertificate(
                    certificate=make_cert(serial=211_000 + index, not_before=T0,
                                          lifetime=365, issuer=issuer),
                    staleness_class=StalenessClass.REGISTRANT_CHANGE,
                    invalidation_day=T0 + 30,
                    affected_domain="example.com",
                )
            )
        series = build_fig5b(findings, first_month="2019-01", last_month="2019-12",
                             top_issuers=2)
        month_counts = next(iter(series.values()))
        assert month_counts.get("Other", 0) == 3
        assert sum(month_counts.values()) == 5
