"""Acceptance criterion: kill at an arbitrary day + resume == uninterrupted.

A replay killed mid-stream and resumed from its checkpoint must converge to
the identical findings set (and matching statistics) as an uninterrupted
run — which itself equals the batch pipeline. Also covers the checkpoint
store itself: atomicity, format versioning, and bundle-mismatch detection.
"""

import os

import pytest

from repro.stream import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    StreamEngine,
    canonical_findings,
    verify_equivalence,
)
from repro.stream.checkpoint import CHECKPOINT_FORMAT_VERSION
from repro.util.storage import dump_json


@pytest.fixture(scope="module")
def small_bundle(small_world):
    return small_world.to_bundle()


@pytest.fixture(scope="module")
def cutoff(small_world):
    return small_world.config.timeline.revocation_cutoff


@pytest.fixture(scope="module")
def uninterrupted(small_bundle, cutoff):
    return StreamEngine(small_bundle, revocation_cutoff_day=cutoff).replay()


def _kill_and_resume(bundle, cutoff, tmp_path, kill_after_days, every=25):
    store = CheckpointStore(str(tmp_path))
    partial = StreamEngine(
        bundle,
        revocation_cutoff_day=cutoff,
        checkpoint_store=store,
        checkpoint_every_days=every,
    ).replay(max_days=kill_after_days)
    assert not partial.complete
    resumed = StreamEngine(
        bundle, revocation_cutoff_day=cutoff, checkpoint_store=store
    ).replay(resume=True)
    assert resumed.complete
    return partial, resumed


class TestKillResume:
    @pytest.mark.parametrize("kill_after_days", [1, 200, 1400])
    def test_resume_converges_to_uninterrupted(
        self, small_bundle, cutoff, tmp_path, uninterrupted, kill_after_days
    ):
        partial, resumed = _kill_and_resume(
            small_bundle, cutoff, tmp_path, kill_after_days
        )
        assert canonical_findings(resumed.findings) == canonical_findings(
            uninterrupted.findings
        )
        assert resumed.revocation_stats == uninterrupted.revocation_stats
        assert resumed.stats.resumed_from_day == partial.cursor_day

    def test_resume_equals_batch(self, small_bundle, cutoff, tmp_path):
        _, resumed = _kill_and_resume(small_bundle, cutoff, tmp_path, 700)
        ok, _ = verify_equivalence(
            small_bundle, resumed.findings, revocation_cutoff_day=cutoff
        )
        assert ok

    def test_double_kill_double_resume(self, small_bundle, cutoff, tmp_path, uninterrupted):
        store = CheckpointStore(str(tmp_path))
        StreamEngine(
            small_bundle, revocation_cutoff_day=cutoff, checkpoint_store=store
        ).replay(max_days=300)
        second = StreamEngine(
            small_bundle, revocation_cutoff_day=cutoff, checkpoint_store=store
        ).replay(max_days=400, resume=True)
        assert not second.complete
        final = StreamEngine(
            small_bundle, revocation_cutoff_day=cutoff, checkpoint_store=store
        ).replay(resume=True)
        assert final.complete
        assert canonical_findings(final.findings) == canonical_findings(
            uninterrupted.findings
        )

    def test_cumulative_day_count_survives_resume(self, small_bundle, cutoff, tmp_path, uninterrupted):
        _, resumed = _kill_and_resume(small_bundle, cutoff, tmp_path, 500)
        assert resumed.stats.days_processed == uninterrupted.stats.days_processed

    def test_resume_without_checkpoint_is_fresh_run(self, small_bundle, cutoff, tmp_path, uninterrupted):
        store = CheckpointStore(str(tmp_path / "empty"))
        result = StreamEngine(
            small_bundle, revocation_cutoff_day=cutoff, checkpoint_store=store
        ).replay(resume=True)
        assert result.complete
        assert result.stats.resumed_from_day is None
        assert canonical_findings(result.findings) == canonical_findings(
            uninterrupted.findings
        )

    def test_mismatched_bundle_rejected(self, small_bundle, cutoff, tmp_path):
        from repro.core.pipeline import DatasetBundle

        store = CheckpointStore(str(tmp_path))
        StreamEngine(
            small_bundle, revocation_cutoff_day=cutoff, checkpoint_store=store
        ).replay(max_days=100)
        other = DatasetBundle(corpus=small_bundle.corpus)  # different datasets
        with pytest.raises(CheckpointMismatchError):
            StreamEngine(
                other, revocation_cutoff_day=cutoff, checkpoint_store=store
            ).replay(resume=True)


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"))
        assert store.load() is None
        store.save({"cursor_day": 42, "detectors": {}})
        loaded = store.load()
        assert loaded["cursor_day"] == 42
        assert loaded["format_version"] == CHECKPOINT_FORMAT_VERSION

    def test_save_is_atomic(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save({"cursor_day": 1})
        assert not os.path.exists(store.path + ".tmp")

    def test_clear(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save({"cursor_day": 1})
        store.clear()
        assert store.load() is None

    def test_unknown_format_version_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        dump_json(store.path, {"format_version": 999})
        with pytest.raises(CheckpointMismatchError, match="v999"):
            store.load()


class TestCorruptCheckpoints:
    """Regression: unreadable checkpoints raised raw gzip/JSON tracebacks
    (``BadGzipFile`` / ``EOFError`` / ``JSONDecodeError``) instead of a
    checkpoint-layer error naming the file and the remedy."""

    def test_garbage_bytes_raise_corrupt_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        os.makedirs(store.directory, exist_ok=True)
        with open(store.path, "wb") as handle:
            handle.write(b"this is not a gzip stream")
        with pytest.raises(CheckpointCorruptError, match="truncated or corrupt"):
            store.load()

    def test_truncated_gzip_raises_corrupt_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save({"cursor_day": 42, "detectors": {}})
        with open(store.path, "rb") as handle:
            payload = handle.read()
        assert len(payload) > 12
        with open(store.path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])  # deliberate truncation
        with pytest.raises(CheckpointCorruptError) as excinfo:
            store.load()
        assert store.path in str(excinfo.value)

    def test_non_document_payload_raises_corrupt_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        dump_json(store.path, [1, 2, 3])
        with pytest.raises(CheckpointCorruptError, match="checkpoint document"):
            store.load()

    def test_corrupt_error_is_a_checkpoint_error(self):
        # The CLI catches the base class to cover mismatch AND corruption.
        assert issubclass(CheckpointCorruptError, CheckpointError)
        assert issubclass(CheckpointMismatchError, CheckpointError)

    def test_resume_against_corrupt_checkpoint_raises(
        self, small_bundle, cutoff, tmp_path
    ):
        store = CheckpointStore(str(tmp_path))
        engine = StreamEngine(
            small_bundle,
            revocation_cutoff_day=cutoff,
            checkpoint_store=store,
            checkpoint_every_days=5,
        )
        engine.replay(max_days=10)
        with open(store.path, "rb") as handle:
            payload = handle.read()
        with open(store.path, "wb") as handle:
            handle.write(payload[: len(payload) // 3])
        with pytest.raises(CheckpointCorruptError):
            StreamEngine(
                small_bundle, revocation_cutoff_day=cutoff, checkpoint_store=store
            ).replay(resume=True)
