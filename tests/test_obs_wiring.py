"""Integration tests: the obs registry wired through every engine layer.

The acceptance bar from the issue: one registry namespace fed by the CRL
fetcher, the batch pipeline, the parallel shard workers, and the stream
engine — with parallel totals equal to serial totals, and the CLI able to
write it all as a Prometheus textfile.
"""

import itertools

import pytest

from repro.cli import main
from repro.core.pipeline import MeasurementPipeline, DETECTOR_REGISTRY
from repro.core.stale import StalenessClass
from repro.obs import (
    MetricsRegistry,
    TraceCollector,
    names,
    parse_text,
    use_collector,
    use_registry,
)
from repro.parallel import ParallelMeasurementPipeline
from repro.parallel.executor import SerialExecutor, WorkerConfig
from repro.parallel.pipeline import merge_shard_metrics, merge_shard_traces
from repro.parallel.sharding import partition_bundle
from repro.stream import CheckpointStore, StreamEngine

CLI_ARGS = ["--scale", "0.02", "--seed", "7"]


@pytest.fixture(scope="module")
def small_bundle(small_world):
    return small_world.to_bundle()


@pytest.fixture(scope="module")
def cutoff(small_world):
    return small_world.config.timeline.revocation_cutoff


class TestPipelineWiring:
    def test_findings_counters_match_findings_by_class(self, small_bundle, cutoff):
        with use_registry() as registry:
            result = MeasurementPipeline(
                small_bundle, revocation_cutoff_day=cutoff
            ).run()
            counter = registry.counter(
                names.FINDINGS_TOTAL, labels=("staleness_class",)
            )
            for cls in StalenessClass:
                assert counter.value(staleness_class=cls.value) == len(
                    result.findings.of_class(cls)
                )

    def test_detector_durations_recorded_per_detector(self, small_bundle, cutoff):
        with use_registry() as registry:
            MeasurementPipeline(small_bundle, revocation_cutoff_day=cutoff).run()
            histogram = registry.histogram(
                names.DETECTOR_SECONDS, labels=("detector",)
            )
            for spec in DETECTOR_REGISTRY:
                if not spec.applies(small_bundle):
                    continue
                data = histogram.data(detector=spec.key)
                assert data is not None and data.count == 1


class TestParallelWiring:
    def test_sharded_totals_equal_serial_totals(self, small_bundle, cutoff):
        with use_registry() as serial_registry:
            MeasurementPipeline(small_bundle, revocation_cutoff_day=cutoff).run()
        with use_registry() as sharded_registry:
            ParallelMeasurementPipeline(
                small_bundle, workers=1, num_shards=4, revocation_cutoff_day=cutoff
            ).run()
        for registry in (serial_registry, sharded_registry):
            assert registry.counter_total(names.FINDINGS_TOTAL) > 0
        counter_serial = serial_registry.counter(
            names.FINDINGS_TOTAL, labels=("staleness_class",)
        )
        counter_sharded = sharded_registry.counter(
            names.FINDINGS_TOTAL, labels=("staleness_class",)
        )
        for cls in StalenessClass:
            assert counter_sharded.value(
                staleness_class=cls.value
            ) == counter_serial.value(staleness_class=cls.value)
        # Each of the 4 shards ran each applicable detector once.
        histogram = sharded_registry.histogram(
            names.DETECTOR_SECONDS, labels=("detector",)
        )
        for spec in DETECTOR_REGISTRY:
            if spec.applies(small_bundle):
                assert histogram.data(detector=spec.key).count == 4

    def test_shard_stats_carry_merged_metrics_record(self, small_bundle, cutoff):
        result = ParallelMeasurementPipeline(
            small_bundle, workers=1, num_shards=3, revocation_cutoff_day=cutoff
        ).run()
        record = result.shard_stats.metrics
        rebuilt = MetricsRegistry.from_record(record)
        assert rebuilt.counter_total(names.FINDINGS_TOTAL) == len(
            list(result.findings.all_findings())
        )
        # The record survives the PipelineResult JSON round-trip too.
        assert result.shard_stats.to_record()["metrics"] == record

    def test_shard_snapshot_merge_is_permutation_invariant(
        self, small_bundle, cutoff
    ):
        plan = partition_bundle(small_bundle, 3)
        config = WorkerConfig(
            revocation_cutoff_day=cutoff,
            enabled=tuple(
                spec.key for spec in DETECTOR_REGISTRY if spec.applies(small_bundle)
            ),
        )
        outcomes = SerialExecutor().run(plan, config)
        reference = None
        for order in itertools.permutations(outcomes):
            merged = merge_shard_metrics(list(order))
            counters = {
                (family.name, key): value
                for family in merged.families()
                if family.kind == "counter"
                for key, value in family.samples.items()
            }
            histogram = merged.histogram(
                names.DETECTOR_SECONDS, labels=("detector",)
            )
            counts = {
                spec.key: histogram.data(detector=spec.key).bucket_counts
                for spec in DETECTOR_REGISTRY
                if spec.applies(small_bundle)
            }
            if reference is None:
                reference = (counters, counts)
            else:
                assert (counters, counts) == reference


class TestParallelTraceWiring:
    def test_parallel_run_merges_shard_trace_lanes(self, small_bundle, cutoff):
        num_shards = 3
        with use_collector() as collector:
            result = ParallelMeasurementPipeline(
                small_bundle,
                workers=1,
                num_shards=num_shards,
                revocation_cutoff_day=cutoff,
            ).run()
        events = collector.events()
        lanes = {event["pid"] for event in events}
        assert lanes == set(range(num_shards + 1))
        # Parent lane carries the coordination spans, worker lanes the work.
        parent_names = {e["name"] for e in events if e["pid"] == 0}
        assert {"shard_partition", "shard_execute", "shard_merge"} <= parent_names
        for lane in range(1, num_shards + 1):
            lane_names = {e["name"] for e in events if e["pid"] == lane}
            assert "shard_run" in lane_names
            assert "detector" in lane_names
        # Shard stats report what each worker contributed.
        for shard in result.shard_stats.shards:
            assert shard.trace_events > 0

    def test_no_collector_leaves_run_traceless(self, small_bundle, cutoff):
        result = ParallelMeasurementPipeline(
            small_bundle, workers=1, num_shards=2, revocation_cutoff_day=cutoff
        ).run()
        assert all(s.trace_events == 0 for s in result.shard_stats.shards)

    def test_merge_shard_traces_assigns_deterministic_lanes(
        self, small_bundle, cutoff
    ):
        plan = partition_bundle(small_bundle, 2)
        config = WorkerConfig(
            revocation_cutoff_day=cutoff,
            enabled=tuple(
                spec.key for spec in DETECTOR_REGISTRY if spec.applies(small_bundle)
            ),
            collect_trace=True,
        )
        outcomes = SerialExecutor().run(plan, config)
        assert all(outcome.trace.get("events") for outcome in outcomes)
        collector = TraceCollector()
        merge_shard_traces(outcomes, collector)
        merged_lanes = {event["pid"] for event in collector.events()}
        assert merged_lanes == {outcome.index + 1 for outcome in outcomes}
        # Merging the reversed order lands events on the same lanes.
        again = TraceCollector()
        merge_shard_traces(list(reversed(outcomes)), again)
        assert {e["pid"] for e in again.events()} == merged_lanes


class TestStreamWiring:
    def test_stream_stats_mirror_onto_registry(self, small_bundle, cutoff):
        registry = MetricsRegistry()
        result = StreamEngine(
            small_bundle, revocation_cutoff_day=cutoff, registry=registry
        ).replay()
        stats = result.stats
        events = registry.counter(names.STREAM_EVENTS, labels=("type",))
        for type_value, count in stats.events_by_type.items():
            assert events.value(type=type_value) == count
        findings = registry.counter(names.FINDINGS_TOTAL, labels=("staleness_class",))
        for class_value, count in stats.findings_by_class.items():
            assert findings.value(staleness_class=class_value) == count
        assert registry.counter_total(names.STREAM_DAYS) == stats.days_processed
        assert (
            registry.gauge(names.STREAM_MAX_QUEUE_DEPTH).value()
            == stats.max_queue_depth
        )
        handler = registry.histogram(names.STREAM_HANDLER_SECONDS, labels=("type",))
        for type_value, count in stats.events_by_type.items():
            assert handler.data(type=type_value).count == count

    def test_resume_seeds_checkpointed_totals(self, small_bundle, cutoff, tmp_path):
        store = CheckpointStore(str(tmp_path))
        StreamEngine(
            small_bundle,
            revocation_cutoff_day=cutoff,
            checkpoint_store=store,
            checkpoint_every_days=25,
            registry=MetricsRegistry(),
        ).replay(max_days=120)
        resumed_registry = MetricsRegistry()
        result = StreamEngine(
            small_bundle,
            revocation_cutoff_day=cutoff,
            checkpoint_store=store,
            registry=resumed_registry,
        ).replay(resume=True)
        assert result.complete
        stats = result.stats  # cumulative across both runs
        events = resumed_registry.counter(names.STREAM_EVENTS, labels=("type",))
        for type_value, count in stats.events_by_type.items():
            assert events.value(type=type_value) == count
        assert (
            resumed_registry.counter_total(names.STREAM_DAYS)
            == stats.days_processed
        )
        assert (
            resumed_registry.counter_total(names.STREAM_CHECKPOINTS)
            == stats.checkpoints_written
        )


class TestCliMetricsOut:
    def test_detect_parallel_writes_parseable_textfile(self, tmp_path, capsys):
        parallel_path = str(tmp_path / "parallel.prom")
        code = main(
            CLI_ARGS
            + ["detect", "--workers", "2", "--metrics-out", parallel_path]
        )
        assert code == 0
        assert f"wrote metrics to {parallel_path}" in capsys.readouterr().err
        with open(parallel_path, encoding="utf-8") as handle:
            parallel = parse_text(handle.read())
        # Per-detector duration histograms (one sample per shard).
        assert (
            parallel[
                'repro_detector_seconds_count{detector="key_compromise"}'
            ]
            == 2
        )
        # Per-operator fetch outcome counters (from the world simulation).
        assert any(
            series.startswith("repro_crl_fetch_outcomes_total{")
            for series in parallel
        )
        # Finding counters by staleness class.
        finding_series = {
            series: value
            for series, value in parallel.items()
            if series.startswith("repro_findings_total{")
        }
        assert finding_series

        serial_path = str(tmp_path / "serial.prom")
        assert main(CLI_ARGS + ["detect", "--metrics-out", serial_path]) == 0
        with open(serial_path, encoding="utf-8") as handle:
            serial = parse_text(handle.read())
        for series, value in finding_series.items():
            assert serial[series] == value  # parallel totals == serial totals

    def test_watch_writes_stream_counters(self, tmp_path, capsys):
        path = str(tmp_path / "watch.prom")
        code = main(
            CLI_ARGS
            + ["watch", "--days", "40", "--format", "json", "--metrics-out", path]
        )
        assert code == 0
        with open(path, encoding="utf-8") as handle:
            samples = parse_text(handle.read())
        assert samples["repro_stream_days_processed_total"] == 40
        assert any(
            series.startswith("repro_stream_events_total{") for series in samples
        )

    def test_invocations_do_not_leak_into_each_other(self, tmp_path, capsys):
        first = str(tmp_path / "first.prom")
        second = str(tmp_path / "second.prom")
        assert main(CLI_ARGS + ["detect", "--metrics-out", first]) == 0
        assert main(CLI_ARGS + ["detect", "--metrics-out", second]) == 0
        with open(first, encoding="utf-8") as handle:
            a = parse_text(handle.read())
        with open(second, encoding="utf-8") as handle:
            b = parse_text(handle.read())
        # Counters identical, not doubled: each run got a fresh registry.
        for series in a:
            if "_total" in series:
                assert b[series] == a[series]
