"""Property tests: snapshot diffs exactly explain day-over-day change."""

from typing import Dict, FrozenSet

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.records import RecordType
from repro.dns.snapshots import DailySnapshot, diff_days
from repro.util.dates import day

D1, D2 = day(2022, 8, 1), day(2022, 8, 2)

_APEXES = ("a.com", "b.com", "c.net")
_TARGETS = ("ns1.x.net", "ns2.x.net", "ada.ns.cloudflare.com", "edge.cdn.net")

_state = st.dictionaries(
    st.sampled_from(_APEXES),
    st.fixed_dictionaries(
        {
            RecordType.NS.value: st.frozensets(st.sampled_from(_TARGETS), max_size=3),
            RecordType.A.value: st.frozensets(
                st.sampled_from(("192.0.2.1", "192.0.2.2")), max_size=2
            ),
        }
    ),
    max_size=3,
)


def _snapshot(scan_day, state):
    snapshot = DailySnapshot(scan_day)
    for apex, by_type in state.items():
        for rtype_value, values in by_type.items():
            snapshot.observe(apex, RecordType(rtype_value), values)
    return snapshot


class TestDiffProperties:
    @settings(max_examples=120, deadline=None)
    @given(_state, _state)
    def test_applying_diff_reconstructs_after_state(self, before, after):
        """before - removed + added == after, for every apex present in both."""
        diffs = {
            d.apex: d for d in diff_days(_snapshot(D1, before), _snapshot(D2, after))
        }
        for apex in set(before) & set(after):
            diff = diffs.get(apex)
            for rtype_value in (RecordType.NS.value, RecordType.A.value):
                old = before[apex].get(rtype_value, frozenset())
                new = after[apex].get(rtype_value, frozenset())
                removed = diff.removed.get(rtype_value, frozenset()) if diff else frozenset()
                added = diff.added.get(rtype_value, frozenset()) if diff else frozenset()
                assert (old - removed) | added == new
                assert removed <= old
                assert added & old == frozenset()

    @settings(max_examples=60, deadline=None)
    @given(_state)
    def test_identical_days_produce_no_diffs(self, state):
        assert list(diff_days(_snapshot(D1, state), _snapshot(D2, state))) == []

    @settings(max_examples=60, deadline=None)
    @given(_state)
    def test_disappearance_marks_all_records_removed(self, state):
        diffs = list(diff_days(_snapshot(D1, state), _snapshot(D2, {})))
        flagged = {d.apex for d in diffs if d.disappeared}
        expected = {
            apex for apex, by_type in state.items()
            if any(values for values in by_type.values())
        }
        # Every apex that had any data must be reported as disappeared.
        assert expected <= flagged | {
            apex for apex, by_type in state.items()
            if not any(by_type.values())
        }
