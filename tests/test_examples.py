"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting. Scale-parameterized examples run at a tiny scale.
"""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: (script, extra argv) — small scales keep the suite fast.
_CASES = [
    ("quickstart.py", ["0.02"]),
    ("lifetime_policy_analysis.py", ["0.02"]),
    ("cloudflare_departure_scan.py", []),
    ("ct_monitor_audit.py", []),
    ("breach_forensics.py", []),
    ("dane_vs_pki.py", []),
    ("domain_acquisition_check.py", []),
]


@pytest.mark.parametrize("script,argv", _CASES, ids=[c[0] for c in _CASES])
def test_example_runs(script, argv):
    completed = subprocess.run(
        [sys.executable, str(_EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_directory_fully_covered():
    """Every example on disk has a smoke test here."""
    on_disk = {p.name for p in _EXAMPLES.glob("*.py")}
    covered = {script for script, _ in _CASES}
    assert on_disk == covered
