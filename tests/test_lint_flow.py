"""Whole-program flow tier: taint paths, RNG labels, graphs, parallel runs.

The fixture trees under ``tests/lint_fixtures/flow/`` are the scenarios
the ISSUE names: inter-module taint with the full hop chain, sanitizer
kills, a label collision split across two files, dynamic-edge
conservatism, and dead-export whitelisting. CLI-level behavior
(``--jobs`` determinism, ``--explain``, ``--dump-graph``, ``--fix``
idempotence) runs against generated trees in ``tmp_path``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import FileContext, LintRunner, render_json, render_text
from repro.lint.engine import LintReport
from repro.lint.flow import (
    build_call_graph,
    build_import_graph,
    collect_rng_labels,
    extract_module_facts,
    module_name_for_path,
)
from repro.lint.flow.graphs import ProgramGraph
from repro.lint.flow.taint import analyze_taint
from repro.obs import names

REPO_ROOT = Path(__file__).parent.parent
FLOW_DIR = Path(__file__).parent / "lint_fixtures" / "flow"


def tree_contexts(root: Path):
    contexts = {}
    for file in sorted(root.rglob("*.py")):
        lint_path = file.relative_to(root).as_posix()
        contexts[lint_path] = FileContext.parse(lint_path, file.read_text())
    return contexts


def lint_tree(root: Path):
    return LintRunner().run_contexts(tree_contexts(root))


def program_for(root: Path) -> ProgramGraph:
    facts = {}
    for file in sorted(root.rglob("*.py")):
        lint_path = file.relative_to(root).as_posix()
        facts[lint_path] = extract_module_facts(lint_path, file.read_text())
    return ProgramGraph.build(facts)


def copy_tree(src: Path, dst: Path) -> None:
    for file in src.rglob("*.py"):
        target = dst / file.relative_to(src)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(file.read_text())


class TestModuleNames:
    def test_anchors_on_known_roots(self):
        assert module_name_for_path("src/repro/core/scan.py") == "repro.core.scan"
        assert module_name_for_path("tests/test_x.py") == "tests.test_x"
        assert (
            module_name_for_path("/tmp/anything/src/repro/data/dataset.py")
            == "repro.data.dataset"
        )

    def test_package_init(self):
        assert module_name_for_path("src/repro/data/__init__.py") == "repro.data"


class TestCrossModuleTaint:
    def findings(self):
        return [
            f for f in lint_tree(FLOW_DIR / "case_taint_cross_module")
            if f.code == "RL701"
        ]

    def test_flow_is_found_at_the_sink(self):
        findings = self.findings()
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/core/emit.py"
        assert finding.line == 9
        assert "fs_order" in finding.message
        assert "dataset-write" in finding.message
        assert "3-hop" in finding.message

    def test_hop_chain_names_every_location(self):
        (finding,) = self.findings()
        hops = [(h.path, h.line) for h in finding.hops]
        assert hops == [
            ("src/repro/core/scan.py", 7),
            ("src/repro/core/emit.py", 8),
            ("src/repro/core/emit.py", 9),
        ]
        assert "nondeterministic source" in finding.hops[0].note
        assert "discover() return" in finding.hops[1].note
        assert "sink" in finding.hops[2].note

    def test_hop_chain_renders_in_text_and_json(self):
        (finding,) = self.findings()
        report = LintReport(findings=[finding], files_scanned=2)
        text = render_text(report)
        assert "src/repro/core/scan.py:7" in text
        assert "nondeterministic source" in text
        payload = json.loads(render_json(report))
        (record,) = payload["findings"]
        assert [h["path"] for h in record["hops"]] == [
            "src/repro/core/scan.py",
            "src/repro/core/emit.py",
            "src/repro/core/emit.py",
        ]

    def test_sanitizer_kills_the_flow(self):
        findings = [
            f for f in lint_tree(FLOW_DIR / "case_sanitizer_kills")
            if f.code == "RL701"
        ]
        assert findings == []

    def test_suppressible_at_the_source_line(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        copy_tree(FLOW_DIR / "case_taint_cross_module", tmp_path)
        scan = tmp_path / "src" / "repro" / "core" / "scan.py"
        scan.write_text(scan.read_text().replace(
            "names = os.listdir(root)",
            "names = os.listdir(root)  # repro-lint: disable=RL701  # order proven irrelevant downstream",
        ))
        assert main(["lint", "src"]) == 0


class TestDynamicDispatch:
    def test_dynamic_call_drops_taint(self):
        findings = [
            f for f in lint_tree(FLOW_DIR / "case_dynamic_dispatch")
            if f.code == "RL701"
        ]
        assert findings == []

    def test_dynamic_edge_is_recorded(self):
        program = program_for(FLOW_DIR / "case_dynamic_dispatch")
        edges = build_call_graph(program)
        dynamic = [
            e for e in edges
            if e.dynamic and e.caller == "repro.core.dyn.run" and e.line == 16
        ]
        assert dynamic, "the unresolved handler() call must appear as dynamic"


class TestRngLabelRegistry:
    def test_collision_across_two_files(self):
        findings = [
            f for f in lint_tree(FLOW_DIR / "case_label_collision")
            if f.code == "RL702"
        ]
        collision = [f for f in findings if "collides" in f.message]
        assert len(collision) == 1
        assert collision[0].path == "src/repro/ecosystem/two.py"
        assert "src/repro/ecosystem/one.py" in collision[0].message

    def test_registry_matches_the_tree_exactly(self):
        """``names.RNG_LABELS`` == the statically collected fork set.

        This is the CI self-check: every root fork site's label tuple is
        declared, and no declaration is stale.
        """
        program = program_for(REPO_ROOT / "src")
        collected = {
            site.labels
            for site in collect_rng_labels(program)
            if site.site.kind == "root" and not site.site.variadic
        }
        assert collected == set(names.RNG_LABELS)

    def test_real_fork_sites_are_root_or_split(self):
        program = program_for(REPO_ROOT / "src")
        kinds = {site.site.kind for site in collect_rng_labels(program)}
        assert kinds <= {"root", "split"}


class TestDeadExports:
    def test_dead_export_is_flagged(self):
        findings = [
            f for f in lint_tree(FLOW_DIR / "rl703_bad_dead_export")
            if f.code == "RL703"
        ]
        assert [f.path for f in findings] == ["src/repro/core/widgets.py"]
        assert "dead_fixture_widget" in findings[0].message

    def test_whitelisting_suppresses_it(self):
        findings = [
            f for f in lint_tree(FLOW_DIR / "rl703_good_whitelisted")
            if f.code == "RL703"
        ]
        assert findings == []


class TestProgramGraph:
    def test_import_graph_resolves_internal_edges(self):
        program = program_for(FLOW_DIR / "case_taint_cross_module")
        edges = build_import_graph(program)
        assert "repro.core.scan" in edges["repro.core.emit"]
        assert "os" in edges["repro.core.scan"]

    def test_reexport_chasing(self):
        program = program_for(REPO_ROOT / "src")
        resolved = program.resolve("repro.data.write_dataset")
        assert resolved == "repro.data.dataset.write_dataset"


JOBS_TREE_FILES = 10

BAD_MODULE = (
    "def f():\n"
    "    try:\n"
    "        return 1\n"
    "    except:\n"
    "        raise ValueError\n"
)


def build_jobs_tree(tmp_path: Path) -> None:
    base = tmp_path / "src" / "repro" / "core"
    base.mkdir(parents=True)
    for index in range(JOBS_TREE_FILES):
        (base / f"mod_{index:02d}.py").write_text(BAD_MODULE)
    copy_tree(
        FLOW_DIR / "case_taint_cross_module",
        tmp_path,
    )


class TestParallelDeterminism:
    def payload(self, jobs, monkeypatch, capsys, tmp_path):
        monkeypatch.chdir(tmp_path)
        code = main(["lint", "src", "--format", "json", "--jobs", str(jobs)])
        out = capsys.readouterr().out
        return code, json.loads(out)

    def test_output_identical_for_any_worker_count(
        self, tmp_path, monkeypatch, capsys
    ):
        build_jobs_tree(tmp_path)
        code_1, serial = self.payload(1, monkeypatch, capsys, tmp_path)
        code_4, parallel = self.payload(4, monkeypatch, capsys, tmp_path)
        assert code_1 == code_4 == 1
        assert serial == parallel
        assert serial["counts"]["RL501"] == JOBS_TREE_FILES
        assert serial["counts"]["RL701"] == 1

    def test_hop_chain_survives_the_pool(self, tmp_path, monkeypatch, capsys):
        build_jobs_tree(tmp_path)
        _code, payload = self.payload(4, monkeypatch, capsys, tmp_path)
        (flow_finding,) = [
            f for f in payload["findings"] if f["code"] == "RL701"
        ]
        assert len(flow_finding["hops"]) == 3


class TestExplain:
    def test_explain_prints_the_path(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        copy_tree(FLOW_DIR / "case_taint_cross_module", tmp_path)
        assert main(
            ["lint", "src", "--explain", "src/repro/core/emit.py:9"]
        ) == 0
        out = capsys.readouterr().out
        assert "fs_order" in out
        assert "src/repro/core/scan.py:7" in out

    def test_explain_matches_any_hop(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        copy_tree(FLOW_DIR / "case_taint_cross_module", tmp_path)
        assert main(
            ["lint", "src", "--explain", "src/repro/core/scan.py:7"]
        ) == 0
        assert "dataset-write" in capsys.readouterr().out

    def test_explain_reports_quiet_locations(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        copy_tree(FLOW_DIR / "case_sanitizer_kills", tmp_path)
        assert main(
            ["lint", "src", "--explain", "src/repro/core/emit.py:9"]
        ) == 0
        assert "no recorded nondeterminism flow" in capsys.readouterr().out

    def test_malformed_location_is_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        copy_tree(FLOW_DIR / "case_taint_cross_module", tmp_path)
        assert main(["lint", "src", "--explain", "nonsense"]) == 2


class TestDumpGraph:
    def test_dump_writes_the_program_view(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        copy_tree(FLOW_DIR / "case_taint_cross_module", tmp_path)
        main(["lint", "src", "--dump-graph", "graph.json"])
        payload = json.loads((tmp_path / "graph.json").read_text())
        assert "repro.core.emit" in payload["modules"]
        assert payload["counts"]["modules"] == 2
        callees = {edge["callee"] for edge in payload["calls"]}
        assert "repro.core.scan.discover" in callees


class TestFixBatching:
    def test_cli_fix_is_idempotent(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        build_jobs_tree(tmp_path)
        target = tmp_path / "src" / "repro" / "core" / "mod_00.py"
        assert main(["lint", "src", "--fix"]) == 1  # RL701 is not fixable
        first_pass = target.read_text()
        assert "except Exception:" in first_pass
        assert main(["lint", "src", "--fix"]) == 1
        assert target.read_text() == first_pass

    def test_serial_fix_reuses_lint_sources(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        base = tmp_path / "src" / "repro" / "core"
        base.mkdir(parents=True)
        (base / "a.py").write_text(BAD_MODULE)
        runner = LintRunner(jobs=1)
        report = runner.run(["src"])
        assert "src/repro/core/a.py" in runner.last_sources
        from repro.lint import fix_files

        fixed = fix_files(report.findings, sources=runner.last_sources)
        assert fixed == {"src/repro/core/a.py": 1}
