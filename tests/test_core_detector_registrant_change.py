"""Tests for the registrant-change (WHOIS x CT) detection pipeline (§4.2)."""

import pytest

from repro.core.detectors.registrant_change import (
    RegistrantChangeDetector,
    find_re_registrations,
)
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2019, 1, 1)
REREG = T0 + 180


class TestFindReRegistrations:
    def test_second_creation_date_is_re_registration(self):
        pairs = [("foo.com", T0), ("foo.com", REREG)]
        events = find_re_registrations(pairs)
        assert len(events) == 1
        assert events[0].domain == "foo.com"
        assert events[0].creation_day == REREG
        assert events[0].previous_creation_day == T0

    def test_single_creation_date_no_event(self):
        assert find_re_registrations([("foo.com", T0)]) == []

    def test_duplicate_pairs_from_repeated_crawls_collapse(self):
        pairs = [("foo.com", T0)] * 10 + [("foo.com", REREG)] * 10
        assert len(find_re_registrations(pairs)) == 1

    def test_three_registrations_two_events(self):
        pairs = [("foo.com", T0), ("foo.com", REREG), ("foo.com", REREG + 300)]
        events = find_re_registrations(pairs)
        assert len(events) == 2

    def test_tld_filter_excludes_org(self):
        pairs = [("foo.org", T0), ("foo.org", REREG)]
        assert find_re_registrations(pairs, ("com", "net")) == []
        assert len(find_re_registrations(pairs, None)) == 1

    def test_events_sorted_by_day(self):
        pairs = [
            ("b.com", T0), ("b.com", T0 + 50),
            ("a.com", T0), ("a.com", T0 + 10),
        ]
        events = find_re_registrations(pairs)
        assert [e.domain for e in events] == ["a.com", "b.com"]


@pytest.fixture()
def corpus():
    corpus = CertificateCorpus()
    corpus.ingest(
        [
            # Spans the re-registration: stale.
            make_cert(sans=("foo.com", "www.foo.com"), serial=101,
                      not_before=REREG - 100, lifetime=365),
            # Expired before the re-registration: not stale.
            make_cert(sans=("foo.com",), serial=102,
                      not_before=T0, lifetime=90),
            # Different domain entirely.
            make_cert(sans=("bar.com",), serial=103,
                      not_before=REREG - 100, lifetime=365),
        ]
    )
    return corpus


class TestDetector:
    def test_detects_spanning_certificate(self, corpus):
        detector = RegistrantChangeDetector(corpus)
        findings = detector.detect([("foo.com", T0), ("foo.com", REREG)])
        items = findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        assert len(items) == 1
        assert items[0].certificate.serial == 101
        assert items[0].invalidation_day == REREG
        assert items[0].affected_domain == "foo.com"
        assert items[0].staleness_days == (REREG - 100 + 365) - REREG

    def test_strict_containment_excludes_boundary(self, corpus):
        detector = RegistrantChangeDetector(corpus)
        boundary = REREG - 100  # equals cert 101's notBefore
        findings = detector.detect([("foo.com", T0), ("foo.com", boundary)])
        serials = {
            f.certificate.serial
            for f in findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        }
        # Cert 101 starts exactly on the event day: excluded by the strict
        # notBefore < creation criterion. (Cert 102 legitimately spans it.)
        assert 101 not in serials

    def test_subdomain_certificates_count(self):
        corpus = CertificateCorpus()
        corpus.ingest(
            [make_cert(sans=("shop.foo.com",), serial=110,
                       not_before=REREG - 50, lifetime=365)]
        )
        detector = RegistrantChangeDetector(corpus)
        findings = detector.detect([("foo.com", T0), ("foo.com", REREG)])
        items = findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        assert len(items) == 1
        assert items[0].affected_fqdns() == frozenset({"shop.foo.com"})

    def test_unrelated_e2ld_not_matched(self, corpus):
        detector = RegistrantChangeDetector(corpus)
        findings = detector.detect([("bar.com", T0), ("bar.com", REREG)])
        items = findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        assert [f.certificate.serial for f in items] == [103]

    def test_no_duplicate_findings_for_same_event(self, corpus):
        detector = RegistrantChangeDetector(corpus)
        pairs = [("foo.com", T0), ("foo.com", REREG)] * 3
        findings = detector.detect(pairs)
        assert len(findings.of_class(StalenessClass.REGISTRANT_CHANGE)) == 1

    def test_cruiseliner_cert_matches_member_domain(self):
        corpus = CertificateCorpus()
        sans = ["sni777.cloudflaressl.com"] + [f"cust{i}.com" for i in range(20)]
        corpus.ingest([make_cert(sans=tuple(sans), serial=120,
                                 not_before=REREG - 30, lifetime=365)])
        detector = RegistrantChangeDetector(corpus)
        findings = detector.detect([("cust3.com", T0), ("cust3.com", REREG)])
        items = findings.of_class(StalenessClass.REGISTRANT_CHANGE)
        assert len(items) == 1
        assert items[0].affected_e2lds() == frozenset({"cust3.com"})
