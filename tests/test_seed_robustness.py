"""Seed-robustness: the paper's qualitative claims are not a seed artifact.

Runs the full pipeline on independently-seeded small worlds and checks the
core shape claims on each. If these fail for some seed, the reproduction is
overfit to one random draw.
"""

import pytest

from repro import MeasurementPipeline, StalenessClass, WorldConfig, simulate_world
from repro.analysis.summary import evaluate_claims


@pytest.mark.parametrize("seed", [101, 202])
def test_core_claims_hold_across_seeds(seed):
    world = simulate_world(WorldConfig(seed=seed).scaled(0.08))
    result = MeasurementPipeline(
        world.to_bundle(),
        revocation_cutoff_day=world.config.timeline.revocation_cutoff,
    ).run()
    checks = evaluate_claims(result)
    failing = [check.claim for check in checks if not check.holds]
    # Allow at most one marginal claim to wobble at this small scale; the
    # structural orderings must never fail.
    assert len(failing) <= 1, failing
    by_claim = {check.claim: check for check in checks}
    ordering = by_claim[
        "median staleness: key compromise > managed TLS > registrant change"
    ]
    assert ordering.holds
