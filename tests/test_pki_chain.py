"""Tests for chain building and client-side verification."""

import pytest

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.pki.chain import ChainError, build_chain, verify_chain
from repro.pki.keys import KeyStore
from repro.util.dates import day

T0 = day(2021, 1, 1)


@pytest.fixture()
def hierarchy(key_store):
    root = CertificateAuthority(
        "Root CA", key_store, policy=IssuancePolicy(require_validation=False)
    )
    intermediate = CertificateAuthority(
        "Intermediate CA",
        key_store,
        policy=IssuancePolicy(require_validation=False),
        parent=root,
    )
    key = key_store.generate("sub", T0)
    leaf = intermediate.issue(["example.com", "*.example.com"], key, T0)
    return root, intermediate, leaf


class TestBuildChain:
    def test_builds_to_root(self, hierarchy):
        root, intermediate, leaf = hierarchy
        path = build_chain(leaf, [root, intermediate])
        assert path == [intermediate, root]

    def test_unknown_issuer(self, hierarchy, key_store):
        root, _intermediate, leaf = hierarchy
        with pytest.raises(ChainError, match="no authority"):
            build_chain(leaf, [root])


class TestVerifyChain:
    def test_happy_path(self, hierarchy):
        root, intermediate, leaf = hierarchy
        path = verify_chain(leaf, [root, intermediate], "www.example.com", T0 + 10)
        assert path[-1] is root

    def test_expired_leaf(self, hierarchy):
        root, intermediate, leaf = hierarchy
        with pytest.raises(ChainError, match="not valid"):
            verify_chain(leaf, [root, intermediate], "example.com", T0 + 9999)

    def test_hostname_mismatch(self, hierarchy):
        root, intermediate, leaf = hierarchy
        with pytest.raises(ChainError, match="does not cover"):
            verify_chain(leaf, [root, intermediate], "other.net", T0 + 1)

    def test_wildcard_does_not_cover_two_levels(self, hierarchy):
        root, intermediate, leaf = hierarchy
        with pytest.raises(ChainError, match="does not cover"):
            verify_chain(leaf, [root, intermediate], "a.b.example.com", T0 + 1)

    def test_untrusted_root(self, hierarchy, key_store):
        root, intermediate, leaf = hierarchy
        other_root = CertificateAuthority(
            "Other Root", key_store, policy=IssuancePolicy(require_validation=False)
        )
        with pytest.raises(ChainError, match="not trusted"):
            verify_chain(
                leaf,
                [root, intermediate],
                "example.com",
                T0 + 1,
                trusted_roots=[other_root],
            )

    def test_trusted_root_accepted(self, hierarchy):
        root, intermediate, leaf = hierarchy
        verify_chain(
            leaf, [root, intermediate], "example.com", T0 + 1, trusted_roots=[root]
        )
