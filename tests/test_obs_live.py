"""Live telemetry: progress gauges, the heartbeat, crash durability.

Covers the tentpole acceptance bar: snapshots are monotone per phase,
the final snapshot's samples equal the end-of-run metrics textfile, a
SIGKILLed run leaves a parseable timeline, and ``watch --resume`` ties
the fresh timeline back to the checkpoint with a ``resumed_from``
marker.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.obs import (
    Heartbeat,
    get_heartbeat,
    get_slow_span_ms,
    names,
    parse_text,
    phase_progress,
    read_rss_bytes,
    set_heartbeat,
    set_slow_span_ms,
    span,
    use_heartbeat,
    use_registry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import read_timeline, snapshots, timeline_meta


class TestPhaseProgress:
    def test_add_accumulates_and_set_done_is_high_water(self):
        registry = MetricsRegistry()
        progress = phase_progress("detect_shards", registry)
        progress.set_total(10)
        progress.add(3)
        progress.add(2)
        assert progress.done == 5.0
        progress.set_done(4)  # never backwards
        assert progress.done == 5.0
        progress.set_done(8)
        assert progress.done == 8.0
        assert progress.total == 10.0

    def test_undeclared_phase_rejected(self):
        with pytest.raises(ValueError, match="undeclared progress phase"):
            phase_progress("warp_drive", MetricsRegistry())

    def test_declared_phases_all_constructible(self):
        registry = MetricsRegistry()
        for phase in names.PROGRESS_PHASES:
            phase_progress(phase, registry).add(0)

    def test_rss_readable_on_this_platform(self):
        rss = read_rss_bytes()
        assert rss is not None and rss > 1 << 20  # a Python process > 1 MiB


class TestHeartbeat:
    def test_snapshots_monotone_and_final_matches_textfile(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "timeline.jsonl"
        heartbeat = Heartbeat(registry, str(path), interval=0.05, command="test")
        progress = phase_progress("detect_shards", registry)
        progress.set_total(4)
        with heartbeat:
            for _ in range(4):
                progress.add(1)
                time.sleep(0.08)
        records = read_timeline(str(path))
        assert timeline_meta(records)["command"] == "test"
        snaps = snapshots(records)
        assert len(snaps) >= 3
        done = [s["phases"]["detect_shards"]["done"] for s in snaps]
        assert done == sorted(done)
        assert snaps[-1]["final"] is True
        assert snaps[-1]["phases"]["detect_shards"]["done"] == 4.0
        # The acceptance bar: final snapshot == what the textfile will say.
        assert snaps[-1]["samples"] == parse_text(registry.render_text())

    def test_snapshot_counter_and_rss_gauge_in_samples(self, tmp_path):
        registry = MetricsRegistry()
        heartbeat = Heartbeat(
            registry, str(tmp_path / "t.jsonl"), interval=5.0
        )
        heartbeat.start()
        heartbeat.stop()
        snaps = snapshots(read_timeline(str(tmp_path / "t.jsonl")))
        assert len(snaps) == 1  # just the final one; interval never elapsed
        samples = snaps[0]["samples"]
        assert samples[names.HEARTBEAT_SNAPSHOTS] == 1.0
        assert samples.get(names.PROCESS_RSS_BYTES, 0.0) > 0.0

    def test_open_spans_captured(self, tmp_path):
        registry = MetricsRegistry()
        heartbeat = Heartbeat(registry, str(tmp_path / "t.jsonl"), interval=5.0)
        heartbeat.start()
        with span("outer"):
            with span("inner"):
                record = heartbeat.sample()
        heartbeat.stop()
        open_names = [s["name"] for s in record["open_spans"]]
        assert open_names == ["outer", "inner"]

    def test_marker_records(self, tmp_path):
        registry = MetricsRegistry()
        heartbeat = Heartbeat(registry, str(tmp_path / "t.jsonl"), interval=5.0)
        heartbeat.start()
        heartbeat.mark(resumed_from=1234)
        heartbeat.stop()
        records = read_timeline(str(tmp_path / "t.jsonl"))
        markers = [r for r in records if r.get("kind") == "marker"]
        assert markers and markers[0]["resumed_from"] == 1234

    def test_use_heartbeat_installs_and_clears(self, tmp_path):
        registry = MetricsRegistry()
        heartbeat = Heartbeat(registry, str(tmp_path / "t.jsonl"), interval=5.0)
        assert get_heartbeat() is None
        with use_heartbeat(heartbeat) as active:
            assert get_heartbeat() is active
        assert get_heartbeat() is None

    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            Heartbeat(MetricsRegistry(), str(tmp_path / "t.jsonl"), interval=0)

    def test_stop_idempotent(self, tmp_path):
        heartbeat = Heartbeat(
            MetricsRegistry(), str(tmp_path / "t.jsonl"), interval=5.0
        )
        heartbeat.start()
        heartbeat.stop()
        heartbeat.stop()  # no-op, no error
        assert len(snapshots(read_timeline(str(tmp_path / "t.jsonl")))) == 1


class TestSlowSpanLog:
    def teardown_method(self):
        set_slow_span_ms(None)

    def test_off_by_default_and_no_record(self, caplog):
        assert get_slow_span_ms() is None
        with caplog.at_level(logging.WARNING, logger="repro"):
            with span("fast_thing"):
                pass
        assert not [r for r in caplog.records if "slow_span" in r.getMessage()]

    def test_armed_threshold_emits_structured_record(self, caplog):
        set_slow_span_ms(1.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            with span("outer_phase"):
                with span("slow_thing"):
                    time.sleep(0.01)
        slow = [r for r in caplog.records if r.getMessage() == "slow_span"]
        assert slow
        payload = slow[0].obs_fields
        assert payload["name"] == "slow_thing"
        assert payload["duration_ms"] >= 1.0
        assert payload["parent_chain"] == ["outer_phase"]

    def test_fast_spans_quiet_even_when_armed(self, caplog):
        set_slow_span_ms(60_000.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            with span("quick"):
                pass
        assert not [r for r in caplog.records if "slow_span" in r.getMessage()]

    def test_set_returns_previous_for_restore(self):
        assert set_slow_span_ms(5.0) is None
        assert set_slow_span_ms(None) == 5.0
        assert get_slow_span_ms() is None


class TestCliLifecycle:
    def test_detect_heartbeat_timeline_matches_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        code = main([
            "detect", "--scale", "0.02", "--seed", "7",
            "--heartbeat", "0.05", "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert code == 0
        records = read_timeline(str(tmp_path))
        snaps = snapshots(records)
        assert snaps and snaps[-1]["final"] is True
        with open(metrics, "r", encoding="utf-8") as handle:
            assert snaps[-1]["samples"] == parse_text(handle.read())
        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["timeline_path"] == "timeline.jsonl"
        assert manifest["timeline_snapshots"] == len(snaps)
        assert manifest["heartbeat_seconds"] == 0.05
        assert get_heartbeat() is None  # cleared after the run

    def test_heartbeat_off_writes_no_timeline(self, tmp_path, capsys):
        code = main([
            "detect", "--scale", "0.02", "--seed", "7",
            "--metrics-out", str(tmp_path / "m.prom"),
        ])
        capsys.readouterr()
        assert code == 0
        assert not (tmp_path / "timeline.jsonl").exists()
        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["timeline_path"] is None

    def test_watch_resume_marks_fresh_timeline(self, tmp_path, capsys):
        checkpoints = tmp_path / "ckpt"
        first = tmp_path / "first"
        second = tmp_path / "second"
        args = ["watch", "--scale", "0.02", "--seed", "7",
                "--checkpoint-dir", str(checkpoints), "--heartbeat", "0.05"]
        code = main(args + [
            "--days", "400", "--metrics-out", str(first / "m.prom"),
        ])
        capsys.readouterr()
        assert code == 0
        first_snaps = snapshots(read_timeline(str(first)))
        assert first_snaps[-1]["final"] is True

        code = main(args + [
            "--resume", "--metrics-out", str(second / "m.prom"),
        ])
        capsys.readouterr()
        assert code == 0
        records = read_timeline(str(second))
        markers = [r for r in records if r.get("kind") == "marker"]
        assert any("resumed_from" in m for m in markers), markers
        resumed_from = next(m["resumed_from"] for m in markers
                            if "resumed_from" in m)
        # The fresh timeline's stream cursor starts at (not before) the
        # checkpointed position: the skipped prefix counts as done.
        snaps = snapshots(records)
        days = [
            s["phases"]["stream_days"]["done"]
            for s in snaps
            if "stream_days" in s["phases"]
        ]
        assert days == sorted(days)
        assert resumed_from > 0
        assert snaps[-1]["final"] is True

    def test_sigkill_leaves_parseable_timeline(self, tmp_path):
        """kill -9 mid-run: the timeline reads back up to the last beat."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        timeline = tmp_path / "timeline.jsonl"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "detect", "--scale", "0.1",
             "--heartbeat", "0.05", "--metrics-out", str(tmp_path / "m.prom")],
            cwd=str(tmp_path),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if timeline.exists() and timeline.stat().st_size > 500:
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.02)
            if process.poll() is None:
                os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        records = read_timeline(str(timeline))  # must not raise
        assert timeline_meta(records).get("command") == "detect"
        for phase_rows in (
            snap["phases"] for snap in snapshots(records)
        ):
            for row in phase_rows.values():
                assert row["done"] >= 0.0


class TestRunmetaPaths:
    def test_all_artifact_paths_relative_in_manifest(self, tmp_path):
        from repro.obs.runmeta import build_run_manifest, write_run_manifest

        run_dir = tmp_path / "artifacts"
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        manifest_path = run_dir / "run.json"
        write_run_manifest(
            str(manifest_path),
            build_run_manifest(
                command="detect",
                argv=["detect"],
                seed=7,
                scale=0.02,
                workers=1,
                wall_seconds=1.0,
                exit_status="ok",
                exit_code=0,
                metrics_path=str(run_dir / "m.prom"),
                trace_path=str(elsewhere / "trace.json"),
                timeline_path=str(run_dir / "timeline.jsonl"),
                timeline_snapshots=3,
                heartbeat_seconds=0.5,
            ),
        )
        document = json.loads(manifest_path.read_text())
        assert document["metrics_path"] == "m.prom"
        assert document["timeline_path"] == "timeline.jsonl"
        assert document["trace_path"] == os.path.join("..", "elsewhere", "trace.json")
        # Round trip: joining the manifest dir with each relative path
        # lands on the original absolute location.
        for key, original in (
            ("metrics_path", run_dir / "m.prom"),
            ("timeline_path", run_dir / "timeline.jsonl"),
            ("trace_path", elsewhere / "trace.json"),
        ):
            joined = os.path.normpath(os.path.join(str(run_dir), document[key]))
            assert joined == str(original)

    def test_absent_paths_stay_none(self, tmp_path):
        from repro.obs.runmeta import build_run_manifest, write_run_manifest

        manifest_path = tmp_path / "run.json"
        write_run_manifest(
            str(manifest_path),
            build_run_manifest(
                command="detect",
                argv=["detect"],
                seed=7,
                scale=0.02,
                workers=None,
                wall_seconds=1.0,
                exit_status="ok",
                exit_code=0,
                metrics_path=str(tmp_path / "m.prom"),
            ),
        )
        document = json.loads(manifest_path.read_text())
        assert document["trace_path"] is None
        assert document["timeline_path"] is None
        assert document["timeline_snapshots"] is None
