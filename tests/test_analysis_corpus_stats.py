"""Tests for corpus statistics (growth, issuer mix, lifetime eras)."""

import pytest

from repro.analysis.corpus_stats import (
    automation_share_by_year,
    issuer_share_by_year,
    lifetime_by_policy_era,
    yearly_issuance,
)
from repro.ct.dedup import CertificateCorpus
from repro.util.dates import day
from tests.conftest import make_cert


class TestOnSyntheticCorpus:
    def _corpus(self):
        corpus = CertificateCorpus()
        corpus.ingest(
            [
                make_cert(serial=220_001, not_before=day(2015, 5, 1), lifetime=1000,
                          issuer="Legacy CA"),
                make_cert(serial=220_002, not_before=day(2019, 5, 1), lifetime=700,
                          issuer="Legacy CA"),
                make_cert(serial=220_003, not_before=day(2021, 5, 1), lifetime=365,
                          issuer="Modern CA"),
                make_cert(serial=220_004, not_before=day(2021, 6, 1), lifetime=90,
                          issuer="ACME CA"),
            ]
        )
        return corpus

    def test_yearly_issuance(self):
        assert yearly_issuance(self._corpus()) == [(2015, 1), (2019, 1), (2021, 2)]

    def test_issuer_share_folding(self):
        shares = issuer_share_by_year(self._corpus(), top=1)
        assert shares[2021].get("Other", 0) >= 1  # non-top issuers folded

    def test_lifetime_eras_split_on_policy_dates(self):
        stats = {s.era: s for s in lifetime_by_policy_era(self._corpus())}
        assert stats["pre-825 era"].max_lifetime == 1000
        assert stats["825 era"].max_lifetime == 700
        assert stats["398 era"].max_lifetime == 365
        assert stats["398 era"].share_90_day == pytest.approx(0.5)

    def test_automation_share(self):
        shares = dict(automation_share_by_year(self._corpus()))
        assert shares[2015] == 0.0
        assert shares[2021] == pytest.approx(0.5)


class TestOnWorld:
    def test_issuance_grows_after_lets_encrypt(self, small_world):
        series = dict(yearly_issuance(small_world.corpus))
        early = sum(series.get(year, 0) for year in (2013, 2014, 2015))
        late = sum(series.get(year, 0) for year in (2019, 2020, 2021))
        assert late > 3 * max(1, early)

    def test_max_lifetimes_collapse_across_eras(self, small_world):
        stats = {s.era: s for s in lifetime_by_policy_era(small_world.corpus)}
        assert stats["398 era"].max_lifetime <= 398
        assert stats["825 era"].max_lifetime <= 825

    def test_automation_share_rises(self, small_world):
        shares = dict(automation_share_by_year(small_world.corpus))
        assert shares.get(2021, 0) > shares.get(2014, 0)
