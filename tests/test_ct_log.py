"""Tests for CT log submission, SCTs, and temporal sharding."""

import pytest

from repro.ct.log import CtLog, LogShardingPolicy, ShardRejection, shard_family
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2021, 2, 1)


class TestSubmission:
    def test_submit_returns_sct_and_grows_tree(self):
        log = CtLog("test-log", "TestOp")
        cert = make_cert(not_before=T0)
        sct = log.submit(cert.as_precertificate(), T0)
        assert sct.log_id == "test-log"
        assert log.tree_size == 1
        assert len(sct.token()) == 32

    def test_duplicate_submission_idempotent(self):
        log = CtLog("test-log", "TestOp")
        precert = make_cert(not_before=T0).as_precertificate()
        sct1 = log.submit(precert, T0)
        sct2 = log.submit(precert, T0 + 5)
        assert log.tree_size == 1
        assert sct1.timestamp_day == sct2.timestamp_day == T0

    def test_precert_and_final_are_distinct_entries(self):
        log = CtLog("test-log", "TestOp")
        cert = make_cert(not_before=T0)
        log.submit(cert.as_precertificate(), T0)
        log.submit(cert.with_scts(["s"]), T0)
        assert log.tree_size == 2

    def test_get_entries_range(self):
        log = CtLog("test-log", "TestOp")
        for i in range(5):
            log.submit(make_cert(serial=40_000 + i, not_before=T0), T0)
        entries = log.get_entries(1, 3)
        assert [e.index for e in entries] == [1, 2, 3]

    def test_get_entries_invalid_range(self):
        log = CtLog("test-log", "TestOp")
        with pytest.raises(ValueError):
            log.get_entries(3, 1)

    def test_inclusion_proof_for_entries(self):
        from repro.ct.merkle import verify_inclusion

        log = CtLog("test-log", "TestOp")
        for i in range(9):
            log.submit(make_cert(serial=41_000 + i, not_before=T0), T0)
        entry = log.get_entries(4, 4)[0]
        proof = log.inclusion_proof(4)
        assert verify_inclusion(entry.leaf_bytes(), 4, 9, proof, log.root_hash())


class TestSharding:
    def test_shard_accepts_matching_expiry_year(self):
        shard = CtLog("argon2022", "Google", LogShardingPolicy.for_year(2022))
        cert = make_cert(not_before=day(2021, 8, 1), lifetime=365)  # expires 2022
        shard.submit(cert, day(2021, 8, 1))
        assert shard.tree_size == 1

    def test_shard_rejects_other_years(self):
        shard = CtLog("argon2022", "Google", LogShardingPolicy.for_year(2022))
        early = make_cert(not_before=day(2020, 1, 1), lifetime=90)
        late = make_cert(not_before=day(2023, 1, 1), lifetime=365)
        with pytest.raises(ShardRejection):
            shard.submit(early, day(2020, 1, 1))
        with pytest.raises(ShardRejection):
            shard.submit(late, day(2023, 1, 1))

    def test_unsharded_log_accepts_everything(self):
        log = CtLog("pilot", "Google")
        log.submit(make_cert(not_before=day(2014, 1, 1)), day(2014, 1, 1))
        log.submit(make_cert(not_before=day(2022, 1, 1)), day(2022, 1, 1))
        assert log.tree_size == 2

    def test_shard_family_covers_years(self):
        shards = shard_family("argon", "Google", 2020, 2023)
        assert [s.log_id for s in shards] == [
            "argon2020",
            "argon2021",
            "argon2022",
            "argon2023",
        ]
        cert = make_cert(not_before=day(2021, 1, 1), lifetime=365)  # expires 2022
        accepting = [s for s in shards if s.sharding.accepts(cert)]
        assert [s.log_id for s in accepting] == ["argon2022"]
