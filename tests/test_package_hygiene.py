"""Package hygiene: every module imports, every export resolves."""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", _all_modules())
def test_dunder_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", ()):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_every_public_module_has_docstring():
    for module_name in _all_modules():
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
