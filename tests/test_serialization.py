"""Tests for certificate / finding persistence (checkpointing)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.stale import StaleCertificate, StalenessClass
from repro.pki.certificate import Certificate, ExtendedKeyUsage
from repro.util.dates import day
from repro.util.storage import JsonlStore
from tests.conftest import make_cert

T0 = day(2021, 5, 1)


class TestCertificateRoundtrip:
    def test_basic_roundtrip(self):
        cert = make_cert(sans=("a.com", "*.a.com"), not_before=T0)
        restored = Certificate.from_record(cert.to_record())
        assert restored == cert
        assert restored.dedup_fingerprint() == cert.dedup_fingerprint()

    def test_precert_flags_preserved(self):
        precert = make_cert(not_before=T0).as_precertificate()
        assert Certificate.from_record(precert.to_record()).is_precertificate

    def test_scts_preserved(self):
        cert = make_cert(not_before=T0).with_scts(["t1", "t2"])
        assert Certificate.from_record(cert.to_record()).scts == ("t1", "t2")

    def test_extended_key_usage_preserved(self):
        cert = make_cert(
            not_before=T0,
            extended_key_usage=(
                ExtendedKeyUsage.SERVER_AUTH,
                ExtendedKeyUsage.CLIENT_AUTH,
            ),
        )
        restored = Certificate.from_record(cert.to_record())
        assert restored.extended_key_usage == cert.extended_key_usage

    def test_record_is_json_safe(self):
        import json

        cert = make_cert(not_before=T0)
        assert json.loads(json.dumps(cert.to_record())) == cert.to_record()


class TestFindingRoundtrip:
    def test_roundtrip(self):
        finding = StaleCertificate(
            certificate=make_cert(not_before=T0, lifetime=365),
            staleness_class=StalenessClass.REGISTRANT_CHANGE,
            invalidation_day=T0 + 100,
            affected_domain="example.com",
            detail="re_registered",
        )
        restored = StaleCertificate.from_record(finding.to_record())
        assert restored == finding
        assert restored.staleness_days == finding.staleness_days

    def test_none_affected_domain(self):
        finding = StaleCertificate(
            certificate=make_cert(not_before=T0),
            staleness_class=StalenessClass.KEY_COMPROMISE,
            invalidation_day=T0 + 10,
        )
        restored = StaleCertificate.from_record(finding.to_record())
        assert restored.affected_domain is None


class TestJsonlCheckpointing:
    def test_findings_through_store(self, tmp_path):
        findings = [
            StaleCertificate(
                certificate=make_cert(serial=160_000 + i, not_before=T0, lifetime=365),
                staleness_class=StalenessClass.MANAGED_TLS_DEPARTURE,
                invalidation_day=T0 + 50 + i,
                affected_domain="example.com",
            )
            for i in range(5)
        ]
        store = JsonlStore(
            str(tmp_path / "findings.jsonl.gz"),
            encode=lambda f: f.to_record(),
            decode=StaleCertificate.from_record,
        )
        store.write(findings)
        assert store.read_all() == findings

    def test_corpus_checkpoint(self, tmp_path, small_world):
        from repro.pki.certificate import Certificate

        sample = list(small_world.corpus.certificates())[:50]
        store = JsonlStore(
            str(tmp_path / "corpus.jsonl"),
            encode=lambda c: c.to_record(),
            decode=Certificate.from_record,
        )
        store.write(sample)
        restored = store.read_all()
        assert restored == sample
