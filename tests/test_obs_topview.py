"""``repro top``: formatting helpers and the golden-frame snapshot.

``render_frame`` is a pure function of the timeline records — no wall
clock, no terminal size probing — so a committed fixture timeline must
render byte-identically forever. The golden file pins the layout; update
both together when the frame format deliberately changes.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.cli import main
from repro.obs.timeline import read_timeline
from repro.obs.topview import (
    format_count,
    format_duration,
    progress_bar,
    render_frame,
    run_top,
    sparkline,
)

FIXTURES = Path(__file__).parent / "obs_fixtures"
FIXTURE_TIMELINE = FIXTURES / "timeline_fixture.jsonl"
GOLDEN_FRAME = FIXTURES / "topview_golden.txt"


class TestFormatting:
    def test_format_count(self):
        assert format_count(7) == "7"
        assert format_count(1234) == "1.23k"
        assert format_count(2_500_000) == "2.50M"
        assert format_count(3_000_000_000) == "3.00G"
        assert format_count(1.5) == "1.50"

    def test_format_duration(self):
        assert format_duration(None) == "-"
        assert format_duration(2.34) == "2.3s"
        assert format_duration(123) == "2m03s"
        assert format_duration(3723) == "1h02m"

    def test_progress_bar(self):
        assert progress_bar(0, 10, width=4) == "[----]"
        assert progress_bar(5, 10, width=4) == "[##--]"
        assert progress_bar(10, 10, width=4) == "[####]"
        assert progress_bar(20, 10, width=4) == "[####]"  # clamped
        assert progress_bar(3, 0, width=4) == "[····]"  # indeterminate

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        ramp = sparkline([0.0, 1.0, 2.0, 3.0])
        assert ramp[0] == "▁" and ramp[-1] == "█"
        assert len(sparkline(list(range(100)), width=16)) == 16
        # Downsampling keeps the endpoint.
        assert sparkline(list(range(100)), width=16)[-1] == "█"


class TestGoldenFrame:
    def test_fixture_renders_exactly_the_golden(self):
        frame = render_frame(read_timeline(str(FIXTURE_TIMELINE)))
        assert frame == GOLDEN_FRAME.read_text()

    def test_golden_contains_the_load_bearing_parts(self):
        golden = GOLDEN_FRAME.read_text()
        assert "status: finished" in golden
        assert "resumed_from=736248" in golden
        assert "detect_shards" in golden
        assert "100.0%" in golden
        assert "peak 150.0 MiB" in golden

    def test_empty_timeline_renders_warmup_notice(self):
        frame = render_frame([{"kind": "meta", "command": "detect"}])
        assert "heartbeat warming up" in frame

    def test_running_timeline_shows_open_spans_and_eta(self):
        records = read_timeline(str(FIXTURE_TIMELINE))
        # Drop the final snapshot: the run looks live at snapshot 2.
        running = [r for r in records if r.get("seq") != 3]
        frame = render_frame(running)
        assert "status: running" in frame
        assert "detect_shard" in frame  # open span listed
        assert "eta 0.7s" in frame


class TestRunTop:
    def test_once_prints_single_plain_frame(self):
        out = io.StringIO()
        assert run_top(str(FIXTURE_TIMELINE), once=True, stream=out) == 0
        assert out.getvalue() == GOLDEN_FRAME.read_text()
        assert "\x1b[" not in out.getvalue()

    def test_live_mode_repaints_until_final(self):
        out = io.StringIO()
        assert run_top(
            str(FIXTURE_TIMELINE), once=False, interval=0.01, stream=out
        ) == 0
        text = out.getvalue()
        assert text.startswith("\x1b[H\x1b[2J")
        assert text.count("repro top — detect") == 1  # final frame stops it

    def test_cli_top_once(self, capsys):
        assert main(["top", str(FIXTURE_TIMELINE), "--once"]) == 0
        assert capsys.readouterr().out == GOLDEN_FRAME.read_text()

    def test_cli_top_missing_timeline_exits_2(self, tmp_path, capsys):
        assert main(["top", str(tmp_path), "--once"]) == 2
        assert "cannot read timeline" in capsys.readouterr().err


class TestCliObsTimeline:
    def test_summary_text(self, capsys):
        assert main(["obs-timeline", str(FIXTURE_TIMELINE)]) == 0
        out = capsys.readouterr().out
        assert "detect_shards" in out
        assert "monotonic" in out

    def test_summary_json(self, capsys):
        import json

        assert main([
            "obs-timeline", str(FIXTURE_TIMELINE), "--format", "json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["snapshots"] == 3
        assert payload["summary"]["monotonic"] is True

    def test_diff_same_timeline_passes(self, capsys):
        assert main([
            "obs-timeline", str(FIXTURE_TIMELINE), "--diff",
            str(FIXTURE_TIMELINE),
        ]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_regression_exits_1(self, tmp_path, capsys):
        import json

        slower = []
        for record in read_timeline(str(FIXTURE_TIMELINE)):
            if record.get("kind") == "snapshot":
                record = dict(record)
                record["rss_bytes"] = record["rss_bytes"] * 10
            slower.append(record)
        candidate = tmp_path / "timeline.jsonl"
        with open(candidate, "w", encoding="utf-8") as handle:
            for record in slower:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        assert main([
            "obs-timeline", str(candidate), "--diff", str(FIXTURE_TIMELINE),
        ]) == 1
        assert "REGRESSION: rss_max_bytes" in capsys.readouterr().err
