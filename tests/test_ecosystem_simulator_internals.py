"""White-box tests for world-simulator mechanics.

These poke the simulator's internal machinery directly (issuance routing,
CT submission policy, breach scripting, WHOIS observability filtering) on a
freshly constructed simulator without running the full decade.
"""

import pytest

from repro.ecosystem import WorldConfig, WorldSimulator
from repro.ecosystem.entities import HostingMode, Registrant
from repro.util.dates import day


@pytest.fixture()
def sim():
    return WorldSimulator(WorldConfig(seed=77).scaled(0.05))


def register(sim, name, on_day, hosting=None, tls=True):
    registrant = sim._fresh_registrant()
    domain = sim._register_domain(name, registrant, on_day, is_re_registration=False)
    if hosting is not None:
        domain.hosting = hosting
    domain.tls = tls
    return domain


class TestIssuanceRouting:
    def test_registrar_managed_uses_godaddy(self, sim):
        domain = register(sim, "shop.com", day(2021, 3, 1), HostingMode.REGISTRAR_MANAGED)
        certificate = sim._issue_for(domain, day(2021, 3, 1))
        assert certificate.issuer_name == "GoDaddy Secure CA - G2"

    def test_hosting_platform_uses_cpanel(self, sim):
        domain = register(sim, "blog.com", day(2021, 3, 1), HostingMode.HOSTING_PLATFORM)
        certificate = sim._issue_for(domain, day(2021, 3, 1))
        assert certificate.issuer_name == "cPanel, Inc. CA"
        assert certificate.lifetime_days == 90

    def test_acme_mode_picks_automated_ca(self, sim):
        domain = register(sim, "auto.com", day(2021, 3, 1), HostingMode.SELF_ACME)
        certificate = sim._issue_for(domain, day(2021, 3, 1))
        profile = sim.ca_registry.profile(certificate.issuer_name)
        assert profile.acme_automated

    def test_acme_before_lets_encrypt_era_yields_nothing(self, sim):
        domain = register(sim, "early.com", day(2014, 1, 1), HostingMode.SELF_ACME)
        assert sim._issue_for(domain, day(2014, 1, 1)) is None

    def test_managed_mode_key_owner_is_host(self, sim):
        domain = register(sim, "plat.com", day(2021, 3, 1), HostingMode.HOSTING_PLATFORM)
        certificate = sim._issue_for(domain, day(2021, 3, 1))
        assert certificate.subject_key.owner_id.startswith("host:")

    def test_self_mode_key_owner_is_registrant(self, sim):
        domain = register(sim, "own.com", day(2021, 3, 1), HostingMode.SELF_MANUAL)
        certificate = sim._issue_for(domain, day(2021, 3, 1))
        assert certificate.subject_key.owner_id == domain.registrant_id

    def test_issued_sans_cover_www(self, sim):
        domain = register(sim, "pair.com", day(2021, 3, 1), HostingMode.SELF_MANUAL)
        certificate = sim._issue_for(domain, day(2021, 3, 1))
        assert certificate.fqdns() == frozenset({"pair.com", "www.pair.com"})


class TestCtSubmission:
    def test_accepting_logs_respect_sharding(self, sim):
        from repro.util.dates import year_of

        domain = register(sim, "logme.com", day(2021, 3, 1), HostingMode.SELF_MANUAL)
        certificate = sim._issue_for(domain, day(2021, 3, 1))
        logs = sim._accepting_logs(certificate, day(2021, 3, 1))
        assert logs
        for log in logs:
            assert log.sharding.accepts(certificate)
        expiry_year = str(year_of(certificate.not_after))
        sharded = [log for log in logs if log.log_id.startswith(("argon", "yeti", "nimbus"))]
        assert sharded
        assert all(log.log_id.endswith(expiry_year) for log in sharded)

    def test_pre_sharding_era_uses_unsharded_logs(self, sim):
        domain = register(sim, "old.com", day(2014, 6, 1), HostingMode.SELF_MANUAL)
        certificate = sim._issue_for(domain, day(2014, 6, 1))
        logs = sim._accepting_logs(certificate, day(2014, 6, 1))
        assert logs
        assert all(not log.log_id.startswith(("argon", "yeti", "nimbus")) for log in logs)

    def test_distrusted_log_not_used_after_cutoff(self, sim):
        domain = register(sim, "sym.com", day(2019, 6, 1), HostingMode.SELF_MANUAL)
        certificate = sim._issue_for(domain, day(2019, 6, 1))
        logs = sim._accepting_logs(certificate, day(2019, 6, 1))
        assert "symantec-vega" not in {log.log_id for log in logs}

    def test_submission_creates_log_entries(self, sim):
        before = sum(log.tree_size for log in sim.log_list.all_logs())
        domain = register(sim, "entry.com", day(2021, 3, 1), HostingMode.SELF_MANUAL)
        sim._issue_for(domain, day(2021, 3, 1))
        after = sum(log.tree_size for log in sim.log_list.all_logs())
        assert after > before


class TestBreachScript:
    def test_breach_targets_exposure_window_only(self, sim):
        godaddy_day = sim.timeline.godaddy_breach_disclosure
        inside = register(sim, "victim.com", godaddy_day - 30, HostingMode.REGISTRAR_MANAGED)
        outside = register(sim, "safe.com", godaddy_day - 300, HostingMode.REGISTRAR_MANAGED)
        cert_inside = sim._issue_for(inside, godaddy_day - 30)
        cert_outside = sim._issue_for(outside, godaddy_day - 300)
        sim._fire_godaddy_breach(godaddy_day)
        revoked_serials = {entry[2] for entry in sim._revocations}
        assert cert_inside.serial in revoked_serials
        assert cert_outside.serial not in revoked_serials

    def test_breach_grants_attacker_custody(self, sim):
        godaddy_day = sim.timeline.godaddy_breach_disclosure
        victim = register(sim, "victim2.com", godaddy_day - 10, HostingMode.REGISTRAR_MANAGED)
        certificate = sim._issue_for(victim, godaddy_day - 10)
        sim._fire_godaddy_breach(godaddy_day)
        holders = sim.key_store.holders_on(certificate.subject_key, godaddy_day)
        assert "attacker:godaddy-breach" in holders


class TestWhoisObservability:
    def test_pairs_exclude_pre_window_deletions(self, sim):
        early = day(2014, 1, 1)
        register(sim, "gone.com", early)
        sim.registry.delete("gone.com", day(2015, 1, 1))  # before WHOIS window
        register(sim, "kept.com", early)  # survives into the window
        pairs = dict(sim._whois_pairs())
        assert "gone.com" not in pairs
        assert "kept.com" in pairs

    def test_pairs_exclude_post_window_creations(self, sim):
        late = sim.timeline.whois_end + 10
        register(sim, "late.com", late)
        assert "late.com" not in dict(sim._whois_pairs())


class TestReasonReporting:
    def test_lets_encrypt_kc_masked_before_july_2022(self, sim):
        from repro.revocation.reasons import RevocationReason
        from tests.conftest import make_cert

        le_cert = make_cert(sans=("le.com",), serial=999_001,
                            issuer="Let's Encrypt X3", not_before=day(2022, 1, 1),
                            lifetime=90)
        before = sim._adjust_reason_for_reporting(
            le_cert, day(2022, 5, 1), RevocationReason.KEY_COMPROMISE
        )
        after = sim._adjust_reason_for_reporting(
            le_cert, day(2022, 8, 1), RevocationReason.KEY_COMPROMISE
        )
        assert before is RevocationReason.SUPERSEDED
        assert after is RevocationReason.KEY_COMPROMISE

    def test_other_issuers_unaffected(self, sim):
        from repro.revocation.reasons import RevocationReason
        from tests.conftest import make_cert

        cert = make_cert(sans=("x.com",), serial=999_002, issuer="Sectigo RSA DV CA",
                         not_before=day(2022, 1, 1))
        assert sim._adjust_reason_for_reporting(
            cert, day(2022, 1, 5), RevocationReason.KEY_COMPROMISE
        ) is RevocationReason.KEY_COMPROMISE
