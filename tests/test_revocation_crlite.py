"""Tests for the CRLite-style Bloom-filter cascade."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.revocation.crlite import (
    BloomFilter,
    FilterCascade,
    build_certificate_cascade,
    certificate_key,
)
from repro.util.dates import day
from tests.conftest import make_cert


class TestBloomFilter:
    def test_added_keys_always_present(self):
        bloom = BloomFilter(100, 0.01, salt=b"t")
        keys = [f"key-{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_roughly_bounded(self):
        bloom = BloomFilter(500, 0.01, salt=b"t")
        for i in range(500):
            bloom.add(f"member-{i}".encode())
        false_positives = sum(
            1 for i in range(5000) if f"other-{i}".encode() in bloom
        )
        assert false_positives < 5000 * 0.05  # generous bound over 1% target

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 0.01, b"t")
        with pytest.raises(ValueError):
            BloomFilter(10, 1.5, b"t")

    def test_salt_changes_positions(self):
        a = BloomFilter(10, 0.1, salt=b"a")
        b = BloomFilter(10, 0.1, salt=b"b")
        a.add(b"x")
        b.add(b"x")
        assert a._bits != b._bits or a.bit_count != b.bit_count


class TestFilterCascade:
    def test_exact_separation(self):
        revoked = {f"revoked-{i}".encode() for i in range(300)}
        valid = {f"valid-{i}".encode() for i in range(3000)}
        cascade, stats = FilterCascade.build(revoked, valid)
        assert all(key in cascade for key in revoked)
        assert not any(key in cascade for key in valid)
        assert stats.revoked_count == 300
        assert stats.valid_count == 3000
        assert stats.levels == cascade.level_count >= 1

    def test_empty_revocations(self):
        cascade, stats = FilterCascade.build([], [b"a", b"b"])
        assert b"a" not in cascade
        assert stats.levels == 0

    def test_overlapping_sets_rejected(self):
        with pytest.raises(ValueError):
            FilterCascade.build([b"x"], [b"x", b"y"])

    def test_cascade_much_smaller_than_plain_list(self):
        revoked = [f"revoked-{i}".encode() for i in range(1000)]
        valid = [f"valid-{i}".encode() for i in range(20000)]
        cascade, stats = FilterCascade.build(revoked, valid)
        plain_list_bytes = sum(len(k) for k in revoked)
        assert stats.total_size_bytes < plain_list_bytes
        assert stats.bits_per_revocation < 40  # CRLite reports ~a few bits

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 60), st.integers(0, 400), st.integers(0, 10 ** 6))
    def test_property_exactness(self, n_revoked, n_valid, seed):
        revoked = {f"r-{seed}-{i}".encode() for i in range(n_revoked)}
        valid = {f"v-{seed}-{i}".encode() for i in range(n_valid)}
        cascade, _stats = FilterCascade.build(revoked, valid)
        assert all(k in cascade for k in revoked)
        assert not any(k in cascade for k in valid)


class TestCertificateCascade:
    def test_end_to_end_over_certificates(self):
        t0 = day(2022, 1, 1)
        revoked = [make_cert(serial=130_000 + i, not_before=t0) for i in range(20)]
        valid = [make_cert(serial=131_000 + i, not_before=t0) for i in range(200)]
        cascade, stats = build_certificate_cascade(revoked, valid)
        for cert in revoked:
            assert certificate_key(cert) in cascade
        for cert in valid:
            assert certificate_key(cert) not in cascade
        assert stats.revoked_count == 20

    def test_key_is_issuer_scoped(self):
        a = make_cert(serial=7, authority_key_id="akid-a")
        b = make_cert(serial=7, authority_key_id="akid-b")
        assert certificate_key(a) != certificate_key(b)
