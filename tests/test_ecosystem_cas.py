"""Tests for CA profiles and the CA registry."""

import pytest

from repro.ecosystem.cas import (
    CLOUDFLARE_CA_ISSUER,
    COMODO_CRUISELINER_ISSUER,
    CaRegistry,
    build_standard_cas,
    build_standard_profiles,
)
from repro.pki.keys import KeyStore
from repro.util.dates import day
from repro.util.rng import RngStream

T_2014 = day(2014, 6, 1)
T_2017 = day(2017, 1, 1)
T_2021 = day(2021, 6, 1)


@pytest.fixture()
def registry(key_store):
    return build_standard_cas(key_store, established=day(2013, 3, 1))


class TestProfiles:
    def test_90_day_cas_self_impose_limits(self):
        by_name = {p.name: p for p in build_standard_profiles()}
        for name in ("Let's Encrypt X3", "cPanel, Inc. CA", "Google Trust Services CA 1C3"):
            assert by_name[name].max_lifetime_days == 90
            assert by_name[name].acme_automated

    def test_share_schedule_eras(self):
        by_name = {p.name: p for p in build_standard_profiles()}
        le = by_name["Let's Encrypt X3"]
        assert le.weight_on(T_2014) == 0.0  # pre-launch
        assert le.weight_on(day(2016, 1, 1)) == 1.0
        assert le.weight_on(day(2020, 1, 1)) == 7.0

    def test_blocked_cas_exist_for_table7(self):
        blocked = [p for p in build_standard_profiles() if p.crl_failure.blocked]
        assert {p.operator for p in blocked} == {"Microsoft", "Visa"}


class TestRegistry:
    def test_all_cas_instantiated_with_publishers(self, registry):
        for name in registry.all_names():
            assert registry.publisher(name).ca is registry.ca(name)

    def test_duplicate_profile_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add_profile(build_standard_profiles()[0])

    def test_cloudflare_issuers_present(self, registry):
        assert registry.ca(COMODO_CRUISELINER_ISSUER) is not None
        assert registry.ca(CLOUDFLARE_CA_ISSUER) is not None

    def test_publisher_lookup_by_authority_key(self, registry):
        ca = registry.ca("Sectigo RSA DV CA")
        publisher = registry.publisher_for_authority_key(ca.authority_key_id)
        assert publisher.ca is ca
        assert registry.publisher_for_authority_key("nope") is None

    def test_pick_pool_ca_respects_eras(self, registry):
        rng = RngStream(1, "pick")
        picks_2014 = {registry.pick_pool_ca(T_2014, rng).name for _ in range(60)}
        assert "Let's Encrypt X3" not in picks_2014
        picks_2017 = {registry.pick_pool_ca(T_2017, rng).name for _ in range(120)}
        assert "Let's Encrypt X3" in picks_2017

    def test_pick_acme_ca_only_automated(self, registry):
        rng = RngStream(1, "pick-acme")
        for _ in range(60):
            ca = registry.pick_acme_ca(T_2021, rng)
            assert registry.profile(ca.name).acme_automated

    def test_pick_acme_before_acme_era_is_none(self, registry):
        rng = RngStream(1, "pick-none")
        assert registry.pick_acme_ca(T_2014, rng) is None

    def test_failure_profiles_worst_wins_per_operator(self, registry):
        # COMODO (operator Sectigo, default profile) must not mask the
        # configured Sectigo rate limit.
        profiles = registry.failure_profiles()
        assert profiles["Sectigo"].rate_limit_probability > 0
        assert profiles["Microsoft"].blocked

    def test_disclosure_has_multiple_endpoints_for_big_cas(self, registry):
        grouped = registry.disclosure.by_operator()
        assert len(grouped["DigiCert"]) == 30
        assert len(grouped["Microsoft"]) == 1
