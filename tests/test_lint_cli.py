"""CLI-level lint tests: exit codes, baseline flags, --fix, acceptance gates."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.lint.base import all_rules

REPO_ROOT = Path(__file__).parent.parent

BAD_DETECTOR = (
    "from datetime import datetime\n"
    "\n"
    "class SneakyDetector:\n"
    "    def detect(self, inputs, findings=None):\n"
    "        stamp = datetime.now()\n"
    "        return findings\n"
)


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.format == "text"
        assert args.baseline is None
        assert not args.fix and not args.update_baseline and not args.list_rules

    def test_lint_accepts_paths_and_flags(self):
        args = build_parser().parse_args(
            ["lint", "src", "tests", "--format", "json", "--fix"]
        )
        assert args.paths == ["src", "tests"]
        assert args.format == "json" and args.fix


class TestAcceptance:
    """The ISSUE's acceptance gates, as executable checks."""

    def test_repository_is_lint_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "tests"]) == 0

    def test_wall_clock_in_a_detector_fails_the_lint(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "core" / "detectors" / "sneaky.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_DETECTOR)
        assert main(["lint", "src"]) == 1
        assert "RL101" in capsys.readouterr().out

    def test_undeclared_metric_name_fails_the_lint(self, monkeypatch, tmp_path, capsys):
        # Copy the real tree's names module so the declared-constant set is
        # authentic, then add one call site using a name that is not in it.
        monkeypatch.chdir(tmp_path)
        names_src = REPO_ROOT / "src" / "repro" / "obs" / "names.py"
        names_dst = tmp_path / "src" / "repro" / "obs" / "names.py"
        names_dst.parent.mkdir(parents=True)
        names_dst.write_text(names_src.read_text())
        call_site = tmp_path / "src" / "repro" / "core" / "counting.py"
        call_site.parent.mkdir(parents=True)
        call_site.write_text(
            "from repro.obs import get_registry, names\n"
            "def record():\n"
            "    get_registry().counter(names.MISSPELLED_TOTAL, 'h').inc()\n"
        )
        assert main(["lint", "src"]) == 1
        assert "RL301" in capsys.readouterr().out


class TestCliFlows:
    def _violating_tree(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "a.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "def f():\n    try:\n        return 1\n    except:\n        raise ValueError\n"
        )
        return target

    def test_findings_exit_1_with_text_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        self._violating_tree(tmp_path)
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert "RL501" in out and "src/repro/core/a.py:4" in out

    def test_json_format(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        self._violating_tree(tmp_path)
        assert main(["lint", "src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RL501": 1}

    def test_update_baseline_then_clean(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._violating_tree(tmp_path)
        assert main(["lint", "src", "--update-baseline"]) == 0
        assert os.path.exists("lint-baseline.json")
        # Default baseline is picked up implicitly on the next run.
        assert main(["lint", "src"]) == 0

    def test_stale_baseline_entry_fails(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        target = self._violating_tree(tmp_path)
        assert main(["lint", "src", "--update-baseline"]) == 0
        target.unlink()
        assert main(["lint", "src"]) == 1
        assert "no longer exists" in capsys.readouterr().out

    def test_fix_flag_repairs_tree_then_exits_0(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = self._violating_tree(tmp_path)
        assert main(["lint", "src", "--fix"]) == 0
        assert "except Exception:" in target.read_text()

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "does-not-exist"]) == 2

    def test_explicit_missing_baseline_is_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._violating_tree(tmp_path)
        assert main(["lint", "src", "--baseline", "nope.json"]) == 2

    def test_list_rules_covers_every_code(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out
