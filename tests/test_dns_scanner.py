"""Tests for the daily active scanner."""

import pytest

from repro.dns.records import RecordType
from repro.dns.scanner import ActiveScanner
from repro.dns.zone import ZoneStore
from repro.util.dates import day
from repro.util.rng import RngStream

D1 = day(2022, 8, 1)


@pytest.fixture()
def zones():
    store = ZoneStore()
    a = store.create("alpha.com")
    a.add("alpha.com", RecordType.A, "192.0.2.1")
    a.add("alpha.com", RecordType.NS, "ns1.dns.net")
    b = store.create("beta.com")
    b.add("beta.com", RecordType.NS, "ada.ns.cloudflare.com")
    return store


class TestActiveScanner:
    def test_scan_day_captures_records(self, zones):
        scanner = ActiveScanner(zones)
        obs = scanner.scan_day(D1)
        assert obs.apex_count == 2
        assert obs.a_records == 1
        assert obs.ns_records == 2
        snapshot = scanner.store.get(D1)
        assert snapshot.get("beta.com").get(RecordType.NS) == frozenset(
            {"ada.ns.cloudflare.com"}
        )

    def test_scan_range_stores_each_day(self, zones):
        scanner = ActiveScanner(zones)
        assert scanner.scan_range(D1, D1 + 2) == 3
        assert scanner.store.days() == [D1, D1 + 1, D1 + 2]

    def test_scan_sees_changes_between_days(self, zones):
        scanner = ActiveScanner(zones)
        scanner.scan_day(D1)
        zone = zones.get("beta.com")
        zone.replace("beta.com", RecordType.NS, ["ns1.elsewhere.net"])
        scanner.scan_day(D1 + 1)
        before = scanner.store.get(D1).get("beta.com").get(RecordType.NS)
        after = scanner.store.get(D1 + 1).get("beta.com").get(RecordType.NS)
        assert "ada.ns.cloudflare.com" in before
        assert "ada.ns.cloudflare.com" not in after

    def test_dropped_zone_disappears(self, zones):
        scanner = ActiveScanner(zones)
        scanner.scan_day(D1)
        zones.drop("beta.com")
        scanner.scan_day(D1 + 1)
        assert "beta.com" in scanner.store.get(D1).apexes()
        assert "beta.com" not in scanner.store.get(D1 + 1).apexes()

    def test_loss_rate_requires_rng(self, zones):
        with pytest.raises(ValueError):
            ActiveScanner(zones, loss_rate=0.5)

    def test_loss_rate_drops_lookups(self, zones):
        scanner = ActiveScanner(zones, loss_rate=1.0, rng=RngStream(1, "scan"))
        obs = scanner.scan_day(D1)
        # Two zones x four scanned types, every lookup dropped.
        assert obs.failed_lookups == 2 * 4
        assert obs.apex_count == 0
        assert obs.a_records == 0

    def test_explicit_apex_list(self, zones):
        scanner = ActiveScanner(zones)
        obs = scanner.scan_day(D1, apexes=["alpha.com"])
        assert obs.apex_count == 1
