"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import line_plot, log_bar_chart, stacked_monthly_chart


class TestLogBarChart:
    def test_log_scaling_keeps_baseline_visible(self):
        text = log_bar_chart([("low", 10), ("spike", 10000)], width=40)
        lines = text.splitlines()
        low_bar = lines[0].count("#")
        spike_bar = lines[1].count("#")
        assert spike_bar == 40
        # On a linear scale low would be 0.04 chars; log keeps it >= 25%.
        assert low_bar >= 10

    def test_zero_values_safe(self):
        text = log_bar_chart([("none", 0), ("some", 5)])
        assert "none" in text and "0" in text

    def test_empty_series(self):
        assert "(empty)" in log_bar_chart([], title="t")

    def test_values_annotated(self):
        assert "1,234" in log_bar_chart([("a", 1234)])


class TestStackedMonthlyChart:
    def test_legend_and_totals(self):
        text = stacked_monthly_chart(
            ["2021-11", "2021-12"],
            {"2021-11": {"GoDaddy": 90, "Other": 10}, "2021-12": {"GoDaddy": 40}},
        )
        assert "= GoDaddy" in text
        assert "= Other" in text
        assert "100" in text

    def test_dominant_key_dominates_bar(self):
        text = stacked_monthly_chart(
            ["m"], {"m": {"big": 99, "small": 1}}, symbols={"big": "B", "small": "s"}
        )
        bar_line = [line for line in text.splitlines() if line.startswith("m ")][0]
        assert bar_line.count("B") > 10 * bar_line.count("s")

    def test_empty_month_renders_zero(self):
        text = stacked_monthly_chart(["m1", "m2"], {"m1": {"k": 5}})
        m2_line = [line for line in text.splitlines() if line.startswith("m2")][0]
        assert "| 0" in m2_line.replace("  ", " ")


class TestLinePlot:
    def test_monotone_curve_renders_diagonal(self):
        curve = [(float(i), i / 9) for i in range(10)]
        text = line_plot(curve, height=5, width=20)
        rows = [line for line in text.splitlines() if "|" in line and "+" not in line]
        first_star_cols = [row.index("*") for row in rows if "*" in row]
        # Higher rows (larger y) start further right for an increasing curve.
        assert first_star_cols == sorted(first_star_cols, reverse=True)

    def test_axis_labels(self):
        text = line_plot([(0, 0), (100, 1)], title="CDF")
        assert text.startswith("CDF")
        assert "100" in text.splitlines()[-1]

    def test_flat_curve_safe(self):
        text = line_plot([(0, 0.5), (10, 0.5)])
        assert "*" in text

    def test_empty(self):
        assert "(empty)" in line_plot([], title="x")
