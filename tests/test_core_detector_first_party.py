"""Tests for the first-party key-rotation detector (§3.4 extension)."""

import pytest

from repro.core.detectors.first_party import KeyRotationDetector
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.pki.keys import KeyStore
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2021, 1, 1)


def corpus_with(*certs):
    corpus = CertificateCorpus()
    corpus.ingest(certs)
    return corpus


class TestFindRotations:
    def test_overlapping_reissue_with_new_key(self):
        store = KeyStore()
        old = make_cert(serial=150_001, key=store.generate("o", T0),
                        not_before=T0, lifetime=90)
        new = make_cert(serial=150_002, key=store.generate("o", T0 + 60),
                        not_before=T0 + 60, lifetime=90)
        rotations = KeyRotationDetector(corpus_with(old, new)).find_rotations()
        assert len(rotations) == 1
        assert rotations[0].superseded.serial == 150_001
        assert rotations[0].overlap_days == 30

    def test_gap_renewal_is_not_rotation(self):
        store = KeyStore()
        old = make_cert(serial=150_003, key=store.generate("o", T0),
                        not_before=T0, lifetime=90)
        new = make_cert(serial=150_004, key=store.generate("o", T0),
                        not_before=T0 + 120, lifetime=90)
        assert KeyRotationDetector(corpus_with(old, new)).find_rotations() == []

    def test_key_reuse_is_not_rotation(self):
        store = KeyStore()
        key = store.generate("o", T0)
        old = make_cert(serial=150_005, key=key, not_before=T0, lifetime=90)
        new = make_cert(serial=150_006, key=key, not_before=T0 + 60, lifetime=90)
        assert KeyRotationDetector(corpus_with(old, new)).find_rotations() == []

    def test_different_names_not_grouped(self):
        a = make_cert(sans=("a.com",), serial=150_007, not_before=T0, lifetime=90)
        b = make_cert(sans=("b.com",), serial=150_008, not_before=T0 + 10, lifetime=90)
        assert KeyRotationDetector(corpus_with(a, b)).find_rotations() == []

    def test_different_issuers_not_grouped(self):
        a = make_cert(serial=150_009, issuer="CA One", not_before=T0, lifetime=90)
        b = make_cert(serial=150_010, issuer="CA Two", not_before=T0 + 10, lifetime=90)
        assert KeyRotationDetector(corpus_with(a, b)).find_rotations() == []

    def test_chain_of_renewals_yields_consecutive_rotations(self):
        store = KeyStore()
        certs = [
            make_cert(serial=150_020 + i, key=store.generate("o", T0 + 60 * i),
                      not_before=T0 + 60 * i, lifetime=90)
            for i in range(4)
        ]
        rotations = KeyRotationDetector(corpus_with(*certs)).find_rotations()
        assert len(rotations) == 3


class TestDetect:
    def test_findings_are_first_party_class(self):
        store = KeyStore()
        old = make_cert(serial=150_030, key=store.generate("o", T0),
                        not_before=T0, lifetime=90)
        new = make_cert(serial=150_031, key=store.generate("o", T0 + 60),
                        not_before=T0 + 60, lifetime=90)
        findings = KeyRotationDetector(corpus_with(old, new)).detect()
        items = findings.of_class(StalenessClass.FIRST_PARTY_KEY_ROTATION)
        assert len(items) == 1
        assert items[0].staleness_days == 30
        assert items[0].invalidation_day == T0 + 60

    def test_first_party_dwarfs_third_party_on_world(self, small_world, pipeline_result):
        """§3.4's claim: most invalidation events are first-party."""
        rotations = KeyRotationDetector(small_world.corpus).detect()
        first_party = len(rotations.of_class(StalenessClass.FIRST_PARTY_KEY_ROTATION))
        third_party = sum(
            len(pipeline_result.findings.of_class(cls))
            for cls in (
                StalenessClass.KEY_COMPROMISE,
                StalenessClass.REGISTRANT_CHANGE,
                StalenessClass.MANAGED_TLS_DEPARTURE,
            )
        )
        assert first_party > third_party
