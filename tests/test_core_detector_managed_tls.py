"""Tests for the managed-TLS departure (DNS diff x CT) pipeline (§4.3)."""

import pytest

from repro.core.detectors.managed_tls import (
    ManagedTlsDetector,
    find_departures,
    is_cloudflare_delegation,
    is_cloudflare_managed_certificate,
)
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.dns.records import RecordType
from repro.dns.snapshots import DailySnapshot, SnapshotStore
from repro.util.dates import day
from tests.conftest import make_cert

D1 = day(2022, 8, 1)
D2 = day(2022, 8, 2)

CF_NS = ("ada.ns.cloudflare.com", "bob.ns.cloudflare.com")


def store_with(days):
    store = SnapshotStore()
    for scan_day, observations in days.items():
        snapshot = DailySnapshot(scan_day)
        for apex, ns in observations.items():
            snapshot.observe(apex, RecordType.NS, ns)
        store.put(snapshot)
    return store


def managed_cert(domain="cust.com", serial=201, not_before=day(2022, 5, 1), lifetime=365):
    return make_cert(
        sans=(f"sni{serial}.cloudflaressl.com", domain, f"*.{domain}"),
        serial=serial,
        not_before=not_before,
        lifetime=lifetime,
        issuer="CloudFlare ECC CA-2",
    )


class TestClassifiers:
    def test_managed_certificate_detection(self):
        assert is_cloudflare_managed_certificate(managed_cert())

    def test_customer_uploaded_cert_not_managed(self):
        # A customer-uploaded certificate lacks the sni* marker SAN.
        cert = make_cert(sans=("cust.com",), serial=202)
        assert not is_cloudflare_managed_certificate(cert)

    def test_lookalike_san_not_managed(self):
        cert = make_cert(sans=("snixyz.cloudflaressl.com", "cust.com"), serial=203)
        assert not is_cloudflare_managed_certificate(cert)

    def test_delegation_patterns(self):
        assert is_cloudflare_delegation("ada.ns.cloudflare.com")
        assert is_cloudflare_delegation("foo.cdn.cloudflare.com")
        assert not is_cloudflare_delegation("ns1.elsewhere.net")
        assert not is_cloudflare_delegation("cloudflare.com")


class TestFindDepartures:
    def test_ns_change_away_is_departure(self):
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": ("ns1.other.net",)}})
        departures = find_departures(store)
        assert len(departures) == 1
        assert departures[0].apex == "cust.com"
        assert departures[0].departure_day == D2

    def test_no_change_no_departure(self):
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": CF_NS}})
        assert find_departures(store) == []

    def test_shuffle_within_cloudflare_not_departure(self):
        store = store_with(
            {
                D1: {"cust.com": CF_NS},
                D2: {"cust.com": ("carol.ns.cloudflare.com", "bob.ns.cloudflare.com")},
            }
        )
        assert find_departures(store) == []

    def test_domain_disappearance_counts(self):
        store = store_with({D1: {"cust.com": CF_NS}, D2: {}})
        departures = find_departures(store)
        assert len(departures) == 1

    def test_transient_scan_loss_not_departure(self):
        # Missing one day but back on Cloudflare the next: lookup failure.
        d3 = D2 + 1
        store = store_with({D1: {"cust.com": CF_NS}, D2: {}, d3: {"cust.com": CF_NS}})
        assert find_departures(store) == []

    def test_disappearance_confirmed_by_following_day(self):
        d3 = D2 + 1
        store = store_with({D1: {"cust.com": CF_NS}, D2: {}, d3: {}})
        departures = find_departures(store)
        assert len(departures) == 1
        assert departures[0].departure_day == D2

    def test_reappearance_elsewhere_still_departure(self):
        # Gone one day, back the next on non-Cloudflare NS: real departure.
        d3 = D2 + 1
        store = store_with(
            {D1: {"cust.com": CF_NS}, D2: {}, d3: {"cust.com": ("ns1.other.net",)}}
        )
        assert len(find_departures(store)) == 1

    def test_non_cloudflare_change_ignored(self):
        store = store_with(
            {D1: {"x.com": ("ns1.a.net",)}, D2: {"x.com": ("ns1.b.net",)}}
        )
        assert find_departures(store) == []

    def test_arrival_is_not_departure(self):
        store = store_with({D1: {"cust.com": ("ns1.old.net",)}, D2: {"cust.com": CF_NS}})
        assert find_departures(store) == []


class TestDetector:
    def test_departure_with_valid_managed_cert(self):
        corpus = CertificateCorpus()
        corpus.ingest([managed_cert()])
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": ("ns1.other.net",)}})
        findings = ManagedTlsDetector(corpus).detect(store)
        items = findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE)
        assert len(items) == 1
        assert items[0].affected_domain == "cust.com"
        assert items[0].invalidation_day == D2

    def test_expired_managed_cert_not_stale(self):
        corpus = CertificateCorpus()
        corpus.ingest([managed_cert(not_before=day(2020, 1, 1), lifetime=90)])
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": ("ns1.other.net",)}})
        findings = ManagedTlsDetector(corpus).detect(store)
        assert len(findings) == 0

    def test_customer_uploaded_cert_not_counted(self):
        corpus = CertificateCorpus()
        corpus.ingest([make_cert(sans=("cust.com",), serial=210,
                                 not_before=day(2022, 5, 1), lifetime=365)])
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": ("ns1.other.net",)}})
        findings = ManagedTlsDetector(corpus).detect(store)
        assert len(findings) == 0

    def test_subdomain_certificates_become_stale_with_apex(self):
        corpus = CertificateCorpus()
        corpus.ingest([managed_cert(domain="shop.cust.com", serial=211)])
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": ("ns1.other.net",)}})
        findings = ManagedTlsDetector(corpus).detect(store)
        items = findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE)
        assert [f.affected_domain for f in items] == ["shop.cust.com"]

    def test_multiple_overlapping_certs_all_stale(self):
        corpus = CertificateCorpus()
        corpus.ingest(
            [
                managed_cert(serial=220, not_before=day(2022, 1, 1)),
                managed_cert(serial=221, not_before=day(2022, 6, 1)),
            ]
        )
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": ("ns1.other.net",)}})
        findings = ManagedTlsDetector(corpus).detect(store)
        assert len(findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE)) == 2

    def test_departure_without_cert_no_finding(self):
        corpus = CertificateCorpus()
        store = store_with({D1: {"cust.com": CF_NS}, D2: {"cust.com": ("ns1.other.net",)}})
        findings = ManagedTlsDetector(corpus).detect(store)
        assert len(findings) == 0
