"""Tests for zones and the zone store."""

import pytest

from repro.dns.records import RecordType
from repro.dns.zone import Zone, ZoneStore


class TestZone:
    def test_add_and_lookup(self):
        zone = Zone("example.com")
        zone.add("www.example.com", RecordType.A, "192.0.2.1")
        records = zone.lookup("www.example.com", RecordType.A)
        assert [r.rdata for r in records] == ["192.0.2.1"]

    def test_rejects_out_of_zone_names(self):
        zone = Zone("example.com")
        with pytest.raises(ValueError):
            zone.add("other.net", RecordType.A, "192.0.2.1")
        with pytest.raises(ValueError):
            zone.add("notexample.com", RecordType.A, "192.0.2.1")  # label alignment

    def test_cname_exclusivity(self):
        zone = Zone("example.com")
        zone.add("alias.example.com", RecordType.CNAME, "target.example.com")
        with pytest.raises(ValueError):
            zone.add("alias.example.com", RecordType.A, "192.0.2.1")

    def test_a_then_cname_rejected(self):
        zone = Zone("example.com")
        zone.add("www.example.com", RecordType.A, "192.0.2.1")
        with pytest.raises(ValueError):
            zone.add("www.example.com", RecordType.CNAME, "target.example.com")

    def test_remove_by_type(self):
        zone = Zone("example.com")
        zone.add("example.com", RecordType.NS, "ns1.host.net")
        zone.add("example.com", RecordType.NS, "ns2.host.net")
        zone.add("example.com", RecordType.A, "192.0.2.1")
        assert zone.remove("example.com", RecordType.NS) == 2
        assert zone.lookup("example.com", RecordType.NS) == []
        assert len(zone.lookup("example.com", RecordType.A)) == 1

    def test_remove_specific_rdata(self):
        zone = Zone("example.com")
        zone.add("example.com", RecordType.NS, "ns1.host.net")
        zone.add("example.com", RecordType.NS, "ns2.host.net")
        assert zone.remove("example.com", RecordType.NS, "ns1.host.net") == 1
        assert [r.rdata for r in zone.lookup("example.com", RecordType.NS)] == ["ns2.host.net"]

    def test_replace_is_atomic_swap(self):
        zone = Zone("example.com")
        zone.add("example.com", RecordType.NS, "old1.ns.net")
        zone.replace("example.com", RecordType.NS, ["new1.ns.net", "new2.ns.net"])
        assert {r.rdata for r in zone.lookup("example.com", RecordType.NS)} == {
            "new1.ns.net",
            "new2.ns.net",
        }

    def test_soa_serial_bumps_on_change(self):
        zone = Zone("example.com")
        before = zone.soa.serial
        zone.add("example.com", RecordType.A, "192.0.2.1")
        assert zone.soa.serial > before

    def test_len_counts_records(self):
        zone = Zone("example.com")
        zone.add("example.com", RecordType.A, "192.0.2.1")
        zone.add("www.example.com", RecordType.A, "192.0.2.2")
        assert len(zone) == 2


class TestZoneStore:
    def test_create_and_get(self):
        store = ZoneStore()
        store.create("example.com")
        assert store.get("example.com") is not None
        assert "example.com" in store

    def test_create_duplicate_rejected(self):
        store = ZoneStore()
        store.create("example.com")
        with pytest.raises(ValueError):
            store.create("example.com")

    def test_get_or_create_idempotent(self):
        store = ZoneStore()
        a = store.get_or_create("example.com")
        b = store.get_or_create("example.com")
        assert a is b

    def test_drop(self):
        store = ZoneStore()
        store.create("example.com")
        assert store.drop("example.com")
        assert not store.drop("example.com")
        assert store.get("example.com") is None

    def test_find_zone_for_longest_match(self):
        store = ZoneStore()
        store.create("example.com")
        zone = store.find_zone_for("a.b.example.com")
        assert zone is not None and zone.apex == "example.com"
        assert store.find_zone_for("unrelated.net") is None

    def test_enumerate_apexes_sorted(self):
        store = ZoneStore()
        store.create("b.com")
        store.create("a.com")
        assert store.enumerate_apexes() == ["a.com", "b.com"]
