"""Tests for the end-to-end MeasurementPipeline and DatasetBundle wiring."""

import pytest

from repro.core.pipeline import DatasetBundle, MeasurementPipeline
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.dns.records import RecordType
from repro.dns.snapshots import DailySnapshot, SnapshotStore
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.revocation.reasons import RevocationReason
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2022, 1, 1)


def small_bundle():
    corpus = CertificateCorpus()
    corpus.ingest(
        [
            make_cert(sans=("kc.com",), serial=1, authority_key_id="akid-p",
                      not_before=T0, lifetime=365),
            make_cert(sans=("rereg.com",), serial=2, not_before=T0, lifetime=365),
            make_cert(
                sans=("sni9.cloudflaressl.com", "cdncust.com"),
                serial=3, not_before=T0, lifetime=365,
            ),
        ]
    )
    crl = CertificateRevocationList(
        issuer_name="P CA", authority_key_id="akid-p",
        this_update=T0 + 60, next_update=T0 + 67, crl_number=1,
    )
    crl.add(CrlEntry(1, T0 + 50, RevocationReason.KEY_COMPROMISE))
    store = SnapshotStore()
    s1 = DailySnapshot(T0 + 100)
    s1.observe("cdncust.com", RecordType.NS, ["ada.ns.cloudflare.com"])
    s2 = DailySnapshot(T0 + 101)
    s2.observe("cdncust.com", RecordType.NS, ["ns1.elsewhere.net"])
    store.put(s1)
    store.put(s2)
    return DatasetBundle(
        corpus=corpus,
        crls=[crl],
        whois_creation_pairs=[("rereg.com", T0 - 400), ("rereg.com", T0 + 30)],
        dns_snapshots=store,
        windows={StalenessClass.KEY_COMPROMISE: (T0, T0 + 365)},
    )


class TestPipeline:
    def test_all_detectors_fire(self):
        result = MeasurementPipeline(small_bundle()).run()
        assert len(result.findings.of_class(StalenessClass.KEY_COMPROMISE)) == 1
        assert len(result.findings.of_class(StalenessClass.REVOKED_ALL)) == 1
        assert len(result.findings.of_class(StalenessClass.REGISTRANT_CHANGE)) == 1
        assert len(result.findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE)) == 1

    def test_empty_crls_skips_revocation_stage(self):
        bundle = small_bundle()
        bundle.crls = []
        result = MeasurementPipeline(bundle).run()
        assert result.revocation_stats is None
        assert result.findings.of_class(StalenessClass.KEY_COMPROMISE) == []
        assert result.findings.of_class(StalenessClass.REGISTRANT_CHANGE)

    def test_missing_snapshots_skips_managed_stage(self):
        bundle = small_bundle()
        bundle.dns_snapshots = None
        result = MeasurementPipeline(bundle).run()
        assert result.findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE) == []

    def test_single_snapshot_insufficient_for_diffing(self):
        bundle = small_bundle()
        single = SnapshotStore()
        single.put(bundle.dns_snapshots.get(bundle.dns_snapshots.days()[0]))
        bundle.dns_snapshots = single
        result = MeasurementPipeline(bundle).run()
        assert result.findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE) == []

    def test_revocation_cutoff_applied(self):
        result = MeasurementPipeline(
            small_bundle(), revocation_cutoff_day=T0 + 55
        ).run()
        assert result.revocation_stats.filtered_before_cutoff == 1
        assert result.findings.of_class(StalenessClass.KEY_COMPROMISE) == []

    def test_whois_tld_filter_configurable(self):
        bundle = small_bundle()
        bundle.whois_creation_pairs = [("rereg.org", T0 - 400), ("rereg.org", T0 + 30)]
        default = MeasurementPipeline(bundle).run()
        assert default.findings.of_class(StalenessClass.REGISTRANT_CHANGE) == []
        # .org corpus entry needed for the permissive variant to match.
        bundle.corpus.ingest(
            [make_cert(sans=("rereg.org",), serial=4, not_before=T0, lifetime=365)]
        )
        permissive = MeasurementPipeline(bundle, whois_tlds=None).run()
        assert permissive.findings.of_class(StalenessClass.REGISTRANT_CHANGE)

    def test_aggregate_table_order_and_windows(self):
        bundle = small_bundle()
        result = MeasurementPipeline(bundle).run()
        rows = result.aggregate_table()
        classes = [r.staleness_class for r in rows]
        assert classes == [
            StalenessClass.REVOKED_ALL,
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        ]
        kc_row = rows[1]
        assert kc_row.first_day == T0  # explicit window honored
        assert kc_row.observation_days == 366
