"""Tests for the text rendering helpers."""

import pytest

from repro.analysis.report import render_cdf, render_series, render_table


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(["A", "Longer"], [("x", 1), ("yyyy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        header, rule = lines[0], lines[1]
        assert header.index("Longer") == rule.index("-", header.index("Longer"))

    def test_title_prepended(self):
        text = render_table(["A"], [("x",)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_formatting(self):
        text = render_table(["N", "F"], [(1234567, 3.14159)])
        assert "1,234,567" in text
        assert "3.14" in text

    def test_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert "A" in text and "B" in text

    def test_column_width_grows_with_content(self):
        text = render_table(["A"], [("a-very-long-cell-value",)])
        assert "a-very-long-cell-value" in text


class TestRenderSeries:
    def test_bars_proportional(self):
        text = render_series([("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty_series(self):
        assert "(empty)" in render_series([], label="x")

    def test_label_included(self):
        assert render_series([("a", 1.0)], label="My Series").startswith("My Series")

    def test_zero_peak_safe(self):
        text = render_series([("a", 0.0)])
        assert "#" not in text


class TestRenderCdf:
    def test_downsampling(self):
        curve = [(float(i), i / 99) for i in range(100)]
        text = render_cdf(curve, points=10)
        lines = [line for line in text.splitlines() if "F(x)" in line]
        assert 10 <= len(lines) <= 12
        assert "F(x)= 1.000" in lines[-1]

    def test_last_point_always_kept(self):
        curve = [(0.0, 0.5), (7.0, 1.0)]
        text = render_cdf(curve, points=1)
        assert "x=      7.0" in text

    def test_empty(self):
        assert "(empty)" in render_cdf([], label="c")
