"""Tests for DNS record types and CAA evaluation."""

import pytest

from repro.dns.records import RecordType, ResourceRecord, RRSet, caa_allows_issuer


class TestResourceRecord:
    def test_normalizes_name(self):
        record = ResourceRecord("WWW.Example.COM", RecordType.A, "192.0.2.1")
        assert record.name == "www.example.com"

    def test_normalizes_ns_target(self):
        record = ResourceRecord("example.com", RecordType.NS, "NS1.Host.NET.")
        assert record.rdata == "ns1.host.net"

    def test_rejects_bad_ipv4(self):
        for bad in ("256.1.1.1", "1.2.3", "a.b.c.d", "1.2.3.4.5"):
            with pytest.raises(ValueError):
                ResourceRecord("example.com", RecordType.A, bad)

    def test_accepts_valid_ipv6(self):
        ResourceRecord("example.com", RecordType.AAAA, "2001:db8::1")
        ResourceRecord("example.com", RecordType.AAAA, "::1")

    def test_rejects_bad_ipv6(self):
        for bad in ("2001:db8", "nocolons", "1:2:3:4:5:6:7:8:9", "xyzg::1"):
            with pytest.raises(ValueError):
                ResourceRecord("example.com", RecordType.AAAA, bad)

    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            ResourceRecord("example.com", RecordType.A, "192.0.2.1", ttl=-1)

    def test_key_identity(self):
        a = ResourceRecord("example.com", RecordType.A, "192.0.2.1")
        b = ResourceRecord("example.com", RecordType.A, "192.0.2.1", ttl=60)
        assert a.key() == b.key()  # TTL not part of identity


class TestRRSet:
    def test_dedup_on_add(self):
        rrset = RRSet("example.com", RecordType.A)
        rrset.add("192.0.2.1")
        rrset.add("192.0.2.1")
        rrset.add("192.0.2.2")
        assert len(rrset) == 2
        assert rrset.rdatas() == {"192.0.2.1", "192.0.2.2"}


class TestCaa:
    def _caa(self, value):
        return ResourceRecord("example.com", RecordType.CAA, value)

    def test_no_records_allows_all(self):
        assert caa_allows_issuer([], "letsencrypt.org")

    def test_matching_issue_allows(self):
        records = [self._caa('0 issue "letsencrypt.org"')]
        assert caa_allows_issuer(records, "letsencrypt.org")

    def test_non_matching_issue_denies(self):
        records = [self._caa('0 issue "digicert.com"')]
        assert not caa_allows_issuer(records, "letsencrypt.org")

    def test_forbid_all(self):
        records = [self._caa('0 issue ";"')]
        assert not caa_allows_issuer(records, "anyca.example")

    def test_multiple_issue_any_match(self):
        records = [self._caa('0 issue "a.example"'), self._caa('0 issue "b.example"')]
        assert caa_allows_issuer(records, "b.example")

    def test_issue_with_parameters(self):
        records = [self._caa('0 issue "letsencrypt.org; validationmethods=dns-01"')]
        assert caa_allows_issuer(records, "letsencrypt.org")

    def test_non_caa_records_ignored(self):
        records = [ResourceRecord("example.com", RecordType.TXT, "hello")]
        assert caa_allows_issuer(records, "anyca.example")
