"""Tests for WHOIS text rendering/parsing across registrar dialects."""

import pytest

from repro.util.dates import day
from repro.whois.record import ThinWhoisRecord
from repro.whois.parser import parse_whois_text, render_whois_text

T0 = day(2017, 8, 21)


@pytest.fixture()
def record():
    return ThinWhoisRecord(
        domain="foo.com",
        registrar="Tucows Domains Inc.",
        creation_date=T0,
        expiration_date=T0 + 365,
        updated_date=T0 + 10,
        nameservers=("ns1.host.net",),
    )


class TestRenderParse:
    @pytest.mark.parametrize("dialect", ["verisign", "legacy", "terse"])
    def test_all_dialects_roundtrip_thin_fields(self, record, dialect):
        text = render_whois_text(record, dialect=dialect)
        parsed = parse_whois_text(text)
        assert parsed["domain"] == "foo.com"
        assert parsed["registrar"] == "Tucows Domains Inc."
        assert parsed["creation_date"] == T0
        assert parsed["expiration_date"] == T0 + 365
        assert parsed["updated_date"] == T0 + 10
        assert parsed["nameservers"] == ["ns1.host.net"]

    def test_unknown_dialect_rejected(self, record):
        with pytest.raises(ValueError):
            render_whois_text(record, dialect="nonexistent")

    def test_gdpr_redaction_flag(self, record):
        text = render_whois_text(record, gdpr_redacted=True)
        assert "REDACTED FOR PRIVACY" in text
        assert parse_whois_text(text)["redacted"] is True

    def test_registrant_name_when_not_redacted(self, record):
        text = render_whois_text(record, registrant_name="Alice Example")
        assert "Alice Example" in text
        assert parse_whois_text(text)["redacted"] is False

    def test_parser_tolerates_unparseable_dates(self):
        text = "Domain Name: X.COM\nCreation Date: someday soon\n"
        parsed = parse_whois_text(text)
        assert parsed["domain"] == "x.com"
        assert parsed["creation_date"] is None

    def test_parser_ignores_junk_lines(self):
        text = ">>> whois database <<<\nno colon here\nDomain Name: y.com\n"
        assert parse_whois_text(text)["domain"] == "y.com"

    def test_dialect_date_formats_differ(self, record):
        verisign = render_whois_text(record, dialect="verisign")
        legacy = render_whois_text(record, dialect="legacy")
        assert "T00:00:00Z" in verisign
        assert "T00:00:00Z" not in legacy
