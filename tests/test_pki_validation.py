"""Tests for DV challenges, CAA, and validation reuse."""

import pytest

from repro.dns.records import RecordType
from repro.dns.zone import ZoneStore
from repro.pki.validation import (
    VALIDATION_REUSE_DAYS,
    ChallengeType,
    DvChallenge,
    DvValidator,
    ValidationError,
)
from repro.util.dates import day

T0 = day(2021, 5, 1)


@pytest.fixture()
def zones():
    store = ZoneStore()
    store.create("example.com")
    return store


@pytest.fixture()
def validator(zones):
    return DvValidator(zones, ca_domain="testca.example")


def challenge(ctype=ChallengeType.DNS_01, domain="example.com", account="acct-1"):
    return DvChallenge(domain=domain, challenge_type=ctype, nonce="n-1", account_id=account)


class TestDns01:
    def test_success(self, zones, validator):
        ch = challenge()
        zones.get("example.com").add(ch.dns_record_name, RecordType.TXT, ch.key_authorization)
        result = validator.validate(ch, T0)
        assert result.domain == "example.com"
        assert not result.reused

    def test_missing_record_fails(self, validator):
        with pytest.raises(ValidationError, match="dns-01"):
            validator.validate(challenge(), T0)

    def test_wrong_token_fails(self, zones, validator):
        ch = challenge()
        zones.get("example.com").add(ch.dns_record_name, RecordType.TXT, "wrong-token")
        with pytest.raises(ValidationError, match="key authorization"):
            validator.validate(ch, T0)


class TestHttp01:
    def test_success(self, validator):
        ch = challenge(ChallengeType.HTTP_01)
        validator.web.provision_http("example.com", ch.http_path, ch.key_authorization)
        assert validator.validate(ch, T0).challenge_type is ChallengeType.HTTP_01

    def test_missing_file_fails(self, validator):
        with pytest.raises(ValidationError, match="http-01"):
            validator.validate(challenge(ChallengeType.HTTP_01), T0)

    def test_clear_domain_removes_provisioning(self, validator):
        ch = challenge(ChallengeType.HTTP_01)
        validator.web.provision_http("example.com", ch.http_path, ch.key_authorization)
        validator.web.clear_domain("example.com")
        with pytest.raises(ValidationError):
            validator.validate(ch, T0)


class TestTlsAlpn01:
    def test_success(self, validator):
        ch = challenge(ChallengeType.TLS_ALPN_01)
        validator.web.provision_alpn("example.com", ch.key_authorization)
        assert validator.validate(ch, T0).challenge_type is ChallengeType.TLS_ALPN_01

    def test_token_mismatch_fails(self, validator):
        ch = challenge(ChallengeType.TLS_ALPN_01)
        validator.web.provision_alpn("example.com", "bad")
        with pytest.raises(ValidationError, match="alpn"):
            validator.validate(ch, T0)


class TestCaa:
    def test_caa_forbids_other_ca(self, zones, validator):
        zones.get("example.com").add(
            "example.com", RecordType.CAA, '0 issue "othertca.example"'
        )
        with pytest.raises(ValidationError, match="CAA"):
            validator.validate(challenge(), T0)

    def test_caa_allows_named_ca(self, zones, validator):
        zones.get("example.com").add(
            "example.com", RecordType.CAA, '0 issue "testca.example"'
        )
        ch = challenge()
        zones.get("example.com").add(ch.dns_record_name, RecordType.TXT, ch.key_authorization)
        validator.validate(ch, T0)

    def test_caa_inherited_from_parent(self, zones, validator):
        zones.get("example.com").add(
            "example.com", RecordType.CAA, '0 issue "othertca.example"'
        )
        ch = challenge(domain="sub.example.com")
        with pytest.raises(ValidationError, match="CAA"):
            validator.validate(ch, T0)


class TestValidationReuse:
    def _validate_once(self, zones, validator, on_day):
        ch = challenge()
        zones.get("example.com").add(ch.dns_record_name, RecordType.TXT, ch.key_authorization)
        return validator.validate(ch, on_day)

    def test_reuse_within_window(self, zones, validator):
        self._validate_once(zones, validator, T0)
        zones.get("example.com").remove("_acme-challenge.example.com", RecordType.TXT)
        result = validator.validate(challenge(), T0 + 100)
        assert result.reused
        assert result.validated_on == T0

    def test_reuse_expires_after_398_days(self, zones, validator):
        self._validate_once(zones, validator, T0)
        zones.get("example.com").remove("_acme-challenge.example.com", RecordType.TXT)
        with pytest.raises(ValidationError):
            validator.validate(challenge(), T0 + VALIDATION_REUSE_DAYS + 1)

    def test_reuse_scoped_to_account(self, zones, validator):
        self._validate_once(zones, validator, T0)
        zones.get("example.com").remove("_acme-challenge.example.com", RecordType.TXT)
        with pytest.raises(ValidationError):
            validator.validate(challenge(account="acct-other"), T0 + 1)

    def test_forget_reuse(self, zones, validator):
        self._validate_once(zones, validator, T0)
        validator.forget_reuse("acct-1", "example.com")
        zones.get("example.com").remove("_acme-challenge.example.com", RecordType.TXT)
        with pytest.raises(ValidationError):
            validator.validate(challenge(), T0 + 1)
