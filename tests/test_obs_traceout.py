"""Unit tests for the bounded trace collector and its export formats."""

import json
import threading

import pytest

from repro.obs import span, use_collector
from repro.obs.traceout import (
    DEFAULT_MAX_EVENTS,
    PHASE_BEGIN,
    PHASE_END,
    PHASE_METADATA,
    TraceCollector,
    get_collector,
    load_trace,
    set_default_collector,
)


class TestCollectorRecording:
    def test_begin_end_pair_per_span(self):
        collector = TraceCollector()
        with use_collector(collector):
            with span("unit_block", day=3):
                pass
        events = collector.events()
        assert [e["ph"] for e in events] == [PHASE_BEGIN, PHASE_END]
        assert all(e["name"] == "unit_block" for e in events)
        assert events[0]["args"] == {"day": 3}
        assert events[1]["args"] == {"status": "ok"}
        assert events[0]["ts"] <= events[1]["ts"]

    def test_events_carry_lane_as_pid(self):
        collector = TraceCollector(lane=5)
        collector.record_begin("x")
        collector.record_end("x")
        assert {e["pid"] for e in collector.events()} == {5}

    def test_no_collector_fast_path_records_nothing(self):
        assert get_collector() is None
        with span("untraced"):
            pass
        # Nothing to assert against directly — the point is that span()
        # neither crashed nor installed a collector as a side effect.
        assert get_collector() is None

    def test_buffer_bound_counts_drops(self):
        collector = TraceCollector(max_events=4)
        for _ in range(3):
            collector.record_begin("s")
            collector.record_end("s")
        assert len(collector) == 4
        assert collector.dropped == 2

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TraceCollector(max_events=0)

    def test_default_bound_is_generous(self):
        assert TraceCollector()._max_events == DEFAULT_MAX_EVENTS

    def test_thread_idents_normalized_in_first_appearance_order(self):
        collector = TraceCollector()
        collector.record_begin("main_side")

        def worker():
            collector.record_begin("worker_side")
            collector.record_end("worker_side")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        collector.record_end("main_side")
        tids = {e["name"]: e["tid"] for e in collector.events()}
        assert tids["main_side"] == 1
        assert tids["worker_side"] == 2

    def test_concurrent_recording_is_safe_and_complete(self):
        collector = TraceCollector()
        per_thread = 50

        def worker():
            for _ in range(per_thread):
                collector.record_begin("hot")
                collector.record_end("hot")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(collector) == 4 * per_thread * 2
        assert collector.dropped == 0


class TestScoping:
    def test_use_collector_scopes_and_restores(self):
        assert get_collector() is None
        with use_collector() as outer:
            assert get_collector() is outer
            with use_collector() as inner:
                assert get_collector() is inner
            assert get_collector() is outer
        assert get_collector() is None

    def test_default_collector_installed_and_removed(self):
        collector = TraceCollector()
        previous = set_default_collector(collector)
        try:
            assert previous is None
            assert get_collector() is collector
        finally:
            set_default_collector(previous)
        assert get_collector() is None

    def test_span_captures_collector_at_entry(self):
        collector = TraceCollector()
        with use_collector(collector):
            with span("captured"):
                pass
        assert len(collector) == 2


class TestSnapshotMerge:
    def test_extend_rewrites_pid_lane(self):
        worker = TraceCollector()
        worker.record_begin("shard_work")
        worker.record_end("shard_work")
        parent = TraceCollector()
        parent.record_begin("coordinate")
        parent.extend(worker.snapshot(), lane=3)
        pids = {e["name"]: e["pid"] for e in parent.events()}
        assert pids["coordinate"] == 0
        assert pids["shard_work"] == 3

    def test_extend_carries_dropped_counts_and_honors_bound(self):
        worker = TraceCollector(max_events=2)
        for _ in range(2):
            worker.record_begin("s")
            worker.record_end("s")
        assert worker.dropped == 2
        parent = TraceCollector(max_events=3)
        parent.record_begin("root")
        parent.extend(worker.snapshot(), lane=1)
        # 1 parent event + 2 worker events fill the bound of 3; the
        # worker's 2 drops carry over, and 0 further overflow here.
        assert len(parent) == 3
        assert parent.dropped == 2

    def test_snapshot_is_json_safe(self):
        collector = TraceCollector()
        collector.record_begin("x", {"day": 7})
        collector.record_end("x")
        payload = json.loads(json.dumps(collector.snapshot()))
        assert payload["version"] == 1
        assert len(payload["events"]) == 2


class TestExport:
    def _populated(self):
        worker = TraceCollector()
        worker.record_begin("shard_work")
        worker.record_end("shard_work")
        parent = TraceCollector()
        parent.record_begin("root")
        parent.record_end("root")
        parent.extend(worker.snapshot(), lane=1)
        return parent

    def test_chrome_document_names_process_lanes(self):
        document = self._populated().to_chrome()
        assert document["displayTimeUnit"] == "ms"
        metadata = [
            e for e in document["traceEvents"] if e["ph"] == PHASE_METADATA
        ]
        lane_names = {e["pid"]: e["args"]["name"] for e in metadata}
        assert lane_names == {0: "main", 1: "shard 0"}

    def test_chrome_write_and_load_round_trip(self, tmp_path):
        collector = self._populated()
        path = str(tmp_path / "trace.json")
        collector.write(path)
        events = load_trace(path)
        # Loaded document includes the 2 process_name metadata events.
        spans = [e for e in events if e["ph"] in (PHASE_BEGIN, PHASE_END)]
        assert len(spans) == 4
        assert {e["pid"] for e in spans} == {0, 1}

    def test_jsonl_write_and_load_round_trip(self, tmp_path):
        collector = self._populated()
        path = str(tmp_path / "trace.jsonl")
        collector.write(path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        assert len(lines) == 4  # JSONL carries events only, no metadata
        assert load_trace(path) == [json.loads(line) for line in lines]

    def test_load_trace_accepts_bare_event_list(self, tmp_path):
        path = str(tmp_path / "bare.json")
        events = [{"name": "x", "ph": "B", "ts": 1.0, "pid": 0, "tid": 1}]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(events, handle)
        assert load_trace(path) == events

    def test_load_trace_rejects_scalar_document(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("42")
        with pytest.raises(ValueError):
            load_trace(path)
