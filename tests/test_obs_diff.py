"""Unit tests for run-artifact loading and regression diffing."""

import pytest

from repro.obs.diff import (
    COUNT,
    TIMING,
    WALL_SERIES,
    RunArtifacts,
    classify_series,
    diff_runs,
    load_run,
)
from repro.obs.runmeta import build_run_manifest, write_run_manifest


def run(samples, label="run", wall=None):
    manifest = None
    if wall is not None:
        manifest = {"wall_seconds": wall}
    return RunArtifacts(label=label, samples=dict(samples), manifest=manifest)


class TestClassify:
    def test_buckets_skipped(self):
        assert classify_series('repro_span_seconds_bucket{le="+Inf"}') is None

    def test_seconds_sum_and_wall_are_timing(self):
        assert classify_series('repro_detector_seconds_sum{detector="x"}') == TIMING
        assert classify_series(WALL_SERIES) == TIMING

    def test_everything_else_is_count(self):
        assert classify_series("repro_findings_total") == COUNT
        assert classify_series('repro_span_seconds_count{name="x"}') == COUNT
        assert classify_series("repro_trace_events_dropped") == COUNT


class TestDiffRuns:
    def test_self_compare_is_clean(self):
        samples = {"a_total": 5, "b_seconds_sum": 1.25}
        diff = diff_runs(run(samples, "a"), run(samples, "b"))
        assert diff.regressions == []
        assert len(diff.deltas) == 2
        assert all(d.delta_pct == 0.0 for d in diff.deltas)

    def test_timing_slowdown_beyond_threshold_regresses(self):
        diff = diff_runs(
            run({"x_seconds_sum": 1.0}),
            run({"x_seconds_sum": 2.0}),
            threshold_pct=25.0,
        )
        (delta,) = diff.regressions
        assert delta.series == "x_seconds_sum"
        assert delta.delta_pct == pytest.approx(100.0)

    def test_timing_speedup_never_regresses(self):
        diff = diff_runs(
            run({"x_seconds_sum": 2.0}), run({"x_seconds_sum": 0.5})
        )
        assert diff.regressions == []

    def test_timing_floor_absorbs_microsecond_noise(self):
        # +900% but only 0.9ms absolute: below the floor, not a regression.
        diff = diff_runs(
            run({"x_seconds_sum": 0.0001}),
            run({"x_seconds_sum": 0.001}),
            threshold_pct=25.0,
        )
        assert diff.regressions == []

    def test_timing_within_threshold_passes(self):
        diff = diff_runs(
            run({"x_seconds_sum": 1.0}),
            run({"x_seconds_sum": 1.2}),
            threshold_pct=25.0,
        )
        assert diff.regressions == []

    def test_count_drift_regresses_in_both_directions(self):
        base = run({"findings_total": 100})
        up = diff_runs(base, run({"findings_total": 200}), threshold_pct=25.0)
        down = diff_runs(base, run({"findings_total": 10}), threshold_pct=25.0)
        assert len(up.regressions) == 1
        assert len(down.regressions) == 1

    def test_count_zero_baseline_to_nonzero_is_infinite_drift(self):
        diff = diff_runs(run({"c_total": 0}), run({"c_total": 3}))
        (delta,) = diff.regressions
        assert delta.delta_pct == float("inf")

    def test_added_and_removed_series_reported_but_never_fail(self):
        diff = diff_runs(
            run({"old_total": 1, "shared_total": 2}),
            run({"new_total": 1, "shared_total": 2}),
        )
        assert diff.added == ["new_total"]
        assert diff.removed == ["old_total"]
        assert diff.regressions == []

    def test_bucket_lines_excluded_from_comparison(self):
        diff = diff_runs(
            run({'h_bucket{le="1"}': 5, "h_count": 5}),
            run({'h_bucket{le="1"}': 50, "h_count": 5}),
        )
        assert [d.series for d in diff.deltas] == ["h_count"]

    def test_wall_seconds_compared_when_both_manifests_present(self):
        diff = diff_runs(
            run({}, wall=1.0), run({}, wall=3.0), threshold_pct=25.0
        )
        (delta,) = diff.regressions
        assert delta.series == WALL_SERIES
        assert delta.kind == TIMING

    def test_wall_skipped_without_both_manifests(self):
        diff = diff_runs(run({}, wall=1.0), run({}))
        assert diff.deltas == []

    def test_delta_rows_rank_regressions_first(self):
        diff = diff_runs(
            run({"a_total": 10, "b_total": 10, "c_total": 10}),
            run({"a_total": 11, "b_total": 100, "c_total": 10}),
            threshold_pct=25.0,
        )
        rows = diff.delta_rows()
        assert rows[0][0] == "b_total"
        assert rows[0][-1] == "REGRESSION"
        assert rows[0][4] == "+900.0%"


class TestLoadRun:
    def _write_metrics(self, path, body):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body, encoding="utf-8")

    def test_bare_metrics_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        self._write_metrics(path, "# TYPE x_total counter\nx_total 4\n")
        artifacts = load_run(str(path))
        assert artifacts.samples == {"x_total": 4.0}
        assert artifacts.wall_seconds is None

    def test_run_directory_resolves_through_manifest(self, tmp_path):
        run_dir = tmp_path / "run"
        self._write_metrics(run_dir / "m.prom", "x_total 7\n")
        write_run_manifest(
            str(run_dir / "run.json"),
            build_run_manifest(
                command="detect",
                wall_seconds=2.5,
                metrics_path=str(run_dir / "m.prom"),
            ),
        )
        artifacts = load_run(str(run_dir))
        assert artifacts.samples == {"x_total": 7.0}
        assert artifacts.wall_seconds == 2.5

    def test_run_directory_falls_back_to_metrics_prom(self, tmp_path):
        run_dir = tmp_path / "run"
        self._write_metrics(run_dir / "metrics.prom", "y_total 1\n")
        artifacts = load_run(str(run_dir))
        assert artifacts.samples == {"y_total": 1.0}

    def test_manifest_path_relocates_with_its_directory(self, tmp_path):
        # Manifest written in one place, whole directory moved: relative
        # artifact paths must still resolve.
        original = tmp_path / "original"
        self._write_metrics(original / "metrics.prom", "z_total 9\n")
        write_run_manifest(
            str(original / "run.json"),
            build_run_manifest(
                command="detect",
                metrics_path=str(original / "metrics.prom"),
            ),
        )
        moved = tmp_path / "moved"
        original.rename(moved)
        artifacts = load_run(str(moved / "run.json"))
        assert artifacts.samples == {"z_total": 9.0}

    def test_missing_metrics_raises_with_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(str(tmp_path / "nowhere"))

    def test_manifest_without_metrics_path_rejected(self, tmp_path):
        manifest_path = tmp_path / "run.json"
        write_run_manifest(
            str(manifest_path), build_run_manifest(command="detect")
        )
        with pytest.raises(ValueError):
            load_run(str(manifest_path))
