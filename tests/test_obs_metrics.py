"""Unit tests for repro.obs.metrics: registry, merge, exposition."""

import itertools
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    get_registry,
    parse_text,
    use_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "help", labels=("op",))
        c.inc(op="a")
        c.inc(2, op="a")
        c.inc(5, op="b")
        assert c.value(op="a") == 3
        assert c.value(op="b") == 5
        assert c.value(op="missing") == 0
        assert registry.counter_total("c_total") == 8

    def test_rejects_negative(self):
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_label_names_enforced(self):
        c = MetricsRegistry().counter("c_total", labels=("op",))
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(1, wrong="x")
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(1)


class TestGauge:
    def test_set_and_set_max(self):
        g = MetricsRegistry().gauge("g")
        g.set(7)
        assert g.value() == 7
        g.set_max(3)
        assert g.value() == 7  # high-water mark keeps the larger
        g.set_max(11)
        assert g.value() == 11
        g.set(2)
        assert g.value() == 2  # plain set always overwrites


class TestHistogramBuckets:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        registry = MetricsRegistry()
        h = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(value)
        data = h.data()
        # le-inclusive: 0.5 and 1.0 in the first bucket, 1.5 and 2.0 in
        # the second, 99.0 in +Inf.
        assert data.bucket_counts == [2, 2, 1]
        assert data.count == 5
        assert data.sum == pytest.approx(104.0)

    def test_rendered_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("h_seconds", "t", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(value)
        samples = parse_text(registry.render_text())
        assert samples['h_seconds_bucket{le="1"}'] == 2
        assert samples['h_seconds_bucket{le="2"}'] == 4
        assert samples['h_seconds_bucket{le="+Inf"}'] == 5
        assert samples["h_seconds_count"] == 5

    def test_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("h", buckets=(1.0, 1.0))

    def test_default_buckets_cover_sub_millisecond_and_minutes(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 30.0


class TestRegistration:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        registry.counter("c", "h", labels=("x",)).inc(1, x="a")
        registry.counter("c", "h", labels=("x",)).inc(1, x="a")
        assert registry.counter_total("c") == 2

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("m")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("a",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("m", labels=("b",))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("m", buckets=(1.0,))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("m", buckets=(2.0,))


def _sample_registry(counter_by_op, gauge_value, observations):
    registry = MetricsRegistry()
    c = registry.counter("jobs_total", "jobs", labels=("op",))
    for op, amount in counter_by_op.items():
        c.inc(amount, op=op)
    registry.gauge("depth", "max depth").set_max(gauge_value)
    h = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    for value in observations:
        h.observe(value)
    return registry


class TestMerge:
    PARTS = [
        ({"a": 2, "b": 1}, 5, [0.05, 0.5]),
        ({"b": 4}, 9, [2.0]),
        ({"a": 1, "c": 7}, 3, [0.05, 0.05, 5.0]),
    ]

    def _merged_record(self, order):
        merged = MetricsRegistry()
        for i in order:
            merged.merge(_sample_registry(*self.PARTS[i]))
        return merged.to_record()

    def test_merge_is_order_independent(self):
        records = [
            self._merged_record(order)
            for order in itertools.permutations(range(len(self.PARTS)))
        ]
        assert all(record == records[0] for record in records)

    def test_merge_is_associative(self):
        a, b, c = (_sample_registry(*part).to_record() for part in self.PARTS)
        left = MetricsRegistry.from_record(a)
        left.merge(b)
        left.merge(c)
        inner = MetricsRegistry.from_record(b)
        inner.merge(c)
        right = MetricsRegistry.from_record(a)
        right.merge(inner)
        assert left.to_record() == right.to_record()

    def test_merge_semantics(self):
        merged = MetricsRegistry()
        for part in self.PARTS:
            merged.merge(_sample_registry(*part))
        assert merged.counter_total("jobs_total") == 15  # counters add
        assert merged.gauge("depth").value() == 9  # gauges take max
        data = merged.histogram("lat_seconds", buckets=(0.1, 1.0)).data()
        assert data.count == 6  # histograms add
        assert data.bucket_counts == [3, 1, 2]

    def test_merge_rejects_differing_bucket_layouts(self):
        one = MetricsRegistry()
        one.histogram("h", buckets=(1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            one.merge(other)

    def test_round_trip_record(self):
        registry = _sample_registry(*self.PARTS[0])
        rebuilt = MetricsRegistry.from_record(registry.to_record())
        assert rebuilt.to_record() == registry.to_record()


class TestRenderText:
    def test_golden_output(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served.", labels=("op",)).inc(
            3, op="fetch"
        )
        registry.gauge("depth", "Queue depth high-water mark.").set(2)
        registry.histogram("lat_seconds", "Latency.", buckets=(0.5,)).observe(0.25)
        assert registry.render_text() == (
            "# HELP depth Queue depth high-water mark.\n"
            "# TYPE depth gauge\n"
            "depth 2\n"
            "# HELP lat_seconds Latency.\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.5"} 1\n'
            'lat_seconds_bucket{le="+Inf"} 1\n'
            "lat_seconds_sum 0.25\n"
            "lat_seconds_count 1\n"
            "# HELP requests_total Requests served.\n"
            "# TYPE requests_total counter\n"
            'requests_total{op="fetch"} 3\n'
        )

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_text() == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("p",)).inc(1, p='sla\\sh "quote"\nline')
        text = registry.render_text()
        assert 'c{p="sla\\\\sh \\"quote\\"\\nline"} 1' in text

    def test_write_textfile_round_trips(self, tmp_path):
        registry = _sample_registry({"a": 2}, 5, [0.05])
        path = registry.write_textfile(str(tmp_path / "sub" / "metrics.prom"))
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert parse_text(text)['jobs_total{op="a"}'] == 2
        assert not (tmp_path / "sub" / "metrics.prom.tmp").exists()


class TestExpositionRoundTrip:
    """render_text -> parse_text must survive the format's edge cases —
    obs-diff compares parsed textfiles, so a lossy round trip would
    silently corrupt the regression gate."""

    def _round_trip(self, registry, tmp_path):
        path = registry.write_textfile(str(tmp_path / "metrics.prom"))
        with open(path, encoding="utf-8") as handle:
            return parse_text(handle.read())

    def test_histogram_inf_bucket_parses_as_infinity(self, tmp_path):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)  # lands only in the +Inf bucket
        samples = self._round_trip(registry, tmp_path)
        assert samples['lat_seconds_bucket{le="0.1"}'] == 1
        assert samples['lat_seconds_bucket{le="1"}'] == 1
        assert samples['lat_seconds_bucket{le="+Inf"}'] == 2
        assert samples["lat_seconds_count"] == 2

    def test_help_with_backslashes_and_newlines_stays_one_line(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter(
            "tricky_total", 'Escapes: back\\slash and\nnewline "quoted".'
        ).inc(3)
        text = registry.render_text()
        (help_line,) = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert help_line == (
            '# HELP tricky_total Escapes: back\\\\slash and\\nnewline "quoted".'
        )
        samples = self._round_trip(registry, tmp_path)
        assert samples == {"tricky_total": 3.0}

    def test_empty_registry_round_trips_to_no_samples(self, tmp_path):
        samples = self._round_trip(MetricsRegistry(), tmp_path)
        assert samples == {}

    def test_parse_ignores_comments_and_blank_lines(self):
        text = "# HELP x_total Something.\n# TYPE x_total counter\n\nx_total 4\n"
        assert parse_text(text) == {"x_total": 4.0}

    def test_inf_sample_value_round_trips(self):
        assert parse_text("edge +Inf\n") == {"edge": float("inf")}


class TestUseRegistry:
    def test_scopes_get_registry(self):
        default = get_registry()
        with use_registry() as scoped:
            assert get_registry() is scoped
            with use_registry() as inner:
                assert get_registry() is inner
            assert get_registry() is scoped
        assert get_registry() is default

    def test_scoping_is_per_thread(self):
        seen = {}

        def worker():
            seen["in_thread"] = get_registry()

        with use_registry() as scoped:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["in_thread"] is not scoped
