"""Tests for PSL rule parsing and the matching algorithm."""

import pytest
from hypothesis import given, strategies as st

from repro.psl.rules import PslRule, PublicSuffixList, parse_rules


class TestRuleParsing:
    def test_plain_rule(self):
        rule = PslRule.parse("co.uk")
        assert rule.labels == ("uk", "co")
        assert not rule.is_exception
        assert not rule.is_wildcard

    def test_exception_rule(self):
        rule = PslRule.parse("!www.ck")
        assert rule.is_exception
        assert rule.labels == ("ck", "www")

    def test_wildcard_rule(self):
        rule = PslRule.parse("*.ck")
        assert rule.is_wildcard

    def test_rejects_comment(self):
        with pytest.raises(ValueError):
            PslRule.parse("// comment")

    def test_rejects_empty_label(self):
        with pytest.raises(ValueError):
            PslRule.parse("a..b")

    def test_parse_rules_skips_comments_and_blanks(self):
        rules = parse_rules(["// header", "", "com", "  ", "*.ck"])
        assert [r.as_text() for r in rules] == ["com", "*.ck"]

    def test_as_text_roundtrip(self):
        for text in ("com", "co.uk", "*.ck", "!www.ck"):
            assert PslRule.parse(text).as_text() == text


@pytest.fixture()
def psl():
    return PublicSuffixList.from_lines(
        ["com", "uk", "co.uk", "*.ck", "!www.ck", "jp", "co.jp"]
    )


class TestMatching:
    def test_simple_tld(self, psl):
        assert psl.public_suffix("example.com") == "com"
        assert psl.registrable_domain("example.com") == "example.com"

    def test_subdomain(self, psl):
        assert psl.registrable_domain("a.b.example.com") == "example.com"

    def test_multi_label_suffix(self, psl):
        assert psl.public_suffix("foo.co.uk") == "co.uk"
        assert psl.registrable_domain("foo.co.uk") == "foo.co.uk"
        assert psl.registrable_domain("www.foo.co.uk") == "foo.co.uk"

    def test_longest_rule_wins(self, psl):
        # Both "uk" and "co.uk" match; co.uk is longer.
        assert psl.public_suffix("x.co.uk") == "co.uk"
        assert psl.public_suffix("x.org.uk") == "uk"  # org.uk not listed here

    def test_wildcard_rule(self, psl):
        assert psl.public_suffix("foo.anything.ck") == "anything.ck"
        assert psl.registrable_domain("foo.anything.ck") == "foo.anything.ck"

    def test_exception_beats_wildcard(self, psl):
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.registrable_domain("www.ck") == "www.ck"
        assert psl.registrable_domain("sub.www.ck") == "www.ck"

    def test_unknown_tld_falls_back_to_rightmost_label(self, psl):
        assert psl.public_suffix("example.zz") == "zz"
        assert psl.registrable_domain("example.zz") == "example.zz"

    def test_bare_suffix_has_no_registrable_domain(self, psl):
        assert psl.registrable_domain("com") is None
        assert psl.registrable_domain("co.uk") is None

    def test_is_public_suffix(self, psl):
        assert psl.is_public_suffix("co.uk")
        assert not psl.is_public_suffix("foo.co.uk")

    def test_case_and_trailing_dot_normalization(self, psl):
        assert psl.registrable_domain("WWW.Example.COM.") == "example.com"

    @given(st.text(alphabet="abc", min_size=1, max_size=4))
    def test_registrable_is_suffix_of_input(self, label):
        psl = PublicSuffixList.from_lines(["com"])
        domain = f"{label}.example.com"
        registrable = psl.registrable_domain(domain)
        assert registrable is not None
        assert domain.endswith(registrable)
