"""Tests for the world simulator (uses the shared small world)."""

import pytest

from repro.core.detectors.managed_tls import is_cloudflare_managed_certificate
from repro.ecosystem import WorldConfig, WorldSimulator
from repro.ecosystem.events import GroundTruthEventType
from repro.util.dates import day, year_of


class TestWorldShape:
    def test_dataset_summary_nonempty(self, small_world):
        summary = small_world.dataset_summary()
        assert summary["ct_unique_certificates"] > 500
        assert summary["registered_domains"] > 200
        assert summary["dns_scan_days"] == 91
        assert summary["crls_collected"] > 0
        assert summary["whois_creation_pairs"] > 0

    def test_corpus_smaller_than_raw_submissions(self, small_world):
        # Precert/final dedup must collapse entries.
        assert small_world.corpus.stats.duplicates_collapsed > 0

    def test_cloudflare_managed_certs_exist(self, small_world):
        managed = [
            c for c in small_world.corpus.certificates()
            if is_cloudflare_managed_certificate(c)
        ]
        assert managed

    def test_cruiseliner_certs_have_many_sans(self, small_world):
        cruise = [
            c for c in small_world.corpus.certificates()
            if c.issuer_name == "COMODO ECC DV Secure Server CA 2"
        ]
        assert cruise
        assert max(len(c.san_dns_names) for c in cruise) > 10

    def test_ninety_day_and_year_certs_both_present(self, small_world):
        lifetimes = {c.lifetime_days for c in small_world.corpus.certificates()}
        assert any(lt <= 90 for lt in lifetimes)
        assert any(lt >= 300 for lt in lifetimes)

    def test_post_2020_certs_respect_398_limit(self, small_world):
        for cert in small_world.corpus.certificates():
            if cert.not_before >= day(2020, 9, 1):
                assert cert.lifetime_days <= 398

    def test_whois_pairs_respect_window(self, small_world):
        timeline = small_world.config.timeline
        for _domain, creation in small_world.whois_creation_pairs:
            assert creation <= timeline.whois_end

    def test_ground_truth_covers_key_event_types(self, small_world):
        kinds = {e.event_type for e in small_world.ground_truth}
        for required in (
            GroundTruthEventType.DOMAIN_REGISTERED,
            GroundTruthEventType.DOMAIN_RE_REGISTERED,
            GroundTruthEventType.DOMAIN_TRANSFERRED,
            GroundTruthEventType.CERT_ISSUED,
            GroundTruthEventType.CERT_REVOKED,
            GroundTruthEventType.MANAGED_TLS_ENROLLED,
            GroundTruthEventType.MANAGED_TLS_DEPARTED,
            GroundTruthEventType.KEY_COMPROMISED,
        ):
            assert required in kinds, required

    def test_godaddy_breach_fired(self, small_world):
        breach = [
            e for e in small_world.ground_truth
            if e.party_id == "attacker:godaddy-breach"
        ]
        assert breach
        assert breach[0].day == small_world.config.timeline.godaddy_breach_disclosure

    def test_snapshots_cover_scan_window_densely(self, small_world):
        days = small_world.dns_snapshots.days()
        timeline = small_world.config.timeline
        assert days[0] == timeline.dns_scan_start
        assert days[-1] == timeline.dns_scan_end
        assert len(days) == timeline.dns_scan_end - timeline.dns_scan_start + 1

    def test_popularity_ranks_sparse_and_bounded(self, small_world):
        ranks = small_world.popularity_ranks
        total = small_world.dataset_summary()["registered_domains"]
        assert 0 < len(ranks) < total  # only some domains enter the top lists
        assert all(1 <= r <= 1_000_000 for r in ranks.values())

    def test_malicious_ownership_spans_well_formed(self, small_world):
        for domain, owner, start, end in small_world.malicious_ownership:
            assert start <= end
            assert owner.startswith("registrant-")


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig(seed=99).scaled(0.02)
        a = WorldSimulator(config).run()
        b = WorldSimulator(config).run()
        assert a.dataset_summary() == b.dataset_summary()
        fps_a = sorted(c.dedup_fingerprint() for c in a.corpus.certificates())
        fps_b = sorted(c.dedup_fingerprint() for c in b.corpus.certificates())
        assert fps_a == fps_b

    def test_different_seed_different_world(self):
        a = WorldSimulator(WorldConfig(seed=1).scaled(0.02)).run()
        b = WorldSimulator(WorldConfig(seed=2).scaled(0.02)).run()
        assert a.dataset_summary() != b.dataset_summary()
