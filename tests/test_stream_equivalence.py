"""Acceptance criterion: streaming replay == batch pipeline, exactly.

The streaming engine must produce a StaleFindings set identical to
``MeasurementPipeline.run()`` over the same world — same certificates, same
classes, same invalidation days, same details — plus identical revocation
join statistics. Runs against the session-scoped small world (a full
2013–2023 simulation) and a few reduced bundles that exercise the
detector-skipping edges of the batch pipeline.
"""

import pytest

from repro import MeasurementPipeline
from repro.core.pipeline import DatasetBundle
from repro.core.stale import StalenessClass
from repro.stream import StreamEngine, canonical_findings, verify_equivalence


@pytest.fixture(scope="module")
def small_bundle(small_world):
    return small_world.to_bundle()


@pytest.fixture(scope="module")
def cutoff(small_world):
    return small_world.config.timeline.revocation_cutoff


@pytest.fixture(scope="module")
def stream_result(small_bundle, cutoff):
    return StreamEngine(small_bundle, revocation_cutoff_day=cutoff).replay()


class TestFullWorldEquivalence:
    def test_replay_completes(self, stream_result):
        assert stream_result.complete
        assert stream_result.stats.days_processed > 0

    def test_findings_identical_to_batch(self, small_bundle, cutoff, stream_result):
        ok, batch = verify_equivalence(
            small_bundle, stream_result.findings, revocation_cutoff_day=cutoff
        )
        assert ok, "streaming findings diverge from the batch pipeline"
        # Non-trivial: the world actually produces findings in every class.
        produced = {f.staleness_class for f in batch.findings.all_findings()}
        assert StalenessClass.REVOKED_ALL in produced
        assert StalenessClass.REGISTRANT_CHANGE in produced
        assert StalenessClass.MANAGED_TLS_DEPARTURE in produced

    def test_revocation_stats_identical(self, small_bundle, cutoff, stream_result):
        batch = MeasurementPipeline(
            small_bundle, revocation_cutoff_day=cutoff
        ).run()
        assert stream_result.revocation_stats == batch.revocation_stats

    def test_to_pipeline_result_feeds_report_layer(self, stream_result):
        from repro.analysis.aggregate import build_table4

        rows = build_table4(stream_result.to_pipeline_result())
        assert rows  # Table 4 renders from the streaming result

    def test_stats_count_every_finding_emission(self, stream_result):
        # Emission count >= converged count (revisions re-emit), and every
        # converged class appears in the stats.
        converged = {}
        for finding in stream_result.findings.all_findings():
            key = finding.staleness_class.value
            converged[key] = converged.get(key, 0) + 1
        for class_value, count in converged.items():
            assert stream_result.stats.findings_by_class.get(class_value, 0) >= count


class TestReducedBundles:
    """The batch pipeline skips detectors for absent datasets; streaming
    must land in exactly the same place."""

    def _equivalent(self, bundle, cutoff):
        result = StreamEngine(bundle, revocation_cutoff_day=cutoff).replay()
        ok, batch = verify_equivalence(
            bundle, result.findings, revocation_cutoff_day=cutoff
        )
        assert ok
        return result, batch

    def test_ct_only(self, small_bundle, cutoff):
        bundle = DatasetBundle(corpus=small_bundle.corpus)
        result, _ = self._equivalent(bundle, cutoff)
        assert canonical_findings(result.findings) == []
        assert result.revocation_stats is None

    def test_no_dns(self, small_bundle, cutoff):
        bundle = DatasetBundle(
            corpus=small_bundle.corpus,
            crls=small_bundle.crls,
            whois_creation_pairs=small_bundle.whois_creation_pairs,
        )
        result, batch = self._equivalent(bundle, cutoff)
        classes = {f.staleness_class for f in result.findings.all_findings()}
        assert StalenessClass.MANAGED_TLS_DEPARTURE not in classes

    def test_no_whois_tlds(self, small_bundle, cutoff):
        result = StreamEngine(
            small_bundle, revocation_cutoff_day=cutoff, whois_tlds=()
        ).replay()
        ok, _ = verify_equivalence(
            small_bundle, result.findings, revocation_cutoff_day=cutoff, whois_tlds=()
        )
        assert ok
        classes = {f.staleness_class for f in result.findings.all_findings()}
        assert StalenessClass.REGISTRANT_CHANGE not in classes
