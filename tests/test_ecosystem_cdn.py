"""Tests for the Cloudflare managed-TLS service."""

import pytest

from repro.core.detectors.managed_tls import is_cloudflare_managed_certificate
from repro.dns.records import RecordType
from repro.dns.zone import ZoneStore
from repro.ecosystem.cas import build_standard_cas
from repro.ecosystem.cdn import CLOUDFLARE_NAMESERVERS, CloudflareService
from repro.ecosystem.timeline import DEFAULT_TIMELINE
from repro.pki.keys import KeyStore
from repro.util.dates import day
from repro.util.rng import RngStream

T_CRUISE = day(2018, 3, 1)  # cruise-liner era
T_MODERN = day(2021, 3, 1)  # per-domain era


@pytest.fixture()
def service(key_store):
    registry = build_standard_cas(key_store, established=day(2013, 3, 1))
    zones = ZoneStore()
    return CloudflareService(
        registry, key_store, zones, DEFAULT_TIMELINE, RngStream(5, "cdn-test")
    ), zones


class TestEnrollment:
    def test_cruiseliner_era_batches_customers(self, service):
        svc, _zones = service
        certs = []
        for i in range(3):
            certs.extend(svc.enroll(f"cust{i}.com", T_CRUISE))
        # Every enrollment re-issues the shared batch certificate.
        assert len(certs) == 3
        last = certs[-1]
        assert is_cloudflare_managed_certificate(last)
        assert {"cust0.com", "cust1.com", "cust2.com"} <= last.fqdns()
        assert last.issuer_name == "COMODO ECC DV Secure Server CA 2"

    def test_per_domain_era_individual_certs(self, service):
        svc, _zones = service
        certs = svc.enroll("modern.com", T_MODERN)
        assert len(certs) == 1
        assert certs[0].issuer_name == "CloudFlare ECC CA-2"
        assert "modern.com" in certs[0].fqdns()
        assert is_cloudflare_managed_certificate(certs[0])

    def test_enroll_sets_cloudflare_delegation(self, service):
        svc, zones = service
        svc.enroll("modern.com", T_MODERN)
        ns = zones.get("modern.com").lookup("modern.com", RecordType.NS)
        assert {r.rdata for r in ns} == set(CLOUDFLARE_NAMESERVERS)

    def test_double_enroll_is_noop(self, service):
        svc, _zones = service
        svc.enroll("modern.com", T_MODERN)
        assert svc.enroll("modern.com", T_MODERN + 1) == []

    def test_batches_cap_at_32_members(self, service):
        svc, _zones = service
        for i in range(40):
            svc.enroll(f"bulk{i}.com", T_CRUISE)
        batches = svc._batches
        assert len(batches) >= 2
        assert all(len(b.members) <= 32 for b in batches)


class TestDeparture:
    def test_departure_changes_delegation_keeps_certs(self, service):
        svc, zones = service
        (cert,) = svc.enroll("leaver.com", T_MODERN)
        svc.depart("leaver.com", T_MODERN + 100, "newhost.net")
        ns = {r.rdata for r in zones.get("leaver.com").lookup("leaver.com", RecordType.NS)}
        assert ns == {"ns1.newhost.net", "ns2.newhost.net"}
        # The CDN still holds a valid certificate: the §5.3 scenario.
        assert cert.is_valid_on(T_MODERN + 100)
        assert svc.active_certificates_for("leaver.com", T_MODERN + 100) == [cert]
        assert not svc.is_customer("leaver.com")

    def test_departure_of_batch_member_reissues_batch(self, service):
        svc, _zones = service
        for i in range(3):
            svc.enroll(f"cust{i}.com", T_CRUISE)
        issued_before = len(svc.issued)
        svc.depart("cust1.com", T_CRUISE + 30, "newhost.net")
        assert len(svc.issued) == issued_before + 1
        newest = svc.issued[-1]
        assert "cust1.com" not in newest.fqdns()
        assert "cust0.com" in newest.fqdns()

    def test_depart_unknown_customer_raises(self, service):
        svc, _zones = service
        with pytest.raises(KeyError):
            svc.depart("ghost.com", T_MODERN, "newhost.net")

    def test_drop_dead_stops_renewals_without_dns_change(self, service):
        svc, zones = service
        svc.enroll("dead.com", T_MODERN)
        svc.drop_dead("dead.com")
        assert not svc.is_customer("dead.com")
        assert svc.renew_due(T_MODERN + 300) == []  # nothing left to renew


class TestRenewals:
    def test_per_domain_renewal_near_expiry(self, service):
        svc, _zones = service
        (cert,) = svc.enroll("renewer.com", T_MODERN)
        renewed = svc.renew_due(cert.not_after - 100)
        assert len(renewed) == 1
        assert renewed[0].not_before == cert.not_after - 100

    def test_no_renewal_when_fresh(self, service):
        svc, _zones = service
        svc.enroll("fresh.com", T_MODERN)
        assert svc.renew_due(T_MODERN + 10) == []
