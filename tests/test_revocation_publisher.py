"""Tests for CA-side CRL publication and CCADB-style disclosure."""

import pytest

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.revocation.publisher import CaCrlPublisher, DisclosureList
from repro.revocation.reasons import RevocationReason
from repro.util.dates import day

T0 = day(2021, 6, 1)


@pytest.fixture()
def ca(key_store):
    return CertificateAuthority(
        "Pub CA", key_store, policy=IssuancePolicy(require_validation=False)
    )


@pytest.fixture()
def issued(ca, key_store):
    key = key_store.generate("sub", T0)
    return [ca.issue([f"d{i}.com"], key, T0) for i in range(3)]


class TestRevoke:
    def test_revoke_and_publish(self, ca, issued):
        publisher = CaCrlPublisher(ca)
        publisher.revoke(issued[0], T0 + 10, RevocationReason.KEY_COMPROMISE)
        crl = publisher.publish(T0 + 20)
        assert len(crl) == 1
        entry = crl.is_revoked(issued[0].serial)
        assert entry.reason is RevocationReason.KEY_COMPROMISE
        assert entry.revocation_day == T0 + 10

    def test_revoke_idempotent_first_wins(self, ca, issued):
        publisher = CaCrlPublisher(ca)
        first = publisher.revoke(issued[0], T0 + 10, RevocationReason.SUPERSEDED)
        second = publisher.revoke(issued[0], T0 + 20, RevocationReason.KEY_COMPROMISE)
        assert first is second
        assert publisher.is_revoked(issued[0].serial).reason is RevocationReason.SUPERSEDED

    def test_foreign_certificate_rejected(self, ca, key_store):
        other = CertificateAuthority(
            "Other CA", key_store, policy=IssuancePolicy(require_validation=False)
        )
        key = key_store.generate("sub", T0)
        foreign = other.issue(["x.com"], key, T0)
        publisher = CaCrlPublisher(ca)
        with pytest.raises(ValueError):
            publisher.revoke(foreign, T0)

    def test_mozilla_reason_normalization(self, ca, issued):
        publisher = CaCrlPublisher(ca, enforce_mozilla_reasons=True)
        record = publisher.revoke(issued[0], T0, RevocationReason.CERTIFICATE_HOLD)
        assert record.reason is RevocationReason.UNSPECIFIED

    def test_reason_preserved_without_enforcement(self, ca, issued):
        publisher = CaCrlPublisher(ca, enforce_mozilla_reasons=False)
        record = publisher.revoke(issued[0], T0, RevocationReason.CERTIFICATE_HOLD)
        assert record.reason is RevocationReason.CERTIFICATE_HOLD


class TestPublish:
    def test_future_revocations_not_published(self, ca, issued):
        publisher = CaCrlPublisher(ca)
        publisher.revoke(issued[0], T0 + 100)
        assert len(publisher.publish(T0 + 50)) == 0
        assert len(publisher.publish(T0 + 100)) == 1

    def test_expired_entries_retained_by_default(self, ca, issued):
        publisher = CaCrlPublisher(ca)
        publisher.revoke(issued[0], T0 + 10)
        after_expiry = issued[0].not_after + 30
        assert len(publisher.publish(after_expiry)) == 1

    def test_shed_expired_option(self, ca, issued):
        publisher = CaCrlPublisher(ca, shed_expired=True)
        publisher.revoke(issued[0], T0 + 10)
        assert len(publisher.publish(issued[0].not_after + 1)) == 0

    def test_same_day_publish_cached(self, ca, issued):
        publisher = CaCrlPublisher(ca)
        publisher.revoke(issued[0], T0)
        a = publisher.publish(T0 + 1)
        b = publisher.publish(T0 + 1)
        assert a is b
        c = publisher.publish(T0 + 2)
        assert c is not a

    def test_crl_window(self, ca):
        publisher = CaCrlPublisher(ca, crl_validity_days=3)
        crl = publisher.publish(T0)
        assert crl.next_update == T0 + 3


class TestDisclosure:
    def test_single_endpoint(self, ca):
        disclosure = DisclosureList()
        rows = disclosure.disclose(CaCrlPublisher(ca))
        assert len(rows) == 1
        assert len(disclosure) == 1

    def test_multiple_endpoints_distinct_urls(self, ca):
        disclosure = DisclosureList()
        rows = disclosure.disclose(CaCrlPublisher(ca), endpoints=3)
        urls = {row.url for row in rows}
        assert len(urls) == 3

    def test_zero_endpoints_rejected(self, ca):
        with pytest.raises(ValueError):
            DisclosureList().disclose(CaCrlPublisher(ca), endpoints=0)

    def test_by_operator_grouping(self, ca, key_store):
        other = CertificateAuthority(
            "Other CA",
            key_store,
            policy=IssuancePolicy(require_validation=False),
            operator="OtherOp",
        )
        disclosure = DisclosureList()
        disclosure.disclose(CaCrlPublisher(ca), endpoints=2)
        disclosure.disclose(CaCrlPublisher(other))
        grouped = disclosure.by_operator()
        assert len(grouped["Pub CA"]) == 2
        assert len(grouped["OtherOp"]) == 1
