"""Tests for keypairs and custody tracking."""

from repro.pki.keys import KeyAlgorithm, KeyStore
from repro.util.dates import day

T0 = day(2020, 1, 1)


class TestKeyPair:
    def test_unique_ids(self, key_store):
        a = key_store.generate("alice", T0)
        b = key_store.generate("alice", T0)
        assert a.key_id != b.key_id

    def test_fingerprint_deterministic_per_key(self, key_store):
        key = key_store.generate("alice", T0)
        assert key.spki_fingerprint == key.spki_fingerprint
        assert len(key.spki_fingerprint) == 40

    def test_fingerprints_differ_between_keys(self, key_store):
        a = key_store.generate("alice", T0)
        b = key_store.generate("alice", T0)
        assert a.spki_fingerprint != b.spki_fingerprint

    def test_algorithm_choice(self, key_store):
        key = key_store.generate("alice", T0, KeyAlgorithm.RSA_2048)
        assert key.algorithm is KeyAlgorithm.RSA_2048


class TestCustody:
    def test_generator_holds_initially(self, key_store):
        key = key_store.generate("alice", T0)
        assert key_store.holders_on(key, T0) == frozenset({"alice"})

    def test_nobody_holds_before_generation(self, key_store):
        key = key_store.generate("alice", T0)
        assert key_store.holders_on(key, T0 - 1) == frozenset()

    def test_grant_adds_holder(self, key_store):
        key = key_store.generate("alice", T0)
        key_store.grant(key, "cdn", T0 + 5, reason="upload")
        assert key_store.holders_on(key, T0 + 5) == frozenset({"alice", "cdn"})
        assert key_store.holders_on(key, T0 + 4) == frozenset({"alice"})

    def test_revoke_custody_removes_holder(self, key_store):
        key = key_store.generate("alice", T0)
        key_store.grant(key, "cdn", T0 + 5)
        key_store.revoke_custody(key, "cdn", T0 + 10)
        assert key_store.holders_on(key, T0 + 10) == frozenset({"alice"})

    def test_out_of_order_events_sorted_by_day(self, key_store):
        key = key_store.generate("alice", T0)
        key_store.grant(key, "late", T0 + 20)
        key_store.grant(key, "early", T0 + 2)
        assert key_store.holders_on(key, T0 + 3) == frozenset({"alice", "early"})

    def test_is_compromised_on(self, key_store):
        key = key_store.generate("alice", T0)
        key_store.grant(key, "cdn", T0 + 1)  # authorized third party
        key_store.grant(key, "attacker", T0 + 10, reason="breach")
        assert not key_store.is_compromised_on(key, ["alice", "cdn"], T0 + 5)
        assert key_store.is_compromised_on(key, ["alice", "cdn"], T0 + 10)

    def test_custody_history(self, key_store):
        key = key_store.generate("alice", T0)
        key_store.grant(key, "cdn", T0 + 1)
        history = key_store.custody_history(key)
        assert [e.party_id for e in history] == ["alice", "cdn"]
        assert history[0].reason == "generated"
