"""Tests for master-file zone serialization (the CZDS analogue)."""

import pytest

from repro.dns.records import RecordType
from repro.dns.zone import Zone, ZoneStore
from repro.dns.zonefile import (
    extract_apexes,
    parse_zone,
    render_store,
    render_zone,
)


@pytest.fixture()
def zone():
    zone = Zone("example.com")
    zone.add("example.com", RecordType.NS, "ns1.dns.net")
    zone.add("example.com", RecordType.NS, "ns2.dns.net")
    zone.add("example.com", RecordType.A, "192.0.2.1")
    zone.add("www.example.com", RecordType.CNAME, "edge.cdn.net")
    zone.add("_acme-challenge.example.com", RecordType.TXT, "token-value", ttl=120)
    zone.add("example.com", RecordType.CAA, '0 issue "letsencrypt.org"')
    return zone


class TestRender:
    def test_directives_present(self, zone):
        text = render_zone(zone)
        assert text.startswith("$ORIGIN example.com.")
        assert "$TTL 3600" in text
        assert "SOA" in text

    def test_apex_rendered_as_at(self, zone):
        text = render_zone(zone)
        assert "@\tIN\tNS\tns1.dns.net." in text

    def test_relative_names(self, zone):
        text = render_zone(zone)
        assert "www\tIN\tCNAME\tedge.cdn.net." in text

    def test_nondefault_ttl_emitted(self, zone):
        text = render_zone(zone)
        assert "120\tIN\tTXT" in text


class TestRoundtrip:
    def test_full_roundtrip(self, zone):
        parsed = parse_zone(render_zone(zone))
        assert parsed.apex == "example.com"
        original = {r.key() for r in zone.all_records()}
        restored = {r.key() for r in parsed.all_records()}
        assert restored == original

    def test_ttl_preserved(self, zone):
        parsed = parse_zone(render_zone(zone))
        txt = parsed.lookup("_acme-challenge.example.com", RecordType.TXT)
        assert txt[0].ttl == 120

    def test_comments_and_blanks_tolerated(self):
        text = (
            "$ORIGIN foo.com.\n"
            "$TTL 300\n"
            "; a comment line\n"
            "\n"
            "@\tIN\tNS\tns1.host.net. ; trailing comment\n"
        )
        parsed = parse_zone(text)
        assert parsed.lookup("foo.com", RecordType.NS)[0].rdata == "ns1.host.net"

    def test_absolute_owner_names(self):
        text = "$ORIGIN foo.com.\nbar.foo.com.\tIN\tA\t192.0.2.9\n"
        parsed = parse_zone(text)
        assert parsed.lookup("bar.foo.com", RecordType.A)

    def test_record_before_origin_rejected(self):
        with pytest.raises(ValueError, match="before \\$ORIGIN"):
            parse_zone("@\tIN\tA\t192.0.2.1\n")

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValueError, match="unsupported type"):
            parse_zone("$ORIGIN foo.com.\n@\tIN\tMX\t10 mail.foo.com.\n")

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no records"):
            parse_zone("; nothing here\n")


class TestStoreDump:
    def test_render_store_and_extract_apexes(self, zone):
        store = ZoneStore()
        a = store.create("alpha.com")
        a.add("alpha.com", RecordType.A, "192.0.2.1")
        b = store.create("beta.net")
        b.add("beta.net", RecordType.NS, "ns1.x.net")
        dump = render_store(store)
        assert extract_apexes(dump) == ["alpha.com", "beta.net"]
