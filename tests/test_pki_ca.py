"""Tests for CA issuance and policy enforcement."""

import pytest

from repro.pki.ca import CertificateAuthority, IssuanceError, IssuancePolicy
from repro.pki.keys import KeyStore
from repro.util.dates import day

T_LEGACY = day(2016, 6, 1)
T_825 = day(2019, 6, 1)
T_398 = day(2021, 6, 1)


@pytest.fixture()
def ca(key_store):
    return CertificateAuthority(
        "Test CA",
        key_store,
        policy=IssuancePolicy(require_validation=False),
    )


class TestIssue:
    def test_basic_issuance(self, ca, key_store):
        key = key_store.generate("sub", T_398)
        cert = ca.issue(["example.com"], key, T_398)
        assert cert.issuer_name == "Test CA"
        assert cert.authority_key_id == ca.authority_key_id
        assert cert.not_after - cert.not_before == ca.policy.default_lifetime_days
        assert cert.crl_url == ca.crl_url
        assert ca.find_by_serial(cert.serial) is cert

    def test_serials_unique_and_increasing(self, ca, key_store):
        key = key_store.generate("sub", T_398)
        serials = [ca.issue(["example.com"], key, T_398).serial for _ in range(5)]
        assert serials == sorted(set(serials))

    def test_empty_names_rejected(self, ca, key_store):
        key = key_store.generate("sub", T_398)
        with pytest.raises(IssuanceError):
            ca.issue([], key, T_398)

    def test_lifetime_over_policy_rejected(self, ca, key_store):
        key = key_store.generate("sub", T_398)
        with pytest.raises(IssuanceError, match="exceeds maximum"):
            ca.issue(["example.com"], key, T_398, lifetime_days=399)

    def test_forum_limits_shrink_over_time(self, key_store):
        lenient = CertificateAuthority(
            "Legacy CA",
            key_store,
            policy=IssuancePolicy(max_lifetime_days=1200, require_validation=False),
        )
        key = key_store.generate("sub", T_LEGACY)
        legacy = lenient.issue(["a.com"], key, T_LEGACY, lifetime_days=1100)
        assert legacy.lifetime_days == 1100
        with pytest.raises(IssuanceError):
            lenient.issue(["a.com"], key, T_825, lifetime_days=900)
        with pytest.raises(IssuanceError):
            lenient.issue(["a.com"], key, T_398, lifetime_days=500)

    def test_validation_required_without_validator(self, key_store):
        strict = CertificateAuthority("Strict CA", key_store)
        key = key_store.generate("sub", T_398)
        with pytest.raises(IssuanceError, match="no DV validator"):
            strict.issue(["example.com"], key, T_398)

    def test_skip_validation_flag(self, key_store):
        strict = CertificateAuthority("Strict CA", key_store)
        key = key_store.generate("sub", T_398)
        cert = strict.issue(["example.com"], key, T_398, skip_validation=True)
        assert cert.serial > 0

    def test_issued_count(self, ca, key_store):
        key = key_store.generate("sub", T_398)
        ca.issue(["a.com"], key, T_398)
        ca.issue(["b.com"], key, T_398)
        assert ca.issued_count() == 2


class TestPolicy:
    def test_effective_max_respects_self_imposed_limit(self):
        policy = IssuancePolicy(max_lifetime_days=90)
        assert policy.effective_max(T_LEGACY) == 90
        assert policy.effective_max(T_398) == 90

    def test_effective_max_without_forum_limits(self):
        policy = IssuancePolicy(max_lifetime_days=5000, enforce_forum_limits=False)
        assert policy.effective_max(T_398) == 5000
