"""Fixture-corpus tests: every rule fires on its bad snippet, stays quiet
on its good one, and the project rules resolve the real registries."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.lint import FileContext, ImportMap, LintRunner, ProjectIndex
from repro.lint.base import ClassInfo, all_rules
from repro.lint.rules_protocol import (
    BatchDetectorProtocolRule,
    StreamDetectorProtocolRule,
)

FIXTURE_DIR = Path(__file__).parent / "lint_fixtures"

#: Synthetic lint paths placing each fixture inside its rule's scope.
SYNTHETIC_PATHS = {
    "RL401": "fixtures/repro/core/pipeline.py",
    "RL402": "fixtures/repro/stream/engine.py",
    "RL503": "src/repro/serve/app.py",
}
DEFAULT_PATH = "src/repro/core/fixture_under_test.py"


def fixture_cases():
    for path in sorted(FIXTURE_DIR.glob("rl*_*.py")):
        code = path.name.split("_")[0].upper()
        expect_findings = path.name.split("_")[1] == "bad"
        yield pytest.param(path, code, expect_findings, id=path.stem)
    # Whole-program rules need more than one file; their fixtures are
    # directory trees under flow/ whose layout *is* the synthetic path.
    for path in sorted((FIXTURE_DIR / "flow").glob("rl*_*")):
        if path.is_dir():
            code = path.name.split("_")[0].upper()
            expect_findings = path.name.split("_")[1] == "bad"
            yield pytest.param(path, code, expect_findings, id=path.name)


def lint_fixture(path: Path, code: str):
    if path.is_dir():
        return lint_fixture_tree(path)
    lint_path = SYNTHETIC_PATHS.get(code, DEFAULT_PATH)
    return LintRunner().run_source(path.read_text(), lint_path)


def lint_fixture_tree(root: Path):
    """Lint a directory fixture; file paths inside it are the lint paths."""
    contexts = {}
    for file in sorted(root.rglob("*.py")):
        lint_path = file.relative_to(root).as_posix()
        contexts[lint_path] = FileContext.parse(lint_path, file.read_text())
    return LintRunner().run_contexts(contexts)


class TestFixtureCorpus:
    @pytest.mark.parametrize("path, code, expect_findings", list(fixture_cases()))
    def test_fixture(self, path, code, expect_findings):
        codes = [finding.code for finding in lint_fixture(path, code)]
        assert "RL000" not in codes, "fixture must parse"
        if expect_findings:
            assert code in codes, f"{path.name} should trigger {code}, got {codes}"
        else:
            assert code not in codes, f"{path.name} should not trigger {code}: {codes}"

    def test_every_rule_has_a_failing_fixture(self):
        """Each shipped rule's code is proven to fire by >= 1 bad fixture."""
        covered = {
            path.name.split("_")[0].upper()
            for path in FIXTURE_DIR.glob("rl*_bad_*.py")
        } | {
            path.name.split("_")[0].upper()
            for path in (FIXTURE_DIR / "flow").glob("rl*_bad_*")
        }
        for rule in all_rules():
            assert rule.code in covered, f"no failing fixture for {rule.code}"

    def test_every_rule_has_a_good_fixture(self):
        covered = {
            path.name.split("_")[0].upper()
            for path in FIXTURE_DIR.glob("rl*_good_*.py")
        } | {
            path.name.split("_")[0].upper()
            for path in (FIXTURE_DIR / "flow").glob("rl*_good_*")
        }
        for rule in all_rules():
            assert rule.code in covered, f"no passing fixture for {rule.code}"


class TestRuleDetails:
    def test_wall_clock_reports_each_call(self):
        findings = lint_fixture(FIXTURE_DIR / "rl101_bad_wall_clock.py", "RL101")
        assert len([f for f in findings if f.code == "RL101"]) == 3

    def test_wall_clock_out_of_scope_paths_ignored(self):
        source = "from time import time\nNOW = time()\n"
        findings = LintRunner().run_source(source, "src/repro/obs/clock.py")
        assert not [f for f in findings if f.code == "RL101"]
        findings = LintRunner().run_source(source, "tests/test_something.py")
        assert not [f for f in findings if f.code == "RL101"]

    def test_global_random_flags_aliased_import(self):
        source = "import random as rnd\n\ndef f():\n    return rnd.random()\n"
        findings = LintRunner().run_source(source, DEFAULT_PATH)
        assert [f.code for f in findings] == ["RL102"]

    def test_seeded_random_instance_allowed(self):
        source = "import random\nR = random.Random(7)\n"
        findings = LintRunner().run_source(source, DEFAULT_PATH)
        assert not [f for f in findings if f.code == "RL102"]

    def test_set_iteration_fix_metadata_present(self):
        findings = lint_fixture(FIXTURE_DIR / "rl103_bad_set_iteration.py", "RL103")
        rl103 = [f for f in findings if f.code == "RL103"]
        assert rl103 and all(f.fixable for f in rl103)

    def test_metric_name_findings_name_each_failure_mode(self):
        findings = lint_fixture(FIXTURE_DIR / "rl301_bad_metric_names.py", "RL301")
        messages = " / ".join(f.message for f in findings if f.code == "RL301")
        assert "literal metric name" in messages
        assert "not declared" in messages
        assert "repro.cli" in messages

    def test_live_telemetry_reports_each_failure_mode(self):
        findings = lint_fixture(
            FIXTURE_DIR / "rl302_bad_live_telemetry.py", "RL302"
        )
        messages = [f.message for f in findings if f.code == "RL302"]
        assert len(messages) == 3
        joined = " / ".join(messages)
        assert "string literal" in joined
        assert "not declared" in joined
        assert "daemon=True" in joined

    def test_live_telemetry_scope_excludes_tests(self):
        source = "import threading\nT = threading.Thread(target=print)\n"
        findings = LintRunner().run_source(source, "tests/test_x.py")
        assert not [f for f in findings if f.code == "RL302"]

    def test_bare_except_carries_fix(self):
        findings = lint_fixture(FIXTURE_DIR / "rl501_bad_bare_except.py", "RL501")
        assert any(f.code == "RL501" and f.fixable for f in findings)

    def test_swallow_rule_reports_both_handlers(self):
        findings = lint_fixture(FIXTURE_DIR / "rl502_bad_swallow.py", "RL502")
        assert len([f for f in findings if f.code == "RL502"]) == 2

    def test_serve_error_model_reports_each_swallow(self):
        findings = lint_fixture(
            FIXTURE_DIR / "rl503_bad_swallowed_serve_error.py", "RL503"
        )
        assert len([f for f in findings if f.code == "RL503"]) == 2

    def test_serve_error_model_scope(self):
        """RL503 binds serve code only, and not the host loop."""
        source = "try:\n    x = 1\nexcept ValueError:\n    x = 2\n"
        in_scope = LintRunner().run_source(source, "src/repro/serve/app.py")
        assert [f.code for f in in_scope if f.code == "RL503"] == ["RL503"]
        for path in ("src/repro/core/pipeline.py", "src/repro/serve/server.py"):
            findings = LintRunner().run_source(source, path)
            assert not [f for f in findings if f.code == "RL503"]


class TestProtocolRulesOnRealTree:
    """The registry anchors must resolve against the actual repository —
    a rename that silently un-anchors the rules should fail here."""

    @pytest.fixture(scope="class")
    def real_index(self):
        contexts = {}
        root = Path(__file__).parent.parent / "src" / "repro"
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent.parent).as_posix()
            contexts[rel] = FileContext.parse(rel, path.read_text())
        return ProjectIndex(contexts)

    def test_batch_registry_resolves_all_three_detectors(self, real_index):
        rule = BatchDetectorProtocolRule()
        ctx = real_index.find_file(rule.anchor_suffix)
        classes = {name for name, _ in rule.registry_classes(ctx)}
        assert classes == {
            "KeyCompromiseDetector",
            "RegistrantChangeDetector",
            "ManagedTlsDetector",
        }
        assert list(rule.check_project(real_index)) == []

    def test_stream_registry_resolves_all_three_wrappers(self, real_index):
        rule = StreamDetectorProtocolRule()
        ctx = real_index.find_file(rule.anchor_suffix)
        classes = {name for name, _ in rule.registry_classes(ctx)}
        assert classes == {
            "IncrementalKeyCompromiseDetector",
            "IncrementalRegistrantChangeDetector",
            "IncrementalManagedTlsDetector",
        }
        assert list(rule.check_project(real_index)) == []

    def test_removing_a_member_is_detected(self, real_index):
        """Deleting restore_state from a stream wrapper fails the lint."""
        rule = StreamDetectorProtocolRule()
        detectors_path = next(
            path for path in real_index.files
            if path.endswith("repro/stream/detectors.py")
        )
        source = real_index.files[detectors_path].source.replace(
            "def restore_state", "def renamed_restore_state"
        )
        contexts = dict(real_index.files)
        contexts[detectors_path] = FileContext.parse(detectors_path, source)
        findings = list(rule.check_project(ProjectIndex(contexts)))
        assert len(findings) == 3
        assert all("restore_state" in f.message for f in findings)


class TestClassInfo:
    def test_members_include_instance_attributes(self):
        import ast

        tree = ast.parse(
            "class D:\n"
            "    name = 'd'\n"
            "    def __init__(self):\n"
            "        self.stats = None\n"
            "    def detect(self, inputs):\n"
            "        pass\n"
        )
        info = ClassInfo.from_node("x.py", tree.body[0])
        assert {"name", "stats", "detect", "__init__"} <= info.members


class TestImportMap:
    def test_alias_resolution(self):
        import ast

        imports = ImportMap(
            ast.parse(
                "import datetime as _dt\n"
                "from time import time as now\n"
                "from repro.obs import names\n"
            )
        )
        assert imports.resolve("_dt.datetime.now") == "datetime.datetime.now"
        assert imports.resolve("now") == "time.time"
        assert imports.resolve("names") == "repro.obs.names"
