"""Tests for the bulk WHOIS crawler."""

import pytest

from repro.util.dates import day
from repro.util.rng import RngStream
from repro.whois.crawler import BulkWhoisCrawler
from repro.whois.registry import Registry

T0 = day(2016, 1, 1)


@pytest.fixture()
def registry():
    registry = Registry()
    registry.register("alpha.com", "alice", "R", T0, term_days=365)
    registry.register("beta.net", "bob", "R", T0 + 10, term_days=365)
    registry.register("gamma.org", "carol", "R", T0 + 20, term_days=365)
    return registry


class TestCrawl:
    def test_single_crawl_collects_active_domains(self, registry):
        crawler = BulkWhoisCrawler(registry)
        snapshot = crawler.crawl(T0 + 30)
        assert len(snapshot) == 3
        assert crawler.stats.records_collected == 3

    def test_tld_restriction(self, registry):
        crawler = BulkWhoisCrawler(registry, tlds=("com", "net"))
        snapshot = crawler.crawl(T0 + 30)
        assert {r.domain for r in snapshot.records} == {"alpha.com", "beta.net"}

    def test_crawl_before_registration_misses_domain(self, registry):
        crawler = BulkWhoisCrawler(registry)
        snapshot = crawler.crawl(T0 + 5)
        assert {r.domain for r in snapshot.records} == {"alpha.com"}

    def test_loss_rate_requires_rng(self, registry):
        with pytest.raises(ValueError):
            BulkWhoisCrawler(registry, loss_rate=0.5)

    def test_loss_rate_drops_records(self, registry):
        crawler = BulkWhoisCrawler(registry, loss_rate=1.0, rng=RngStream(2, "w"))
        snapshot = crawler.crawl(T0 + 30)
        assert len(snapshot) == 0
        assert crawler.stats.records_lost == 3

    def test_series_interval(self, registry):
        crawler = BulkWhoisCrawler(registry)
        count = crawler.crawl_series(T0, T0 + 100, interval_days=30)
        assert count == 4
        assert crawler.stats.crawls == 4

    def test_invalid_interval(self, registry):
        with pytest.raises(ValueError):
            BulkWhoisCrawler(registry).crawl_series(T0, T0 + 10, interval_days=0)


class TestCreationPairs:
    def test_re_registration_yields_two_pairs(self, registry):
        registry.delete("alpha.com", T0 + 100)
        registry.register("alpha.com", "dave", "R", T0 + 200)
        crawler = BulkWhoisCrawler(registry)
        crawler.crawl(T0 + 50)   # sees first span
        crawler.crawl(T0 + 250)  # sees second span
        pairs = {p for p in crawler.creation_pairs() if p[0] == "alpha.com"}
        assert pairs == {("alpha.com", T0), ("alpha.com", T0 + 200)}

    def test_span_between_crawls_is_invisible(self, registry):
        """The §4.4 observability limit: a short-lived span that starts and
        ends between crawls never appears in the collected data."""
        registry.delete("beta.net", T0 + 40)
        registry.register("beta.net", "eve", "R", T0 + 50)
        registry.delete("beta.net", T0 + 60)
        registry.register("beta.net", "frank", "R", T0 + 90)
        crawler = BulkWhoisCrawler(registry)
        crawler.crawl(T0 + 30)
        crawler.crawl(T0 + 100)
        pairs = {p for p in crawler.creation_pairs() if p[0] == "beta.net"}
        # Eve's span (T0+50..T0+60) fell between crawls; only two observed.
        assert pairs == {("beta.net", T0 + 10), ("beta.net", T0 + 90)}

    def test_duplicate_pairs_deduplicated(self, registry):
        crawler = BulkWhoisCrawler(registry)
        crawler.crawl(T0 + 30)
        crawler.crawl(T0 + 60)
        pairs = [p for p in crawler.creation_pairs() if p[0] == "alpha.com"]
        assert pairs == [("alpha.com", T0)]

    def test_observed_domains(self, registry):
        crawler = BulkWhoisCrawler(registry)
        crawler.crawl(T0 + 30)
        assert crawler.observed_domains() == {"alpha.com", "beta.net", "gamma.org"}
