"""Tests for the Tables 1 & 2 taxonomies."""

from repro.core.taxonomy import (
    CERTIFICATE_INFORMATION_TAXONOMY,
    INVALIDATION_EVENTS,
    CertificateInfoCategory,
    ControlledBy,
    InvalidationEvent,
    SecurityImplication,
    classify_invalidation,
    spec_for,
    third_party_events,
)


class TestTable1:
    def test_four_categories(self):
        assert len(CERTIFICATE_INFORMATION_TAXONOMY) == 4
        assert {row.category for row in CERTIFICATE_INFORMATION_TAXONOMY} == set(
            CertificateInfoCategory
        )

    def test_subscriber_auth_fields(self):
        row = CERTIFICATE_INFORMATION_TAXONOMY[0]
        assert row.category is CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION
        assert "SAN" in row.related_fields

    def test_metadata_includes_ct_fields(self):
        row = CERTIFICATE_INFORMATION_TAXONOMY[-1]
        assert "Signed Cert. Timestamps" in row.related_fields


class TestTable2:
    def test_seven_events(self):
        assert len(INVALIDATION_EVENTS) == 7

    def test_exactly_three_third_party_events(self):
        assert set(third_party_events()) == {
            InvalidationEvent.DOMAIN_OWNERSHIP_CHANGE,
            InvalidationEvent.KEY_OWNERSHIP_CHANGE,
            InvalidationEvent.MANAGED_TLS_DEPARTURE,
        }

    def test_third_party_events_imply_impersonation(self):
        for event in third_party_events():
            assert spec_for(event).implication is SecurityImplication.DOMAIN_IMPERSONATION

    def test_first_party_events_minimal_or_overpermissioned(self):
        for spec in INVALIDATION_EVENTS:
            if spec.controlled_by is ControlledBy.FIRST_PARTY:
                assert spec.implication in (
                    SecurityImplication.MINIMAL,
                    SecurityImplication.OVER_PERMISSIONED,
                )

    def test_managed_tls_is_key_use_change_with_third_party_consequence(self):
        spec = spec_for(InvalidationEvent.MANAGED_TLS_DEPARTURE)
        assert spec.category is CertificateInfoCategory.SUBSCRIBER_AUTHENTICATION
        assert spec.controlled_by is ControlledBy.THIRD_PARTY


class TestClassifier:
    def test_multiple_events_allowed(self):
        # The paper's critique of CRL single-reason: events can coexist.
        events = classify_invalidation(
            domain_owner_changed=True, key_rotated=True
        )
        kinds = [spec.event for spec in events]
        assert InvalidationEvent.DOMAIN_OWNERSHIP_CHANGE in kinds
        assert InvalidationEvent.KEY_USE_CHANGE in kinds

    def test_severity_ordering(self):
        events = classify_invalidation(
            ca_infrastructure_changed=True,
            key_unauthorized_access=True,
            key_authorization_changed=True,
        )
        implications = [spec.implication for spec in events]
        assert implications == [
            SecurityImplication.DOMAIN_IMPERSONATION,
            SecurityImplication.OVER_PERMISSIONED,
            SecurityImplication.MINIMAL,
        ]

    def test_no_flags_no_events(self):
        assert classify_invalidation() == []

    def test_managed_tls_flag(self):
        events = classify_invalidation(former_managed_tls_holds_key=True)
        assert events[0].event is InvalidationEvent.MANAGED_TLS_DEPARTURE
