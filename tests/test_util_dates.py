"""Unit tests for the day-granularity time model."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.util.dates import (
    add_months,
    day,
    day_to_date,
    day_to_iso,
    first_of_month,
    month_key,
    month_of,
    months_between,
    parse_day,
    year_of,
)


class TestDayConversions:
    def test_day_roundtrips_through_date(self):
        d = day(2023, 5, 12)
        assert day_to_date(d) == datetime.date(2023, 5, 12)

    def test_day_ordinal_arithmetic_matches_calendar(self):
        assert day(2020, 3, 1) - day(2020, 2, 28) == 2  # 2020 is a leap year
        assert day(2021, 3, 1) - day(2021, 2, 28) == 1

    def test_iso_rendering(self):
        assert day_to_iso(day(2016, 1, 9)) == "2016-01-09"

    def test_parse_day_iso(self):
        assert parse_day("2022-11-01") == day(2022, 11, 1)

    def test_parse_day_slash_variant(self):
        assert parse_day("2022/11/01") == day(2022, 11, 1)

    def test_parse_day_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_day("not-a-date")

    def test_parse_day_rejects_bad_month(self):
        with pytest.raises(ValueError):
            parse_day("2022-13-01")

    def test_parse_day_rejects_mixed_separators(self):
        # Regression: "2020-01/02" used to normalize to "2020-01-02"
        # instead of being rejected as malformed.
        for garbage in ("2020-01/02", "2020/01-02", "2020/01-02/03"):
            with pytest.raises(ValueError, match="mixed date separators"):
                parse_day(garbage)

    def test_parse_day_accepts_consistent_slashes_only(self):
        assert parse_day("2020/01/02") == day(2020, 1, 2)
        assert parse_day(" 2020/01/02 ") == day(2020, 1, 2)

    @given(st.integers(min_value=1, max_value=3_500_000))
    def test_roundtrip_parse_render(self, ordinal):
        assert parse_day(day_to_iso(ordinal)) == ordinal


class TestCalendarHelpers:
    def test_year_of(self):
        assert year_of(day(1999, 12, 31)) == 1999

    def test_month_of(self):
        assert month_of(day(2018, 11, 30)) == (2018, 11)

    def test_month_key_sorts_lexicographically(self):
        keys = [month_key(day(2018, m, 1)) for m in range(1, 13)]
        assert keys == sorted(keys)

    def test_first_of_month(self):
        assert first_of_month(day(2020, 6, 17)) == day(2020, 6, 1)

    def test_add_months_simple(self):
        assert add_months(day(2020, 1, 15), 2) == day(2020, 3, 15)

    def test_add_months_clamps_day_of_month(self):
        assert add_months(day(2020, 1, 31), 1) == day(2020, 2, 29)
        assert add_months(day(2021, 1, 31), 1) == day(2021, 2, 28)

    def test_add_months_across_year_boundary(self):
        assert add_months(day(2020, 11, 5), 3) == day(2021, 2, 5)

    def test_months_between_inclusive(self):
        months = list(months_between(day(2018, 10, 20), day(2019, 1, 3)))
        assert months == [
            day(2018, 10, 1),
            day(2018, 11, 1),
            day(2018, 12, 1),
            day(2019, 1, 1),
        ]

    def test_months_between_single_month(self):
        months = list(months_between(day(2020, 5, 2), day(2020, 5, 30)))
        assert months == [day(2020, 5, 1)]
