"""Engine semantics: suppressions, baseline add/remove, JSON schema,
file collection, parse errors, deterministic ordering."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    Baseline,
    LintRunner,
    collect_files,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.lint.suppress import is_suppressed

BAD_EXCEPT = "def f():\n    try:\n        return 1\n    except:\n        return 0\n"
PATH = "src/repro/core/sample.py"


class TestSuppressions:
    def test_inline_disable_silences_the_code(self):
        source = BAD_EXCEPT.replace(
            "    except:", "    except:  # repro-lint: disable=RL501"
        )
        assert LintRunner().run_source(source, PATH) == []

    def test_disable_all(self):
        source = BAD_EXCEPT.replace(
            "    except:", "    except:  # repro-lint: disable=all"
        )
        assert LintRunner().run_source(source, PATH) == []

    def test_wrong_code_does_not_suppress(self):
        source = BAD_EXCEPT.replace(
            "    except:", "    except:  # repro-lint: disable=RL103"
        )
        findings = LintRunner().run_source(source, PATH)
        assert [f.code for f in findings] == ["RL501"]

    def test_multiple_codes_comma_separated(self):
        source = BAD_EXCEPT.replace(
            "    except:", "    except:  # repro-lint: disable=RL103, RL501"
        )
        assert LintRunner().run_source(source, PATH) == []

    def test_suppression_is_line_scoped(self):
        source = (
            "# repro-lint: disable=RL501\n" + BAD_EXCEPT
        )  # directive on line 1, violation on line 5
        findings = LintRunner().run_source(source, PATH)
        assert [f.code for f in findings] == ["RL501"]

    def test_parse_helpers(self):
        suppressions = parse_suppressions(
            ["x = 1  # repro-lint: disable=RL101,RL102", "y = 2"]
        )
        assert is_suppressed(suppressions, 1, "rl101")
        assert is_suppressed(suppressions, 1, "RL102")
        assert not is_suppressed(suppressions, 1, "RL103")
        assert not is_suppressed(suppressions, 2, "RL101")


class TestBaseline:
    def _write(self, tmp_path, name, source):
        target = tmp_path / "src" / "repro" / "core" / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return target

    def test_baselined_findings_do_not_fail(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._write(tmp_path, "a.py", BAD_EXCEPT)
        first = LintRunner().run(["src"])
        assert [f.code for f in first.findings] == ["RL501"]

        baseline = Baseline.from_findings(first.findings)
        report = LintRunner(baseline=baseline).run(["src"])
        assert report.findings == []
        assert [f.code for f in report.baselined] == ["RL501"]
        assert report.clean

    def test_new_finding_still_fails_with_baseline(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._write(tmp_path, "a.py", BAD_EXCEPT)
        baseline = Baseline.from_findings(LintRunner().run(["src"]).findings)

        self._write(tmp_path, "b.py", BAD_EXCEPT)
        report = LintRunner(baseline=baseline).run(["src"])
        assert [f.path for f in report.findings] == ["src/repro/core/b.py"]
        assert not report.clean

    def test_fixed_finding_reports_unused_entry(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = self._write(tmp_path, "a.py", BAD_EXCEPT)
        baseline = Baseline.from_findings(LintRunner().run(["src"]).findings)

        target.write_text(BAD_EXCEPT.replace("except:", "except Exception:\n        raise"))
        report = LintRunner(baseline=baseline).run(["src"])
        assert report.findings == []
        assert len(report.unused_baseline) == 1
        assert report.clean  # unused entries warn, they do not fail

    def test_deleted_file_makes_baseline_stale(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = self._write(tmp_path, "a.py", BAD_EXCEPT)
        baseline = Baseline.from_findings(LintRunner().run(["src"]).findings)

        target.unlink()
        report = LintRunner(baseline=baseline).run(["src"])
        assert report.stale_baseline == ["src/repro/core/a.py"]
        assert not report.clean
        assert "no longer exists" in render_text(report)

    def test_baseline_round_trips_through_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._write(tmp_path, "a.py", BAD_EXCEPT)
        findings = LintRunner().run(["src"]).findings
        Baseline.from_findings(findings).save("lint-baseline.json")
        loaded = Baseline.load("lint-baseline.json")
        new, baselined, unused = loaded.partition(findings)
        assert (new, len(baselined), unused) == ([], 1, [])

    def test_baseline_matching_survives_line_drift(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = self._write(tmp_path, "a.py", BAD_EXCEPT)
        baseline = Baseline.from_findings(LintRunner().run(["src"]).findings)

        target.write_text("# a new leading comment\n" + BAD_EXCEPT)
        report = LintRunner(baseline=baseline).run(["src"])
        assert report.findings == []  # same text, shifted line: still matched


class TestEngine:
    def test_collect_skips_fixture_corpus_and_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "lint_fixtures").mkdir()
        (tmp_path / "pkg" / "lint_fixtures" / "bad.py").write_text("import random\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
        files = collect_files([str(tmp_path / "pkg")])
        assert [f.rsplit("/", 1)[1] for f in files] == ["ok.py"]

    def test_syntax_error_becomes_rl000(self):
        findings = LintRunner().run_source("def broken(:\n", PATH)
        assert [f.code for f in findings] == ["RL000"]
        assert "does not parse" in findings[0].message

    def test_findings_are_deterministically_ordered(self):
        source = (
            "import random\n"
            "def f(items):\n"
            "    try:\n"
            "        return random.choice(items)\n"
            "    except:\n"
            "        return None\n"
        )
        runner = LintRunner()
        first = runner.run_source(source, PATH)
        second = LintRunner().run_source(source, PATH)
        assert [f.sort_key() for f in first] == [f.sort_key() for f in second]
        assert [f.sort_key() for f in first] == sorted(f.sort_key() for f in first)

    def test_report_counts_by_code(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "core" / "a.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_EXCEPT + "\n\n" + BAD_EXCEPT.replace("f()", "g()"))
        report = LintRunner().run(["src"])
        assert report.counts_by_code() == {"RL501": 2}


class TestJsonOutput:
    def test_schema(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "repro" / "core" / "a.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_EXCEPT)
        report = LintRunner().run(["src"])
        payload = json.loads(render_json(report))

        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"RL501": 1}
        assert payload["baselined"] == 0
        assert payload["stale_baseline"] == []
        assert payload["unused_baseline"] == []
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path", "line", "col", "code", "rule", "message", "fixable",
        }
        assert finding["path"] == "src/repro/core/a.py"
        assert finding["code"] == "RL501"
        assert finding["fixable"] is True

    def test_clean_tree_renders_clean(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "src" / "ok.py"
        target.parent.mkdir()
        target.write_text("x = 1\n")
        report = LintRunner().run(["src"])
        assert json.loads(render_json(report))["clean"] is True
        assert "clean" in render_text(report)
