"""Tests for the auditing CT monitor."""

import pytest

from repro.ct.client import AuditFailure, CtMonitor
from repro.ct.log import CtLog
from repro.ct.loglist import LogList, TrustOperator
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2021, 1, 1)


@pytest.fixture()
def setup():
    log = CtLog("mon-log", "Op")
    ll = LogList()
    ll.add_log(log)
    ll.trust("mon-log", TrustOperator.CHROME, T0)
    return log, ll


class TestPolling:
    def test_poll_ingests_all_entries(self, setup):
        log, ll = setup
        for serial in range(80_000, 80_020):
            log.submit(make_cert(serial=serial, not_before=T0), T0)
        monitor = CtMonitor(ll, batch_size=7)
        assert monitor.poll_all() == 20
        assert len(monitor.corpus) == 20

    def test_incremental_poll_fetches_only_new(self, setup):
        log, ll = setup
        log.submit(make_cert(serial=81_000, not_before=T0), T0)
        monitor = CtMonitor(ll)
        assert monitor.poll_log(log) == 1
        log.submit(make_cert(serial=81_001, not_before=T0), T0)
        assert monitor.poll_log(log) == 1
        assert monitor.state_of("mon-log").fetched_upto == 2

    def test_dedup_through_corpus(self, setup):
        log, ll = setup
        cert = make_cert(serial=82_000, not_before=T0)
        log.submit(cert.as_precertificate(), T0)
        log.submit(cert.with_scts(["s"]), T0)
        monitor = CtMonitor(ll)
        monitor.poll_all()
        assert len(monitor.finalize_corpus()) == 1

    def test_consistency_audit_passes_on_honest_log(self, setup):
        log, ll = setup
        monitor = CtMonitor(ll, audit=True)
        log.submit(make_cert(serial=83_000, not_before=T0), T0)
        monitor.poll_log(log)
        log.submit(make_cert(serial=83_001, not_before=T0), T0)
        monitor.poll_log(log)  # consistency proof verified internally

    def test_shrunken_tree_detected(self, setup):
        log, ll = setup
        log.submit(make_cert(serial=84_000, not_before=T0), T0)
        monitor = CtMonitor(ll)
        monitor.poll_log(log)
        monitor.state_of("mon-log").last_tree_size = 5  # simulate rollback
        with pytest.raises(AuditFailure, match="shrank"):
            monitor.poll_log(log)

    def test_invalid_batch_size(self, setup):
        _log, ll = setup
        with pytest.raises(ValueError):
            CtMonitor(ll, batch_size=0)
