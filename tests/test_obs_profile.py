"""Unit tests for trace profiling: pairing, aggregation, critical path."""

import pytest

from repro.obs.profile import (
    aggregate_names,
    critical_path,
    pair_events,
    profile_spans,
)


def begin(name, ts, pid=0, tid=1, **args):
    event = {"name": name, "ph": "B", "ts": float(ts), "pid": pid, "tid": tid}
    if args:
        event["args"] = args
    return event


def end(name, ts, pid=0, tid=1, status="ok"):
    return {
        "name": name,
        "ph": "E",
        "ts": float(ts),
        "pid": pid,
        "tid": tid,
        "args": {"status": status},
    }


class TestPairEvents:
    def test_nesting_yields_depth_parent_and_child_time(self):
        spans = pair_events([
            begin("outer", 0),
            begin("inner", 10),
            end("inner", 40),
            end("outer", 100),
        ])
        by_name = {s.name: s for s in spans}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == "outer"
        assert outer.duration_us == 100
        assert outer.child_us == 30
        assert outer.self_us == 70
        assert inner.self_us == 30

    def test_status_read_from_end_event(self):
        spans = pair_events([begin("x", 0), end("x", 5, status="error")])
        assert spans[0].status == "error"

    def test_unclosed_begin_closed_at_lane_end_as_unclosed(self):
        spans = pair_events([
            begin("root", 0),
            begin("crashed", 10),
            begin("done", 20),
            end("done", 30),
        ])
        by_name = {s.name: s for s in spans}
        assert by_name["crashed"].status == "unclosed"
        assert by_name["crashed"].end_us == 30
        assert by_name["root"].status == "unclosed"
        assert by_name["done"].status == "ok"

    def test_lanes_pair_independently(self):
        spans = pair_events([
            begin("a", 0, pid=0),
            begin("b", 5, pid=1),
            end("b", 15, pid=1),
            end("a", 20, pid=0),
        ])
        by_name = {s.name: s for s in spans}
        # Same wall window but different lanes: no parent/child relation.
        assert by_name["b"].depth == 0 and by_name["b"].parent is None
        assert by_name["a"].child_us == 0

    def test_mismatched_end_ignored(self):
        spans = pair_events([begin("x", 0), end("y", 5), end("x", 10)])
        assert [s.name for s in spans] == ["x"]
        assert spans[0].duration_us == 10

    def test_metadata_events_skipped(self):
        spans = pair_events([
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0, "args": {}},
            begin("x", 0),
            end("x", 1),
        ])
        assert [s.name for s in spans] == ["x"]


class TestAggregateNames:
    def test_count_total_self_max_errors(self):
        spans = pair_events([
            begin("op", 0), end("op", 10),
            begin("op", 20), end("op", 50, status="error"),
        ])
        profile = aggregate_names(spans)["op"]
        assert profile.count == 2
        assert profile.total_us == 40
        assert profile.self_us == 40
        assert profile.max_us == 30
        assert profile.errors == 1

    def test_self_excludes_direct_children(self):
        spans = pair_events([
            begin("outer", 0), begin("inner", 10), end("inner", 30), end("outer", 40),
        ])
        names = aggregate_names(spans)
        assert names["outer"].self_us == 20
        assert names["inner"].self_us == 20


class TestCriticalPath:
    def _total(self, segments):
        return sum(segment.duration_us for segment in segments)

    def test_empty_trace_has_empty_path(self):
        assert critical_path([]) == []

    def test_segments_tile_the_extent_exactly(self):
        spans = pair_events([
            begin("root", 0),
            begin("step1", 10), end("step1", 40),
            begin("step2", 50), end("step2", 90),
            end("root", 100),
        ])
        segments = critical_path(spans)
        assert self._total(segments) == 100
        # Contiguous: each segment starts where the previous ended.
        for left, right in zip(segments, segments[1:]):
            assert left.end_us == pytest.approx(right.start_us)
        # The nested steps own their windows; root owns the rest.
        owners = [(s.name, s.start_us, s.end_us) for s in segments]
        assert ("step1", 10, 40) in owners
        assert ("step2", 50, 90) in owners

    def test_idle_gap_becomes_explicit_segment(self):
        spans = pair_events([
            begin("a", 0), end("a", 10),
            begin("b", 20), end("b", 30),
        ])
        segments = critical_path(spans)
        assert self._total(segments) == 30
        assert [s.name for s in segments] == ["a", "(idle)", "b"]
        idle = segments[1]
        assert (idle.start_us, idle.end_us) == (10, 20)

    def test_path_crosses_lanes_through_slowest_worker(self):
        spans = pair_events([
            begin("root", 0, pid=0), end("root", 100, pid=0),
            begin("fast_shard", 10, pid=1), end("fast_shard", 60, pid=1),
            begin("slow_shard", 20, pid=2), end("slow_shard", 90, pid=2),
        ])
        segments = critical_path(spans)
        assert self._total(segments) == 100
        names = [s.name for s in segments]
        # Walks back through the slow shard (the one gating the join),
        # through the fast shard's head start, bracketed by the root.
        assert names == ["root", "fast_shard", "slow_shard", "root"]
        lanes = [s.span.pid for s in segments]
        assert lanes == [0, 1, 2, 0]

    def test_deepest_span_wins_ties_at_same_start(self):
        spans = pair_events([
            begin("outer", 0), begin("inner", 0), end("inner", 10), end("outer", 10),
        ])
        segments = critical_path(spans)
        assert [s.name for s in segments] == ["inner"]


class TestProfileReport:
    def test_wall_and_path_agree_on_synthetic_trace(self):
        report = profile_spans(pair_events([
            begin("root", 0),
            begin("work", 5, pid=1), end("work", 95, pid=1),
            end("root", 100),
        ]))
        assert report.wall_seconds == pytest.approx(100 / 1e6)
        assert report.path_seconds == pytest.approx(report.wall_seconds)

    def test_empty_report(self):
        report = profile_spans([])
        assert report.wall_seconds == 0.0
        assert report.path_seconds == 0.0
        assert report.names == {}
