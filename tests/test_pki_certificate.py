"""Tests for the certificate model, dedup fingerprints, and lifetime policy."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.pki.certificate import (
    MAX_LIFETIME_398,
    MAX_LIFETIME_825,
    lifetime_limit_on,
)
from repro.util.dates import day
from tests.conftest import make_cert, make_key

T0 = day(2021, 1, 1)


class TestValidity:
    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            make_cert(not_before=T0, not_after=T0 - 1)

    def test_lifetime_days(self):
        assert make_cert(not_before=T0, lifetime=90).lifetime_days == 90

    def test_is_valid_on_boundaries(self):
        cert = make_cert(not_before=T0, lifetime=10)
        assert cert.is_valid_on(T0)
        assert cert.is_valid_on(T0 + 10)
        assert not cert.is_valid_on(T0 - 1)
        assert not cert.is_valid_on(T0 + 11)
        assert cert.is_expired_on(T0 + 11)

    def test_leaf_requires_san(self):
        with pytest.raises(ValueError):
            make_cert(sans=())


class TestNames:
    def test_san_normalization(self):
        cert = make_cert(sans=("Example.COM", "WWW.example.com"))
        assert cert.san_dns_names == ("example.com", "www.example.com")

    def test_covers_name_exact_and_wildcard(self):
        cert = make_cert(sans=("example.com", "*.example.com"))
        assert cert.covers_name("example.com")
        assert cert.covers_name("www.example.com")
        assert not cert.covers_name("a.b.example.com")
        assert not cert.covers_name("other.com")

    def test_fqdns_strips_wildcards(self):
        cert = make_cert(sans=("*.example.com", "example.com", "foo.net"))
        assert cert.fqdns() == frozenset({"example.com", "foo.net"})

    def test_e2lds_groups_by_registrable(self):
        cert = make_cert(sans=("a.foo.com", "b.foo.com", "x.bar.co.uk"))
        assert cert.e2lds() == frozenset({"foo.com", "bar.co.uk"})


class TestDedupFingerprint:
    def test_precert_and_final_share_fingerprint(self):
        cert = make_cert()
        precert = cert.as_precertificate()
        final = cert.with_scts(["sct-1", "sct-2"])
        assert precert.dedup_fingerprint() == final.dedup_fingerprint()
        assert precert.is_precertificate and not final.is_precertificate
        assert final.scts == ("sct-1", "sct-2")

    def test_different_serials_different_fingerprints(self):
        key = make_key()
        a = make_cert(serial=1, key=key)
        b = make_cert(serial=2, key=key)
        assert a.dedup_fingerprint() != b.dedup_fingerprint()

    def test_different_validity_different_fingerprints(self):
        key = make_key()
        a = make_cert(serial=7, key=key, not_before=T0)
        b = make_cert(serial=7, key=key, not_before=T0 + 1, lifetime=364)
        assert a.dedup_fingerprint() != b.dedup_fingerprint()

    def test_fingerprint_memoized(self):
        cert = make_cert()
        assert cert.dedup_fingerprint() is cert.dedup_fingerprint()


class TestRevocationKey:
    def test_revocation_key_shape(self):
        cert = make_cert(authority_key_id="akid-x", serial=99)
        assert cert.revocation_key() == ("akid-x", 99)


class TestClampLifetime:
    def test_clamp_shortens_long_cert(self):
        cert = make_cert(lifetime=365)
        clamped = cert.clamp_lifetime(90)
        assert clamped.lifetime_days == 90
        assert clamped.not_before == cert.not_before

    def test_clamp_noop_for_short_cert(self):
        cert = make_cert(lifetime=60)
        assert cert.clamp_lifetime(90) is cert

    @given(st.integers(1, 900), st.integers(1, 900))
    def test_clamp_never_extends(self, lifetime, cap):
        cert = make_cert(lifetime=lifetime)
        clamped = cert.clamp_lifetime(cap)
        assert clamped.lifetime_days <= min(lifetime, cap) or clamped.lifetime_days == min(
            lifetime, cap
        )
        assert clamped.lifetime_days == min(lifetime, cap)


class TestLifetimeLimits:
    def test_pre_2018_legacy_limit(self):
        assert lifetime_limit_on(day(2016, 1, 1)) > MAX_LIFETIME_825

    def test_825_era(self):
        assert lifetime_limit_on(day(2019, 1, 1)) == MAX_LIFETIME_825

    def test_398_era(self):
        assert lifetime_limit_on(day(2020, 9, 1)) == MAX_LIFETIME_398
        assert lifetime_limit_on(day(2023, 1, 1)) == MAX_LIFETIME_398

    def test_boundary_day(self):
        assert lifetime_limit_on(day(2020, 8, 31)) == MAX_LIFETIME_825
