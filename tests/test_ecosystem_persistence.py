"""Tests for legacy dataset-bundle save/load roundtripping.

The canonical writers moved to :mod:`repro.data`; this file covers the
JSONL legacy layout (now ``repro.data.legacy``) and the deprecated
``repro.ecosystem.persistence`` shim that still fronts it.
"""

import pytest

from repro import MeasurementPipeline
from repro.core.stale import StalenessClass
from repro.data import load_legacy_bundle as load_bundle
from repro.data import save_legacy_bundle as save_bundle


@pytest.fixture(scope="module")
def saved_dir(tmp_path_factory, small_world):
    directory = tmp_path_factory.mktemp("bundle")
    counts = save_bundle(small_world.to_bundle(), str(directory))
    return str(directory), counts


class TestDeprecatedShim:
    def test_load_bundle_warns_and_delegates(self, saved_dir, small_world):
        from repro.ecosystem import persistence

        directory, _counts = saved_dir
        with pytest.warns(DeprecationWarning, match="open_bundle"):
            restored = persistence.load_bundle(directory)
        assert len(restored.corpus) == len(small_world.to_bundle().corpus)

    def test_save_bundle_warns_and_delegates(self, tmp_path, small_world):
        from repro.ecosystem import persistence

        with pytest.warns(DeprecationWarning, match="write_dataset"):
            counts = persistence.save_bundle(
                small_world.to_bundle(), str(tmp_path)
            )
        assert counts["corpus.jsonl.gz"] > 0


class TestSave:
    def test_all_files_written(self, saved_dir):
        directory, counts = saved_dir
        assert counts["corpus.jsonl.gz"] > 0
        assert counts["revocations.jsonl.gz"] > 0
        assert counts["whois_pairs.jsonl.gz"] > 0
        assert counts["dns_snapshots.jsonl.gz"] > 0


class TestLoadRoundtrip:
    def test_corpus_identical(self, saved_dir, small_world):
        directory, _counts = saved_dir
        restored = load_bundle(directory)
        original_fps = sorted(
            c.dedup_fingerprint() for c in small_world.to_bundle().corpus.certificates()
        )
        restored_fps = sorted(
            c.dedup_fingerprint() for c in restored.corpus.certificates()
        )
        assert restored_fps == original_fps

    def test_whois_pairs_identical(self, saved_dir, small_world):
        directory, _counts = saved_dir
        restored = load_bundle(directory)
        assert sorted(restored.whois_creation_pairs) == sorted(
            small_world.to_bundle().whois_creation_pairs
        )

    def test_windows_preserved(self, saved_dir, small_world):
        directory, _counts = saved_dir
        restored = load_bundle(directory)
        assert restored.windows == small_world.to_bundle().windows

    def test_snapshot_days_preserved(self, saved_dir, small_world):
        directory, _counts = saved_dir
        restored = load_bundle(directory)
        assert restored.dns_snapshots.days() == small_world.dns_snapshots.days()


class TestPipelineOnRestoredBundle:
    def test_findings_match_original(self, saved_dir, small_world, pipeline_result):
        """The full pipeline on a restored bundle reproduces the original
        findings exactly (save/load is measurement-transparent)."""
        directory, _counts = saved_dir
        restored = load_bundle(directory)
        result = MeasurementPipeline(
            restored,
            revocation_cutoff_day=small_world.config.timeline.revocation_cutoff,
        ).run()
        for cls in (
            StalenessClass.REVOKED_ALL,
            StalenessClass.KEY_COMPROMISE,
            StalenessClass.REGISTRANT_CHANGE,
            StalenessClass.MANAGED_TLS_DEPARTURE,
        ):
            original = {
                (f.certificate.dedup_fingerprint(), f.affected_domain, f.invalidation_day)
                for f in pipeline_result.findings.of_class(cls)
            }
            rebuilt = {
                (f.certificate.dedup_fingerprint(), f.affected_domain, f.invalidation_day)
                for f in result.findings.of_class(cls)
            }
            assert rebuilt == original, cls
