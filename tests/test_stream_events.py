"""Tests for stream event types, ordering, the bus, and the stream builder."""

import pytest

from repro.core.stale import StaleCertificate, StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.core.pipeline import DatasetBundle
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.revocation.reasons import RevocationReason
from repro.stream import (
    CrlDeltaPublished,
    CtEntryLogged,
    DnsSnapshotTaken,
    EventBus,
    EventType,
    StaleFindingEmitted,
    StreamStats,
    WhoisCreationObserved,
    build_event_stream,
)
from repro.dns.snapshots import DailySnapshot, SnapshotStore
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2021, 1, 1)


def _bundle(certs=(), crls=(), whois=(), snapshots=None):
    corpus = CertificateCorpus()
    corpus.ingest(certs)
    return DatasetBundle(
        corpus=corpus.finalize(),
        crls=list(crls),
        whois_creation_pairs=list(whois),
        dns_snapshots=snapshots,
    )


class TestOrdering:
    def test_same_day_dispatch_priority(self):
        cert = make_cert(not_before=T0)
        events = [
            DnsSnapshotTaken(day=T0, snapshot=DailySnapshot(T0)),
            WhoisCreationObserved(day=T0, domain="a.com", creation_day=T0),
            CrlDeltaPublished(day=T0, authority_key_id="akid"),
            CtEntryLogged(day=T0, certificate=cert),
        ]
        ordered = sorted(events, key=lambda e: e.sort_key())
        assert [e.event_type for e in ordered] == [
            EventType.CT_ENTRY_LOGGED,
            EventType.CRL_DELTA_PUBLISHED,
            EventType.WHOIS_CREATION_OBSERVED,
            EventType.DNS_SNAPSHOT_TAKEN,
        ]

    def test_day_dominates_priority(self):
        late_ct = CtEntryLogged(day=T0 + 1, certificate=make_cert(not_before=T0 + 1))
        early_dns = DnsSnapshotTaken(day=T0, snapshot=DailySnapshot(T0))
        assert early_dns.sort_key() < late_ct.sort_key()

    def test_sequence_breaks_ties(self):
        first = WhoisCreationObserved(day=T0, sequence=0, domain="a.com", creation_day=T0)
        second = WhoisCreationObserved(day=T0, sequence=1, domain="b.com", creation_day=T0)
        assert first.sort_key() < second.sort_key()


class TestEventBus:
    def test_fifo_dispatch(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EventType.WHOIS_CREATION_OBSERVED, lambda e: seen.append(e.domain))
        bus.publish_all(
            WhoisCreationObserved(day=T0, sequence=i, domain=f"d{i}.com", creation_day=T0)
            for i in range(3)
        )
        assert bus.queue_depth == 3
        assert bus.drain() == 3
        assert seen == ["d0.com", "d1.com", "d2.com"]
        assert bus.queue_depth == 0

    def test_handlers_may_publish_while_draining(self):
        bus = EventBus()
        finding = StaleCertificate(
            certificate=make_cert(),
            staleness_class=StalenessClass.REVOKED_ALL,
            invalidation_day=T0,
        )
        seen = []

        def on_whois(event):
            bus.publish(StaleFindingEmitted(day=event.day, finding=finding))

        bus.subscribe(EventType.WHOIS_CREATION_OBSERVED, on_whois)
        bus.subscribe(EventType.STALE_FINDING, lambda e: seen.append(e.finding))
        bus.publish(WhoisCreationObserved(day=T0, domain="a.com", creation_day=T0))
        assert bus.drain() == 2
        assert seen == [finding]

    def test_stats_tap_counts_and_depth(self):
        stats = StreamStats()
        bus = EventBus(stats)
        bus.subscribe(EventType.DNS_SNAPSHOT_TAKEN, lambda e: None)
        bus.publish(DnsSnapshotTaken(day=T0, snapshot=DailySnapshot(T0)))
        bus.publish(DnsSnapshotTaken(day=T0 + 1, snapshot=DailySnapshot(T0 + 1)))
        bus.drain()
        assert stats.events_by_type == {EventType.DNS_SNAPSHOT_TAKEN.value: 2}
        assert stats.max_queue_depth == 2
        assert stats.events_total == 2
        assert stats.mean_latency_ms(EventType.DNS_SNAPSHOT_TAKEN.value) >= 0.0


class TestBuildEventStream:
    def test_events_sorted_and_ct_at_not_before(self):
        certs = [make_cert(not_before=T0 + offset) for offset in (30, 0, 10)]
        events = build_event_stream(_bundle(certs=certs))
        assert [e.sort_key() for e in events] == sorted(e.sort_key() for e in events)
        ct_days = [e.day for e in events if isinstance(e, CtEntryLogged)]
        assert ct_days == [T0, T0 + 10, T0 + 30]

    def test_crl_republication_compacted(self):
        entry = CrlEntry(serial=1, revocation_day=T0 + 5, reason=RevocationReason.KEY_COMPROMISE)
        crls = [
            CertificateRevocationList(
                issuer_name="CA", authority_key_id="akid", this_update=T0 + 5 + i,
                next_update=T0 + 6 + i, crl_number=i, entries=[entry],
            )
            for i in range(4)
        ]
        events = build_event_stream(_bundle(crls=crls))
        deltas = [e for e in events if isinstance(e, CrlDeltaPublished)]
        assert len(deltas) == 1  # three republications carried nothing new
        assert deltas[0].entries == (entry,)

    def test_crl_earlier_day_republication_re_emitted(self):
        crls = [
            CertificateRevocationList(
                issuer_name="CA", authority_key_id="akid", this_update=T0,
                next_update=T0 + 1, crl_number=0,
                entries=[CrlEntry(serial=1, revocation_day=T0)],
            ),
            CertificateRevocationList(
                issuer_name="CA", authority_key_id="akid", this_update=T0 + 1,
                next_update=T0 + 2, crl_number=1,
                entries=[CrlEntry(serial=1, revocation_day=T0 - 10)],
            ),
        ]
        deltas = [
            e for e in build_event_stream(_bundle(crls=crls))
            if isinstance(e, CrlDeltaPublished)
        ]
        assert len(deltas) == 2  # the glitch improves the revocation day
        assert deltas[1].entries[0].revocation_day == T0 - 10

    def test_whois_pairs_deduplicated(self):
        whois = [("a.com", T0), ("a.com", T0), ("a.com", T0 + 9), ("b.com", T0)]
        events = [
            e for e in build_event_stream(_bundle(whois=whois))
            if isinstance(e, WhoisCreationObserved)
        ]
        assert len(events) == 3
        assert all(e.day == e.creation_day for e in events)

    def test_single_snapshot_produces_no_dns_events(self):
        store = SnapshotStore()
        store.put(DailySnapshot(T0))
        events = build_event_stream(_bundle(snapshots=store))
        assert events == []

    def test_repr_mentions_iso_day(self):
        event = WhoisCreationObserved(day=day(2021, 6, 15), domain="a.com", creation_day=T0)
        assert "2021-06-15" in repr(event)
