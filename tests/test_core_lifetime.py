"""Tests for the lifetime-capping simulation and survival estimates (§6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.lifetime import (
    LifetimePolicySimulator,
    capped_staleness_days,
    survival_elimination_estimates,
)
from repro.core.stale import StaleCertificate, StaleFindings, StalenessClass
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2021, 1, 1)


def finding(lifetime=365, invalidation_offset=100, cls=StalenessClass.KEY_COMPROMISE,
            serial=None):
    cert = make_cert(not_before=T0, lifetime=lifetime, serial=serial)
    return StaleCertificate(
        certificate=cert,
        staleness_class=cls,
        invalidation_day=T0 + invalidation_offset,
    )


class TestCappedStalenessDays:
    def test_short_cert_unmodified(self):
        f = finding(lifetime=60, invalidation_offset=10)
        assert capped_staleness_days(f, 90) == f.staleness_days == 50

    def test_long_cert_clipped(self):
        f = finding(lifetime=365, invalidation_offset=10)
        assert capped_staleness_days(f, 90) == 80

    def test_invalidation_after_capped_expiry_eliminates(self):
        f = finding(lifetime=365, invalidation_offset=200)
        assert capped_staleness_days(f, 90) == 0

    def test_invalidation_exactly_at_capped_expiry(self):
        f = finding(lifetime=365, invalidation_offset=90)
        assert capped_staleness_days(f, 90) == 0

    @given(st.integers(1, 900), st.integers(1, 900), st.integers(0, 900))
    def test_cap_never_increases_staleness(self, lifetime, cap, offset):
        offset = min(offset, lifetime)
        f = finding(lifetime=lifetime, invalidation_offset=offset)
        assert 0 <= capped_staleness_days(f, cap) <= f.staleness_days


class TestSimulator:
    def _findings(self):
        findings = StaleFindings()
        # One eliminated entirely (invalidation at day 200 > 90-day cap),
        # one clipped (day 10), one untouched short cert.
        findings.add(finding(lifetime=365, invalidation_offset=200, serial=95_001))
        findings.add(finding(lifetime=365, invalidation_offset=10, serial=95_002))
        findings.add(finding(lifetime=60, invalidation_offset=30, serial=95_003))
        return findings

    def test_evaluate_90_day_cap(self):
        result = LifetimePolicySimulator(self._findings()).evaluate(
            StalenessClass.KEY_COMPROMISE, 90
        )
        # Baseline: 165 + 355 + 30 = 550; capped: 0 + 80 + 30 = 110.
        assert result.baseline_staleness_days == 550
        assert result.capped_staleness_days == 110
        assert result.staleness_days_reduction == pytest.approx(1 - 110 / 550)
        assert result.eliminated_stale_certificates == 1
        assert result.certificate_reduction == pytest.approx(1 / 3)

    def test_sweep_monotone_in_cap(self):
        simulator = LifetimePolicySimulator(self._findings())
        results = simulator.sweep(StalenessClass.KEY_COMPROMISE, (45, 90, 215, 398))
        reductions = [r.staleness_days_reduction for r in results]
        assert reductions == sorted(reductions, reverse=True)

    def test_full_matrix_skips_empty_classes(self):
        matrix = LifetimePolicySimulator(self._findings()).full_matrix()
        classes = {cls for cls, _cap in matrix}
        assert classes == {StalenessClass.KEY_COMPROMISE}

    def test_overall_reduction_pools_classes(self):
        findings = self._findings()
        findings.add(
            finding(
                lifetime=365,
                invalidation_offset=10,
                cls=StalenessClass.REGISTRANT_CHANGE,
                serial=95_010,
            )
        )
        simulator = LifetimePolicySimulator(findings)
        overall = simulator.overall_staleness_reduction(90)
        # Pooled baseline 550 + 355 = 905; capped 110 + 80 = 190.
        assert overall == pytest.approx(1 - 190 / 905)

    def test_empty_class_zero_reduction(self):
        result = LifetimePolicySimulator(StaleFindings()).evaluate(
            StalenessClass.KEY_COMPROMISE, 90
        )
        assert result.staleness_days_reduction == 0.0
        assert result.certificate_reduction == 0.0


class TestSurvivalEstimates:
    def test_estimates_match_survival_curve(self):
        findings = StaleFindings()
        for offset, serial in ((10, 96_001), (100, 96_002), (300, 96_003)):
            findings.add(finding(invalidation_offset=offset, serial=serial))
        estimates = survival_elimination_estimates(findings, caps=(90, 215))
        key = (StalenessClass.KEY_COMPROMISE, 90)
        assert estimates[key] == pytest.approx(2 / 3)
        assert estimates[(StalenessClass.KEY_COMPROMISE, 215)] == pytest.approx(1 / 3)

    def test_empty_classes_absent(self):
        estimates = survival_elimination_estimates(StaleFindings())
        assert estimates == {}
