"""Executable-documentation test: the README quickstart block must run."""

import re
from pathlib import Path

import pytest

_README = Path(__file__).resolve().parent.parent / "README.md"


def _python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_quickstart_block_executes(self):
        blocks = _python_blocks(_README.read_text())
        assert blocks, "README has no python example"
        quickstart = blocks[0]
        # Shrink the documented scale so the test stays fast.
        code = quickstart.replace("scaled(0.1)", "scaled(0.02)")
        namespace = {}
        exec(compile(code, "README.md", "exec"), namespace)  # noqa: S102

    def test_referenced_paths_exist(self):
        text = _README.read_text()
        root = _README.parent
        for relative in re.findall(r"`(examples/[\w./-]+\.py)`", text):
            assert (root / relative).exists(), relative
        for relative in re.findall(r"`(benchmarks/[\w./-]+\.py)`", text):
            if "*" in relative:
                continue
            assert (root / relative).exists(), relative
        assert (root / "DESIGN.md").exists()
        assert (root / "EXPERIMENTS.md").exists()
        assert (root / "docs" / "API.md").exists()
