"""Tests for CRL model, reasons, publisher, fetcher, OCSP, and checking."""

import pytest

from repro.revocation.crl import CertificateRevocationList, CrlEntry, merge_crl_series
from repro.revocation.reasons import (
    MOZILLA_PERMITTED_REASONS,
    RevocationReason,
    normalize_reason,
)
from repro.util.dates import day

T0 = day(2022, 11, 1)


def crl(entries=(), this_update=T0, akid="akid-1", number=1):
    c = CertificateRevocationList(
        issuer_name="Test CA",
        authority_key_id=akid,
        this_update=this_update,
        next_update=this_update + 7,
        crl_number=number,
    )
    for entry in entries:
        c.add(entry)
    return c


class TestReasons:
    def test_mozilla_subset_size(self):
        assert len(MOZILLA_PERMITTED_REASONS) == 6

    def test_security_critical(self):
        assert RevocationReason.KEY_COMPROMISE.is_security_critical
        assert RevocationReason.CA_COMPROMISE.is_security_critical
        assert not RevocationReason.SUPERSEDED.is_security_critical

    def test_normalize_permitted_passthrough(self):
        assert normalize_reason(RevocationReason.KEY_COMPROMISE) is RevocationReason.KEY_COMPROMISE

    def test_normalize_disallowed_to_unspecified(self):
        assert normalize_reason(RevocationReason.CERTIFICATE_HOLD) is RevocationReason.UNSPECIFIED
        assert normalize_reason(RevocationReason.CA_COMPROMISE) is RevocationReason.UNSPECIFIED

    def test_reason_der_values(self):
        assert RevocationReason.KEY_COMPROMISE.value == 1
        assert RevocationReason.REMOVE_FROM_CRL.value == 8


class TestCrl:
    def test_rejects_inverted_update_window(self):
        with pytest.raises(ValueError):
            CertificateRevocationList("CA", "akid", T0, T0 - 1, 1)

    def test_is_revoked(self):
        c = crl([CrlEntry(5, T0)])
        assert c.is_revoked(5) is not None
        assert c.is_revoked(6) is None

    def test_freshness(self):
        c = crl()
        assert c.is_fresh_on(T0)
        assert c.is_fresh_on(T0 + 7)
        assert not c.is_fresh_on(T0 + 8)

    def test_revocation_keys(self):
        c = crl([CrlEntry(1, T0), CrlEntry(2, T0)], akid="akid-z")
        assert list(c.revocation_keys()) == [("akid-z", 1), ("akid-z", 2)]

    def test_entries_with_reason(self):
        c = crl(
            [
                CrlEntry(1, T0, RevocationReason.KEY_COMPROMISE),
                CrlEntry(2, T0, RevocationReason.SUPERSEDED),
            ]
        )
        assert len(c.entries_with_reason(RevocationReason.KEY_COMPROMISE)) == 1


class TestMergeCrlSeries:
    def test_dedup_across_days(self):
        day1 = crl([CrlEntry(1, T0)], this_update=T0, number=1)
        day2 = crl([CrlEntry(1, T0), CrlEntry(2, T0 + 1)], this_update=T0 + 1, number=2)
        merged = merge_crl_series([day1, day2])
        assert set(merged) == {("akid-1", 1), ("akid-1", 2)}

    def test_earliest_revocation_day_kept(self):
        earlier = crl([CrlEntry(1, T0)], number=1)
        later = crl([CrlEntry(1, T0 + 5)], number=2)
        merged = merge_crl_series([later, earlier])
        assert merged[("akid-1", 1)].revocation_day == T0

    def test_different_issuers_distinct(self):
        a = crl([CrlEntry(1, T0)], akid="akid-a")
        b = crl([CrlEntry(1, T0)], akid="akid-b")
        assert len(merge_crl_series([a, b])) == 2
