"""Tests for the ACME order flow and auto-renewal client."""

import pytest

from repro.dns.zone import ZoneStore
from repro.pki.acme import AcmeClient, AcmeServer, OrderStatus
from repro.pki.ca import CertificateAuthority, IssuanceError, IssuancePolicy
from repro.pki.keys import KeyStore
from repro.pki.validation import ChallengeType, DvValidator
from repro.util.dates import day

T0 = day(2021, 3, 1)


@pytest.fixture()
def env(key_store):
    zones = ZoneStore()
    zones.create("example.com")
    validator = DvValidator(zones, ca_domain="acmeca.example")
    ca = CertificateAuthority(
        "ACME CA",
        key_store,
        policy=IssuancePolicy(max_lifetime_days=90, default_lifetime_days=90),
    )
    server = AcmeServer(ca, validator)
    account = server.register_account("admin@example.com", T0)
    client = AcmeClient(server, account, zones, key_store, owner_id="subscriber")
    return zones, server, account, client, key_store


class TestOrderFlow:
    def test_full_obtain_flow(self, env):
        _zones, _server, _account, client, _ks = env
        cert = client.obtain(["example.com", "www.example.com"], T0)
        assert cert.san_dns_names == ("example.com", "www.example.com")
        assert cert.lifetime_days == 90

    def test_order_starts_pending_with_authorizations(self, env):
        _zones, server, account, _client, _ks = env
        order = server.new_order(account, ["example.com", "www.example.com"])
        assert order.status is OrderStatus.PENDING
        assert [a.domain for a in order.authorizations] == [
            "example.com",
            "www.example.com",
        ]

    def test_unprovisioned_challenge_invalidates_order(self, env):
        _zones, server, account, _client, _ks = env
        order = server.new_order(account, ["example.com"])
        status = server.attempt_challenges(order, T0)
        assert status is OrderStatus.INVALID
        assert order.error

    def test_finalize_requires_ready(self, env):
        _zones, server, account, _client, key_store = env
        order = server.new_order(account, ["example.com"])
        key = key_store.generate("subscriber", T0)
        with pytest.raises(IssuanceError, match="not ready"):
            server.finalize(order, key, T0)

    def test_unknown_account_rejected(self, env):
        from repro.pki.acme import AcmeAccount

        _zones, server, _account, _client, _ks = env
        ghost = AcmeAccount(account_id="acct-ghost", contact="x", created_on=T0)
        with pytest.raises(KeyError):
            server.new_order(ghost, ["example.com"])

    def test_wildcard_order_validates_base_domain(self, env):
        _zones, _server, _account, client, _ks = env
        cert = client.obtain(["*.example.com"], T0)
        assert cert.san_dns_names == ("*.example.com",)

    def test_challenge_records_cleaned_after_issuance(self, env):
        zones, _server, _account, client, _ks = env
        client.obtain(["example.com"], T0)
        from repro.dns.records import RecordType

        zone = zones.get("example.com")
        assert zone.lookup("_acme-challenge.example.com", RecordType.TXT) == []

    def test_key_reuse_across_renewals(self, env):
        _zones, _server, _account, client, key_store = env
        first = client.obtain(["example.com"], T0)
        renewed = client.obtain(["example.com"], T0 + 60, reuse_key=first.subject_key)
        assert renewed.subject_key is first.subject_key
        assert renewed.serial != first.serial


class TestRenewDue:
    def test_renewal_at_two_thirds(self, env):
        _zones, _server, _account, client, _ks = env
        cert = client.obtain(["example.com"], T0)
        assert not AcmeClient.renew_due(cert, T0 + 59)
        assert AcmeClient.renew_due(cert, T0 + 60)
