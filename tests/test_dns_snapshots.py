"""Tests for daily snapshots and day-over-day diffing."""

import pytest

from repro.dns.records import RecordType
from repro.dns.snapshots import (
    DailySnapshot,
    DomainObservation,
    SnapshotStore,
    diff_days,
)
from repro.util.dates import day


def snap(d, observations):
    snapshot = DailySnapshot(d)
    for apex, records in observations.items():
        for rtype, values in records.items():
            snapshot.observe(apex, rtype, values)
    return snapshot


D1, D2 = day(2022, 8, 1), day(2022, 8, 2)


class TestDailySnapshot:
    def test_observe_and_get(self):
        snapshot = snap(D1, {"a.com": {RecordType.NS: ["ns1.x.net"]}})
        obs = snapshot.get("a.com")
        assert obs.get(RecordType.NS) == frozenset({"ns1.x.net"})
        assert obs.get(RecordType.A) == frozenset()

    def test_delegation_targets_union_ns_cname(self):
        obs = DomainObservation("a.com")
        obs.set(RecordType.NS, ["ns1.x.net"])
        obs.set(RecordType.CNAME, ["edge.cdn.net"])
        assert obs.delegation_targets() == frozenset({"ns1.x.net", "edge.cdn.net"})

    def test_record_count(self):
        snapshot = snap(
            D1, {"a.com": {RecordType.NS: ["n1", "n2"], RecordType.A: ["192.0.2.1"]}}
        )
        assert snapshot.record_count() == 3

    def test_from_observations_shares_objects(self):
        obs = DomainObservation("a.com")
        obs.set(RecordType.NS, ["ns1.x.net"])
        mapping = {"a.com": obs}
        s1 = DailySnapshot.from_observations(D1, mapping)
        s2 = DailySnapshot.from_observations(D2, mapping)
        assert s1.get("a.com") is s2.get("a.com")


class TestDiffDays:
    def test_no_change_yields_nothing(self):
        before = snap(D1, {"a.com": {RecordType.NS: ["ns1.x.net"]}})
        after = snap(D2, {"a.com": {RecordType.NS: ["ns1.x.net"]}})
        assert list(diff_days(before, after)) == []

    def test_removed_and_added(self):
        before = snap(D1, {"a.com": {RecordType.NS: ["old.ns.net"]}})
        after = snap(D2, {"a.com": {RecordType.NS: ["new.ns.net"]}})
        diffs = list(diff_days(before, after))
        assert len(diffs) == 1
        diff = diffs[0]
        assert diff.removed_of(RecordType.NS) == frozenset({"old.ns.net"})
        assert diff.added_of(RecordType.NS) == frozenset({"new.ns.net"})
        assert not diff.disappeared

    def test_disappearance(self):
        before = snap(D1, {"a.com": {RecordType.NS: ["ns1.x.net"]}})
        after = snap(D2, {})
        diffs = list(diff_days(before, after))
        assert diffs[0].disappeared
        assert diffs[0].removed_of(RecordType.NS) == frozenset({"ns1.x.net"})

    def test_new_apex_not_reported(self):
        before = snap(D1, {})
        after = snap(D2, {"new.com": {RecordType.NS: ["ns1.x.net"]}})
        assert list(diff_days(before, after)) == []

    def test_partial_rrset_change(self):
        before = snap(D1, {"a.com": {RecordType.NS: ["n1", "n2"]}})
        after = snap(D2, {"a.com": {RecordType.NS: ["n2", "n3"]}})
        diff = next(diff_days(before, after))
        assert diff.removed_of(RecordType.NS) == frozenset({"n1"})
        assert diff.added_of(RecordType.NS) == frozenset({"n3"})


class TestSnapshotStore:
    def test_days_sorted(self):
        store = SnapshotStore()
        store.put(DailySnapshot(D2))
        store.put(DailySnapshot(D1))
        assert store.days() == [D1, D2]

    def test_consecutive_pairs(self):
        store = SnapshotStore()
        d3 = day(2022, 8, 5)  # gap: scans can miss days
        for d in (D1, D2, d3):
            store.put(DailySnapshot(d))
        pairs = [(a.day, b.day) for a, b in store.consecutive_pairs()]
        assert pairs == [(D1, D2), (D2, d3)]

    def test_get_missing_day(self):
        assert SnapshotStore().get(D1) is None
