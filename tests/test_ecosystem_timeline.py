"""Tests for the calendar anchors and era logic."""

from repro.ecosystem.timeline import DEFAULT_TIMELINE, Timeline
from repro.util.dates import day


class TestWindows:
    def test_ct_window_matches_paper(self):
        assert DEFAULT_TIMELINE.ct_start == day(2013, 3, 1)
        assert DEFAULT_TIMELINE.ct_end == day(2023, 5, 12)

    def test_revocation_cutoff_is_13_months_before_crl_start(self):
        # Paper §4.1: October 1, 2021 = 13 months prior to collection.
        assert DEFAULT_TIMELINE.revocation_cutoff == day(2021, 10, 1)
        assert DEFAULT_TIMELINE.crl_collection_start == day(2022, 11, 1)

    def test_dns_scan_window_is_three_months(self):
        span = DEFAULT_TIMELINE.dns_scan_end - DEFAULT_TIMELINE.dns_scan_start
        assert 88 <= span <= 92

    def test_window_predicates(self):
        t = DEFAULT_TIMELINE
        assert t.in_dns_scan_window(day(2022, 9, 15))
        assert not t.in_dns_scan_window(day(2022, 11, 1))
        assert t.in_crl_window(day(2023, 1, 1))
        assert not t.in_crl_window(day(2023, 6, 1))
        assert t.in_whois_window(day(2018, 1, 1))
        assert not t.in_whois_window(day(2022, 1, 1))


class TestCruiselinerEra:
    def test_before_era_zero(self):
        assert DEFAULT_TIMELINE.cruiseliner_share(day(2016, 1, 1)) == 0.0

    def test_peak_era_full(self):
        assert DEFAULT_TIMELINE.cruiseliner_share(day(2018, 6, 1)) == 1.0

    def test_phaseout_ramps_down(self):
        mid = DEFAULT_TIMELINE.cruiseliner_phaseout_start + 90
        share = DEFAULT_TIMELINE.cruiseliner_share(mid)
        assert 0.0 < share < 1.0

    def test_after_phaseout_zero(self):
        assert DEFAULT_TIMELINE.cruiseliner_share(day(2020, 1, 1)) == 0.0

    def test_breach_exposure_window_ordering(self):
        t = DEFAULT_TIMELINE
        assert (
            t.godaddy_breach_exposure_start
            < t.godaddy_breach_disclosure
            < t.godaddy_breach_revocation_end
        )
