"""Failure-injection integration tests.

Measurement infrastructure fails in practice: CRL endpoints block, DNS
lookups time out, scan days go missing. These tests verify the pipeline
degrades the way the paper's did — losing coverage, not correctness.
"""

import pytest

from repro.core.detectors.key_compromise import KeyCompromiseDetector
from repro.core.detectors.managed_tls import ManagedTlsDetector, find_departures
from repro.core.stale import StalenessClass
from repro.ct.dedup import CertificateCorpus
from repro.dns.records import RecordType
from repro.dns.snapshots import DailySnapshot, SnapshotStore
from repro.ecosystem import WorldConfig, WorldSimulator
from repro.ecosystem.events import GroundTruthEventType
from repro.revocation.crl import CertificateRevocationList, CrlEntry
from repro.revocation.reasons import RevocationReason
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2022, 8, 1)
CF_NS = ("ada.ns.cloudflare.com", "bob.ns.cloudflare.com")


class TestCrlOutages:
    def _cert(self):
        return make_cert(sans=("kc.com",), serial=1, authority_key_id="akid-f",
                         not_before=T0 - 100, lifetime=365)

    def _crl(self, update_day):
        crl = CertificateRevocationList(
            issuer_name="F CA", authority_key_id="akid-f",
            this_update=update_day, next_update=update_day + 7, crl_number=1,
        )
        crl.add(CrlEntry(1, T0, RevocationReason.KEY_COMPROMISE))
        return crl

    def test_missing_fetch_days_do_not_lose_revocations(self):
        """A revocation present in ANY surviving daily CRL is detected."""
        corpus = CertificateCorpus()
        corpus.ingest([self._cert()])
        # Only 2 of 30 daily fetches succeeded.
        crls = [self._crl(T0 + 3), self._crl(T0 + 27)]
        findings = KeyCompromiseDetector(corpus).detect(crls)
        assert len(findings.of_class(StalenessClass.KEY_COMPROMISE)) == 1

    def test_total_outage_yields_no_findings_not_errors(self):
        corpus = CertificateCorpus()
        corpus.ingest([self._cert()])
        findings = KeyCompromiseDetector(corpus).detect([])
        assert len(findings) == 0


class TestScanGaps:
    def _store(self, days):
        store = SnapshotStore()
        for scan_day, observations in days.items():
            snapshot = DailySnapshot(scan_day)
            for apex, ns in observations.items():
                snapshot.observe(apex, RecordType.NS, ns)
            store.put(snapshot)
        return store

    def test_missing_scan_days_still_yield_departure(self):
        """A three-day scanner outage spanning the change: the diff between
        the surviving neighbors still shows the departure."""
        store = self._store(
            {
                T0: {"cust.com": CF_NS},
                T0 + 4: {"cust.com": ("ns1.other.net",)},  # days 1-3 lost
            }
        )
        departures = find_departures(store)
        assert len(departures) == 1
        assert departures[0].departure_day == T0 + 4

    def test_departure_and_return_within_gap_is_missed(self):
        """Fundamental limit: leaving and returning entirely inside an
        outage window is invisible (a known undercount, like the paper's)."""
        store = self._store(
            {
                T0: {"cust.com": CF_NS},
                T0 + 4: {"cust.com": CF_NS},  # left on day 1, back on day 3
            }
        )
        assert find_departures(store) == []


class TestEndToEndScanLoss:
    def test_lossy_scans_do_not_flood_false_departures(self):
        """With 5% per-domain daily scan loss, the neighbor-confirmation
        rule keeps managed-TLS findings anchored to real events."""
        config = WorldConfig(seed=31).scaled(0.05)
        from dataclasses import replace

        lossy = replace(config, dns_scan_loss_rate=0.05)
        world = WorldSimulator(lossy).run()
        detector = ManagedTlsDetector(world.corpus)
        findings = detector.detect(world.dns_snapshots)
        timeline = world.config.timeline
        true_changes = {
            e.domain
            for e in world.ground_truth
            if e.event_type in (
                GroundTruthEventType.MANAGED_TLS_DEPARTED,
                GroundTruthEventType.DOMAIN_EXPIRED_LAPSED,
            )
            and timeline.dns_scan_start < e.day <= timeline.dns_scan_end + 1
        }
        from repro.psl.registered import e2ld

        detected = {
            e2ld(f.affected_domain)
            for f in findings.of_class(StalenessClass.MANAGED_TLS_DEPARTURE)
        }
        false_positives = detected - true_changes
        # Transient losses must not manufacture departures wholesale.
        assert len(false_positives) <= max(2, len(detected) // 4)
