"""Tests for the DANE/TLSA module."""

import pytest

from repro.dns.dane import (
    DaneDeployment,
    StalenessComparison,
    TlsaMatching,
    TlsaRecord,
    TlsaSelector,
    TlsaUsage,
    compare_staleness_windows,
    tlsa_name,
)
from repro.dns.zone import ZoneStore
from repro.pki.keys import KeyStore
from repro.util.dates import day
from tests.conftest import make_cert

T0 = day(2022, 1, 1)


@pytest.fixture()
def deployment():
    zones = ZoneStore()
    zones.create("example.com")
    return DaneDeployment(zones)


class TestTlsaRecord:
    def test_rdata_roundtrip(self):
        record = TlsaRecord(TlsaUsage.DANE_EE, TlsaSelector.SPKI, TlsaMatching.SHA256, "ab" * 20)
        assert TlsaRecord.from_rdata(record.to_rdata()) == record

    def test_malformed_rdata_rejected(self):
        with pytest.raises(ValueError):
            TlsaRecord.from_rdata("3 1 1")

    def test_for_key_binds_spki(self, key_store):
        key = key_store.generate("owner", T0)
        record = TlsaRecord.for_key(key)
        cert = make_cert(key=key, not_before=T0)
        assert record.matches_certificate(cert)

    def test_mismatched_key_fails(self, key_store):
        record = TlsaRecord.for_key(key_store.generate("owner", T0))
        other = make_cert(key=key_store.generate("owner", T0), not_before=T0)
        assert not record.matches_certificate(other)

    def test_tlsa_name_format(self):
        assert tlsa_name("www.example.com") == "_443._tcp.www.example.com"
        assert tlsa_name("example.com", 25, "tcp") == "_25._tcp.example.com"


class TestDeployment:
    def test_publish_lookup_verify(self, deployment, key_store):
        key = key_store.generate("owner", T0)
        cert = make_cert(sans=("example.com",), key=key, not_before=T0)
        deployment.publish("example.com", TlsaRecord.for_key(key))
        assert deployment.verify("example.com", cert)

    def test_verify_fails_without_records(self, deployment):
        cert = make_cert(sans=("example.com",), not_before=T0)
        assert not deployment.verify("example.com", cert)

    def test_key_rotation_replaces_binding_immediately(self, deployment, key_store):
        old_key = key_store.generate("owner", T0)
        new_key = key_store.generate("owner", T0 + 100)
        old_cert = make_cert(sans=("example.com",), key=old_key, not_before=T0)
        new_cert = make_cert(sans=("example.com",), key=new_key, not_before=T0 + 100)
        deployment.publish("example.com", TlsaRecord.for_key(old_key))
        deployment.publish("example.com", TlsaRecord.for_key(new_key))
        # The DANE property: the old key is no longer accepted at all,
        # even though old_cert is still unexpired.
        assert old_cert.is_valid_on(T0 + 150)
        assert not deployment.verify("example.com", old_cert)
        assert deployment.verify("example.com", new_cert)

    def test_publish_requires_zone(self, deployment):
        with pytest.raises(KeyError):
            deployment.publish("nozone.net", TlsaRecord.for_key(KeyStore().generate("o", T0)))


class TestStalenessComparison:
    def test_pki_window_is_remaining_lifetime(self):
        cert = make_cert(not_before=T0, lifetime=365)
        comparison = compare_staleness_windows(cert, T0 + 65)
        assert comparison.pki_stale_days == 300
        assert comparison.dane_stale_seconds == 3600

    def test_ratio_is_orders_of_magnitude(self):
        cert = make_cert(not_before=T0, lifetime=365)
        comparison = compare_staleness_windows(cert, T0 + 65)
        # 300 days vs 1 hour: > 1000x, the paper's hours-vs-months contrast.
        assert comparison.pki_to_dane_ratio > 1000

    def test_expired_certificate_no_pki_window(self):
        cert = make_cert(not_before=T0, lifetime=90)
        comparison = compare_staleness_windows(cert, T0 + 100)
        assert comparison.pki_stale_days == 0
