"""Columnar segment format: round-trips, header validation, zone maps.

The segment file is the unit of the columnar bundle layout — everything
above it (tables, indexes, the ``Dataset`` API) assumes a segment either
opens with every header invariant intact or raises
:class:`SegmentFormatError` (a ``ValueError``) immediately. These tests
pin the format contract the way the CLI relies on it: corruption maps
to the existing typed errors, never to a crash mid-scan.
"""

from __future__ import annotations

import struct

import pytest

from repro.data.segment import (
    MAGIC,
    VERSION,
    I64_MAX,
    I64_MIN,
    Segment,
    SegmentFormatError,
    SegmentWriter,
)

_PREAMBLE = struct.Struct("<4sHHQ")


def sample_writer() -> SegmentWriter:
    writer = SegmentWriter("certs", meta={"origin": "test"})
    writer.add_i64("serial", [3, 1, 2, -7, I64_MAX])
    writer.add_i64("not_before", [10, 20, 30, 40, 50])
    writer.add_str("issuer", ["CA-1", "", "CA-2", "ünïcode", "CA-1"])
    writer.add_json("tags", [[], ["a"], {"k": 1}, None, ["b", "c"]])
    return writer


class TestRoundTrip:
    def test_in_memory_round_trip(self):
        segment = Segment.from_bytes(sample_writer().to_bytes())
        assert segment.table == "certs"
        assert segment.rows == 5
        assert segment.meta == {"origin": "test"}
        assert list(segment.column("serial")) == [3, 1, 2, -7, I64_MAX]
        assert list(segment.column("issuer")) == [
            "CA-1", "", "CA-2", "ünïcode", "CA-1",
        ]
        assert list(segment.column("tags")) == [
            [], ["a"], {"k": 1}, None, ["b", "c"],
        ]

    def test_file_round_trip_via_mmap(self, tmp_path):
        path = str(tmp_path / "sample.seg")
        sample_writer().write(path)
        with Segment.open(path) as segment:
            assert segment.rows == 5
            assert segment.column("serial")[3] == -7
            assert segment.column("issuer")[3] == "ünïcode"

    def test_version_and_magic_in_header(self, tmp_path):
        path = str(tmp_path / "sample.seg")
        sample_writer().write(path)
        with open(path, "rb") as handle:
            magic, version, _flags, header_len = _PREAMBLE.unpack(
                handle.read(_PREAMBLE.size)
            )
        assert magic == MAGIC
        assert version == VERSION
        assert header_len > 0

    def test_i64_extremes_survive(self):
        writer = SegmentWriter("certs")
        writer.add_i64("x", [I64_MIN, 0, I64_MAX])
        segment = Segment.from_bytes(writer.to_bytes())
        assert list(segment.column("x")) == [I64_MIN, 0, I64_MAX]

    def test_str_cells_decode_lazily(self):
        segment = Segment.from_bytes(sample_writer().to_bytes())
        column = segment.column("issuer")
        assert column.cell_bytes(0) == b"CA-1"
        assert column.cell_bytes(1) == b""

    def test_empty_segment(self):
        writer = SegmentWriter("certs")
        segment = Segment.from_bytes(writer.to_bytes())
        assert segment.rows == 0
        assert segment.column_names() == []


class TestZoneMaps:
    def test_i64_zone_map_is_min_max(self):
        segment = Segment.from_bytes(sample_writer().to_bytes())
        assert segment.zonemap["serial"] == {"min": -7, "max": I64_MAX}
        assert segment.zonemap["not_before"] == {"min": 10, "max": 50}

    def test_str_zone_map_is_lexicographic(self):
        segment = Segment.from_bytes(sample_writer().to_bytes())
        assert segment.zonemap["issuer"] == {"min": "", "max": "ünïcode"}

    def test_json_columns_have_no_zone_map(self):
        segment = Segment.from_bytes(sample_writer().to_bytes())
        assert "tags" not in segment.zonemap


class TestWriterValidation:
    def test_row_count_mismatch_rejected(self):
        writer = SegmentWriter("certs")
        writer.add_i64("a", [1, 2, 3])
        with pytest.raises(ValueError):
            writer.add_i64("b", [1, 2])

    def test_duplicate_column_rejected(self):
        writer = SegmentWriter("certs")
        writer.add_i64("a", [1])
        with pytest.raises(ValueError):
            writer.add_str("a", ["x"])


class TestCorruption:
    """Every corruption mode surfaces as SegmentFormatError (ValueError)."""

    def test_bad_magic(self):
        payload = bytearray(sample_writer().to_bytes())
        payload[0:4] = b"NOPE"
        with pytest.raises(SegmentFormatError):
            Segment.from_bytes(bytes(payload))

    def test_unknown_version(self):
        payload = bytearray(sample_writer().to_bytes())
        payload[4:6] = struct.pack("<H", VERSION + 1)
        with pytest.raises(SegmentFormatError):
            Segment.from_bytes(bytes(payload))

    def test_truncated_payload(self):
        payload = sample_writer().to_bytes()
        with pytest.raises(SegmentFormatError):
            Segment.from_bytes(payload[: len(payload) // 2])

    def test_truncated_preamble(self):
        with pytest.raises(SegmentFormatError):
            Segment.from_bytes(sample_writer().to_bytes()[:6])

    def test_zero_byte_file(self, tmp_path):
        path = tmp_path / "empty.seg"
        path.write_bytes(b"")
        with pytest.raises(SegmentFormatError):
            Segment.open(str(path))

    def test_truncated_file_on_disk(self, tmp_path):
        path = tmp_path / "short.seg"
        path.write_bytes(sample_writer().to_bytes()[:32])
        with pytest.raises(SegmentFormatError):
            Segment.open(str(path))

    def test_format_error_is_valueerror(self):
        assert issubclass(SegmentFormatError, ValueError)


class TestLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "sample.seg")
        sample_writer().write(path)
        segment = Segment.open(path)
        assert segment.column("serial")[0] == 3
        segment.close()
        segment.close()

    def test_write_is_atomic(self, tmp_path):
        # No .tmp file survives a successful write.
        path = tmp_path / "sample.seg"
        sample_writer().write(str(path))
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "sample.seg"]
        assert leftovers == []
