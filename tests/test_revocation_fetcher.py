"""Tests for the daily CRL fetcher with failure injection."""

import pytest

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.revocation.fetcher import CrlFetcher, FailureProfile, FetchOutcome
from repro.revocation.publisher import CaCrlPublisher, DisclosureList
from repro.util.dates import day
from repro.util.rng import RngStream

T0 = day(2022, 11, 1)


@pytest.fixture()
def disclosure(key_store):
    disclosure = DisclosureList()
    for name, operator in (("Good CA", "GoodOp"), ("Blocked CA", "BlockedOp")):
        ca = CertificateAuthority(
            name, key_store, policy=IssuancePolicy(require_validation=False),
            operator=operator,
        )
        disclosure.disclose(CaCrlPublisher(ca))
    return disclosure


class TestFetcher:
    def test_clean_fetch_collects_all(self, disclosure):
        fetcher = CrlFetcher(disclosure, RngStream(1, "f"))
        result = fetcher.fetch_day(T0)
        assert len(result.crls) == 2
        assert result.failures == []
        assert fetcher.overall_coverage() == 1.0

    def test_blocked_operator_never_succeeds(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"BlockedOp": FailureProfile(blocked=True)},
        )
        fetcher.fetch_range(T0, T0 + 9)
        stats = fetcher.stats_by_operator
        assert stats["BlockedOp"].coverage == 0.0
        assert stats["GoodOp"].coverage == 1.0
        assert stats["BlockedOp"].outcomes == {FetchOutcome.BLOCKED.value: 10}

    def test_rate_limited_transient_failures(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"GoodOp": FailureProfile(rate_limit_probability=0.5)},
        )
        fetcher.fetch_range(T0, T0 + 199)
        coverage = fetcher.stats_by_operator["GoodOp"].coverage
        assert 0.35 < coverage < 0.65  # ~half succeed

    def test_parse_errors_counted(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"GoodOp": FailureProfile(parse_error_probability=1.0)},
        )
        result = fetcher.fetch_day(T0)
        assert (
            fetcher.stats_by_operator["GoodOp"].outcomes[FetchOutcome.PARSE_ERROR.value]
            == 1
        )
        assert len(result.crls) == 1  # the other CA still fetched

    def test_overall_coverage_aggregates(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"BlockedOp": FailureProfile(blocked=True)},
        )
        fetcher.fetch_day(T0)
        assert fetcher.overall_coverage() == 0.5

    def test_fetch_range_returns_total(self, disclosure):
        fetcher = CrlFetcher(disclosure, RngStream(1, "f"))
        assert fetcher.fetch_range(T0, T0 + 4) == 10  # 2 CAs x 5 days
