"""Tests for the daily CRL fetcher with failure injection."""

import pytest

from repro.pki.ca import CertificateAuthority, IssuancePolicy
from repro.revocation.crl import merge_crl_series
from repro.revocation.fetcher import CrlFetcher, FailureProfile, FetchOutcome
from repro.revocation.publisher import CaCrlPublisher, DisclosureList
from repro.util.dates import day
from repro.util.rng import RngStream

T0 = day(2022, 11, 1)


@pytest.fixture()
def disclosure(key_store):
    disclosure = DisclosureList()
    for name, operator in (("Good CA", "GoodOp"), ("Blocked CA", "BlockedOp")):
        ca = CertificateAuthority(
            name, key_store, policy=IssuancePolicy(require_validation=False),
            operator=operator,
        )
        disclosure.disclose(CaCrlPublisher(ca))
    return disclosure


class TestFetcher:
    def test_clean_fetch_collects_all(self, disclosure):
        fetcher = CrlFetcher(disclosure, RngStream(1, "f"))
        result = fetcher.fetch_day(T0)
        assert len(result.crls) == 2
        assert result.failures == []
        assert fetcher.overall_coverage() == 1.0

    def test_blocked_operator_never_succeeds(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"BlockedOp": FailureProfile(blocked=True)},
        )
        fetcher.fetch_range(T0, T0 + 9)
        stats = fetcher.stats_by_operator
        assert stats["BlockedOp"].coverage == 0.0
        assert stats["GoodOp"].coverage == 1.0
        assert stats["BlockedOp"].outcomes == {FetchOutcome.BLOCKED.value: 10}

    def test_rate_limited_transient_failures(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"GoodOp": FailureProfile(rate_limit_probability=0.5)},
        )
        fetcher.fetch_range(T0, T0 + 199)
        coverage = fetcher.stats_by_operator["GoodOp"].coverage
        assert 0.35 < coverage < 0.65  # ~half succeed

    def test_parse_errors_counted(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"GoodOp": FailureProfile(parse_error_probability=1.0)},
        )
        result = fetcher.fetch_day(T0)
        assert (
            fetcher.stats_by_operator["GoodOp"].outcomes[FetchOutcome.PARSE_ERROR.value]
            == 1
        )
        assert len(result.crls) == 1  # the other CA still fetched

    def test_overall_coverage_aggregates(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"BlockedOp": FailureProfile(blocked=True)},
        )
        fetcher.fetch_day(T0)
        assert fetcher.overall_coverage() == 0.5

    def test_fetch_range_returns_total(self, disclosure):
        fetcher = CrlFetcher(disclosure, RngStream(1, "f"))
        assert fetcher.fetch_range(T0, T0 + 4) == 10  # 2 CAs x 5 days


class TestRetries:
    def test_retries_recover_transient_rate_limits(self, disclosure):
        flaky = {"GoodOp": FailureProfile(rate_limit_probability=0.5)}
        single = CrlFetcher(disclosure, RngStream(1, "f"), profiles=flaky)
        single.fetch_range(T0, T0 + 99)
        retried = CrlFetcher(
            disclosure, RngStream(1, "f"), profiles=flaky, max_attempts=5
        )
        retried.fetch_range(T0, T0 + 99)
        assert (
            retried.stats_by_operator["GoodOp"].coverage
            > single.stats_by_operator["GoodOp"].coverage
        )
        assert retried.stats_by_operator["GoodOp"].coverage > 0.9
        assert retried.stats_by_operator["GoodOp"].retries > 0

    def test_retry_exhaustion_still_fails(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"GoodOp": FailureProfile(rate_limit_probability=1.0)},
            max_attempts=4,
        )
        result = fetcher.fetch_day(T0)
        stats = fetcher.stats_by_operator["GoodOp"]
        assert stats.outcomes == {FetchOutcome.RATE_LIMITED.value: 1}
        assert stats.retries == 3  # attempt 1 + 3 retries, all exhausted
        assert any(outcome is FetchOutcome.RATE_LIMITED for _, outcome in result.failures)

    def test_blocked_servers_not_retried(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"BlockedOp": FailureProfile(blocked=True)},
            max_attempts=10,
        )
        fetcher.fetch_range(T0, T0 + 4)
        assert fetcher.stats_by_operator["BlockedOp"].retries == 0

    def test_parse_errors_not_retried(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"GoodOp": FailureProfile(parse_error_probability=1.0)},
            max_attempts=10,
        )
        fetcher.fetch_range(T0, T0 + 4)
        stats = fetcher.stats_by_operator["GoodOp"]
        assert stats.retries == 0
        assert stats.outcomes == {FetchOutcome.PARSE_ERROR.value: 5}

    def test_default_single_attempt_never_retries(self, disclosure):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"GoodOp": FailureProfile(rate_limit_probability=1.0)},
        )
        fetcher.fetch_range(T0, T0 + 9)
        assert fetcher.stats_by_operator["GoodOp"].retries == 0

    def test_max_attempts_clamped_to_one(self, disclosure):
        fetcher = CrlFetcher(disclosure, RngStream(1, "f"), max_attempts=0)
        assert fetcher.max_attempts == 1


class TestRetryRngIsolation:
    """Regression: retry draws must not consume from the shared stream.

    Pre-fix, every retry advanced the one ``RngStream`` all operators
    share, so turning retries on for a flaky operator shifted the draw
    sequence seen by every operator disclosed after it — seeded worlds
    changed outcomes based on an unrelated operator's retry setting.
    Retries now draw from a per-(url, day) fork derived from the seed,
    leaving the shared stream untouched.
    """

    @pytest.fixture()
    def flaky_then_observed(self, key_store):
        disclosure = DisclosureList()
        # FlakyOp is disclosed FIRST so its (pre-fix) retry draws would
        # shift the stream before ObservedOp's daily draw.
        for name, operator in (("Flaky CA", "FlakyOp"), ("Observed CA", "ObservedOp")):
            ca = CertificateAuthority(
                name, key_store, policy=IssuancePolicy(require_validation=False),
                operator=operator,
            )
            disclosure.disclose(CaCrlPublisher(ca))
        return disclosure

    PROFILES = {
        "FlakyOp": FailureProfile(rate_limit_probability=0.5),  # retried
        "ObservedOp": FailureProfile(parse_error_probability=0.5),  # never retried
    }

    def _observed_outcomes(self, disclosure, max_attempts):
        fetcher = CrlFetcher(
            disclosure,
            RngStream(99, "fetch"),
            profiles=self.PROFILES,
            max_attempts=max_attempts,
        )
        outcomes = []
        for current in range(T0, T0 + 200):
            result = fetcher.fetch_day(current)
            outcomes.append(
                sorted(o.value for url, o in result.failures if "observed" in url)
            )
        return fetcher.stats_by_operator["ObservedOp"], outcomes

    def test_other_operators_retries_do_not_perturb_outcomes(self, flaky_then_observed):
        baseline_stats, baseline = self._observed_outcomes(flaky_then_observed, 1)
        retried_stats, retried = self._observed_outcomes(flaky_then_observed, 4)
        assert baseline == retried
        assert baseline_stats.outcomes == retried_stats.outcomes
        # ObservedOp itself never retries (parse errors are deterministic),
        # so any outcome difference could only come from stream pollution.
        assert baseline_stats.retries == retried_stats.retries == 0

    def test_flaky_operator_actually_retries(self, flaky_then_observed):
        fetcher = CrlFetcher(
            flaky_then_observed,
            RngStream(99, "fetch"),
            profiles=self.PROFILES,
            max_attempts=4,
        )
        fetcher.fetch_range(T0, T0 + 199)
        assert fetcher.stats_by_operator["FlakyOp"].retries > 0

    def test_retry_draws_are_deterministic_per_url_and_day(self, flaky_then_observed):
        runs = [
            self._observed_outcomes(flaky_then_observed, 4)[1] for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestObsCounters:
    def test_fetch_counters_match_stats(self, disclosure, key_store):
        from repro.obs import names, use_registry

        with use_registry() as registry:
            fetcher = CrlFetcher(
                disclosure,
                RngStream(1, "f"),
                profiles={"GoodOp": FailureProfile(rate_limit_probability=0.6)},
                max_attempts=3,
            )
            fetcher.fetch_range(T0, T0 + 49)
            attempts = registry.counter(
                names.CRL_FETCH_ATTEMPTS, names.CRL_FETCH_ATTEMPTS_HELP,
                labels=("operator",),
            )
            retries = registry.counter(
                names.CRL_FETCH_RETRIES, names.CRL_FETCH_RETRIES_HELP,
                labels=("operator",),
            )
            outcomes = registry.counter(
                names.CRL_FETCH_OUTCOMES, names.CRL_FETCH_OUTCOMES_HELP,
                labels=("operator", "outcome"),
            )
            for operator, stats in fetcher.stats_by_operator.items():
                assert attempts.value(operator=operator) == (
                    stats.attempted + stats.retries
                )
                assert retries.value(operator=operator) == stats.retries
                for outcome_value, count in stats.outcomes.items():
                    assert outcomes.value(
                        operator=operator, outcome=outcome_value
                    ) == count


class TestPartialSeries:
    """Failed fetch days leave gaps; because CRLs are cumulative, a later
    successful fetch still recovers revocations missed during the outage."""

    @pytest.fixture()
    def flaky_world(self, key_store):
        ca = CertificateAuthority(
            "Flaky CA", key_store,
            policy=IssuancePolicy(require_validation=False),
            operator="FlakyOp",
        )
        publisher = CaCrlPublisher(ca)
        disclosure = DisclosureList()
        disclosure.disclose(publisher)
        cert = ca.issue(
            ["flaky.example"], key_store.generate("flaky", T0 - 30),
            issuance_day=T0 - 30, skip_validation=True,
        )
        return disclosure, publisher, cert

    def test_gap_days_recovered_by_later_fetch(self, flaky_world):
        disclosure, publisher, cert = flaky_world
        # Every day up to T0+5 is rate limited; the revocation lands in the
        # outage window and is only seen once fetching recovers.
        fetcher = CrlFetcher(
            disclosure,
            RngStream(1, "f"),
            profiles={"FlakyOp": FailureProfile(rate_limit_probability=1.0)},
        )
        fetcher.fetch_range(T0, T0 + 5)
        publisher.revoke(cert, T0 + 3)
        assert fetcher.collected == []

        fetcher._profiles = {}  # outage ends
        fetcher.fetch_day(T0 + 6)
        merged = merge_crl_series(fetcher.collected)
        entry = merged[(cert.authority_key_id, cert.serial)]
        assert entry.revocation_day == T0 + 3
        stats = fetcher.stats_by_operator["FlakyOp"]
        assert stats.coverage == pytest.approx(1 / 7)

    def test_partial_series_merge_keeps_earliest_revocation_day(self, flaky_world):
        disclosure, publisher, cert = flaky_world
        publisher.revoke(cert, T0 + 1)
        fetcher = CrlFetcher(disclosure, RngStream(1, "f"))
        fetcher.fetch_day(T0 + 2)
        fetcher.fetch_day(T0 + 9)  # gap between the two successful days
        merged = merge_crl_series(fetcher.collected)
        assert merged[(cert.authority_key_id, cert.serial)].revocation_day == T0 + 1
        assert len(fetcher.collected) == 2
