"""FindingsIndex correctness, independent of HTTP.

The index is a read-optimized *view*, so every answer must equal the
batch pipeline's numbers on the seed world — aggregates vs
``aggregate_table()``, survival vs ``build_fig8``, caps vs
``LifetimePolicySimulator`` — plus the edge cases a view invites
(empty result, unknown domain, single-finding class).
"""

from __future__ import annotations

import gzip
import os

import pytest

from repro.analysis.figures import build_fig8
from repro.core.lifetime import LifetimePolicySimulator
from repro.core.pipeline import PipelineResult
from repro.core.stale import StaleCertificate, StaleFindings, StalenessClass
from repro.data import save_legacy_bundle, write_dataset
from repro.parallel.pipeline import canonical_order_key
from repro.psl.registered import e2ld
from repro.serve import FindingsIndex
from repro.util.dates import day, day_to_iso
from repro.util.stats import percentile
from tests.conftest import make_cert


@pytest.fixture(scope="module")
def index(pipeline_result):
    return FindingsIndex(pipeline_result)


@pytest.fixture(scope="module")
def bundle_dir(small_world, tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve-bundle")
    write_dataset(small_world.to_bundle(), str(directory))
    return str(directory)


@pytest.fixture(scope="module")
def legacy_bundle_dir(small_world, tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve-bundle-legacy")
    save_legacy_bundle(small_world.to_bundle(), str(directory))
    return str(directory)


class TestGoldenEquivalence:
    """Index answers == batch pipeline numbers on the seed world."""

    def test_class_aggregates_match_aggregate_table(self, index, pipeline_result):
        expected = pipeline_result.aggregate_table()
        rows = index.aggregates("class")
        assert [r["class"] for r in rows] == [
            a.staleness_class.value for a in expected
        ]
        for row, aggregate in zip(rows, expected):
            assert row["stale_certificates"] == aggregate.stale_certificates
            assert row["stale_fqdns"] == aggregate.stale_fqdns
            assert row["stale_e2lds"] == aggregate.stale_e2lds
            assert row["daily_certificates"] == pytest.approx(
                aggregate.daily_certificates
            )
            assert row["daily_e2lds"] == pytest.approx(aggregate.daily_e2lds)
            assert row["first_day"] == day_to_iso(aggregate.first_day)
            assert row["last_day"] == day_to_iso(aggregate.last_day)

    def test_class_aggregate_staleness_stats_match_findings(
        self, index, pipeline_result
    ):
        for row in index.aggregates("class"):
            cls = StalenessClass(row["class"])
            days = [
                f.staleness_days for f in pipeline_result.findings.of_class(cls)
            ]
            assert row["staleness_days_total"] == sum(days)
            assert row["median_staleness_days"] == pytest.approx(
                percentile(days, 50)
            )

    def test_survival_matches_fig8(self, index, pipeline_result):
        for series in build_fig8(pipeline_result.findings):
            entry = index.survival(series.staleness_class, (90, 215))
            assert entry["survival"]["90"] == pytest.approx(series.survival_at_90)
            assert entry["survival"]["215"] == pytest.approx(series.survival_at_215)
            assert entry["n"] == len(
                pipeline_result.findings.of_class(series.staleness_class)
            )

    def test_survival_median_matches_percentile(self, index, pipeline_result):
        for cls in index.survival_classes():
            dti = [
                f.days_to_invalidation
                for f in pipeline_result.findings.of_class(cls)
            ]
            entry = index.survival(cls, (90,))
            assert entry["median_days_to_invalidation"] == pytest.approx(
                percentile(dti, 50)
            )

    def test_caps_match_lifetime_simulator(self, index, pipeline_result):
        simulator = LifetimePolicySimulator(pipeline_result.findings)
        answer = index.caps((45, 90, 215, 47))
        assert answer["caps"] == [45, 90, 215, 47]
        for row in answer["classes"]:
            expected = simulator.evaluate(
                StalenessClass(row["class"]), row["cap_days"]
            )
            assert row["baseline_staleness_days"] == expected.baseline_staleness_days
            assert row["capped_staleness_days"] == expected.capped_staleness_days
            assert row["staleness_days_reduction"] == pytest.approx(
                expected.staleness_days_reduction
            )
            assert row["certificate_reduction"] == pytest.approx(
                expected.certificate_reduction
            )
        for overall in answer["overall"]:
            assert overall["staleness_days_reduction"] == pytest.approx(
                simulator.overall_staleness_reduction(overall["cap_days"])
            )

    def test_domain_answers_match_brute_force_scan(self, index, pipeline_result):
        # The query the paper motivates: exposure of one registered domain.
        findings = list(pipeline_result.findings.all_findings())
        for name in index.domains()[:25]:
            expected = [f for f in findings if name in f.affected_e2lds()]
            answer = index.domain(name)
            assert answer is not None and answer["exposed"]
            assert len(answer["findings"]) == len(expected)
            assert {r["serial"] for r in answer["findings"]} == {
                f.certificate.serial for f in expected
            }

    def test_domain_universe_matches_findings(self, index, pipeline_result):
        expected = set()
        for finding in pipeline_result.findings.all_findings():
            expected.update(finding.affected_e2lds())
        assert index.domains() == sorted(expected)

    def test_issuer_aggregates_match_findings(self, index, pipeline_result):
        findings = list(pipeline_result.findings.all_findings())
        rows = index.aggregates("issuer")
        assert [r["issuer"] for r in rows] == sorted({
            f.certificate.issuer_name for f in findings
        })
        total = sum(r["findings"] for r in rows)
        assert total == len(findings)


class TestQuerySemantics:
    def test_domain_normalizes_to_registered_domain(self, index):
        name = index.domains()[0]
        via_subdomain = index.domain(f"www.{name}")
        direct = index.domain(name)
        assert via_subdomain is not None
        assert via_subdomain["domain"] == direct["domain"] == name
        assert via_subdomain["findings"] == direct["findings"]

    def test_domain_on_day_filters_to_staleness_window(self, index, pipeline_result):
        finding = next(pipeline_result.findings.all_findings())
        name = sorted(finding.affected_e2lds())[0]
        inside = index.domain(name, on_day=finding.stale_from)
        assert inside is not None and inside["exposed"]
        outside = index.domain(name, on_day=day(1990, 1, 1))
        assert outside is not None
        assert not outside["exposed"] and outside["findings"] == []

    def test_domain_findings_in_canonical_order(self, index, pipeline_result):
        ordered = sorted(
            pipeline_result.findings.all_findings(), key=canonical_order_key
        )
        for name in index.domains()[:10]:
            expected = [
                (f.staleness_class.value, f.certificate.serial)
                for f in ordered
                if name in f.affected_e2lds()
            ]
            answer = index.domain(name)["findings"]
            assert [
                (r["staleness_class"], r["serial"]) for r in answer
            ] == expected

    def test_unknown_domain_is_none_invalid_domain_raises(self, index):
        assert index.domain("zzz-not-in-world.example") is None
        with pytest.raises(ValueError):
            index.domain("bad..name")
        with pytest.raises(ValueError):
            index.domain("")

    def test_unknown_aggregation_axis_raises(self, index):
        with pytest.raises(ValueError):
            index.aggregates("volume")

    def test_cap_validation(self, index):
        with pytest.raises(ValueError):
            index.caps((0,))
        with pytest.raises(ValueError):
            index.caps((100_000,))
        with pytest.raises(ValueError):
            index.caps(("45",))
        # Duplicates collapse instead of erroring.
        assert index.caps((90, 90))["caps"] == [90]

    def test_stats_shape(self, index, pipeline_result):
        stats = index.stats()
        assert stats["findings"] == len(index)
        assert stats["findings"] == len(
            list(pipeline_result.findings.all_findings())
        )
        assert stats["domains"] == len(index.domains())
        assert stats["build_seconds"] >= 0


class TestEdgeCases:
    def test_empty_result(self):
        index = FindingsIndex(PipelineResult(findings=StaleFindings()))
        assert len(index) == 0
        assert index.domains() == []
        assert index.domain("example.com") is None
        assert index.aggregates("class") == []
        assert index.aggregates("issuer") == []
        assert index.aggregates("year") == []
        assert index.survival_classes() == ()
        entry = index.survival(StalenessClass.KEY_COMPROMISE, (90,))
        assert entry["n"] == 0 and entry["survival"] == {}
        answer = index.caps((45,))
        assert answer["classes"] == []
        assert answer["overall"][0]["staleness_days_reduction"] == 0.0

    def test_single_finding_class(self):
        certificate = make_cert(
            sans=("solo.example.com",),
            not_before=day(2020, 1, 1),
            lifetime=365,
        )
        findings = StaleFindings()
        findings.add(
            StaleCertificate(
                certificate=certificate,
                staleness_class=StalenessClass.REGISTRANT_CHANGE,
                invalidation_day=day(2020, 7, 1),
                affected_domain="solo.example.com",
            )
        )
        index = FindingsIndex(PipelineResult(findings=findings))
        assert len(index) == 1
        assert index.domains() == ["example.com"]
        answer = index.domain("solo.example.com")
        assert answer["exposed"] and len(answer["findings"]) == 1
        entry = index.survival(StalenessClass.REGISTRANT_CHANGE, (90, 10_000))
        assert entry["n"] == 1
        assert entry["median_days_to_invalidation"] == pytest.approx(
            day(2020, 7, 1) - day(2020, 1, 1)
        )
        assert entry["survival"]["10000"] == 0.0
        row = index.aggregates("class")[0]
        assert row["stale_certificates"] == 1
        assert row["median_staleness_days"] == pytest.approx(
            day(2020, 1, 1) + 365 - day(2020, 7, 1)
        )


class TestFromBundle:
    def test_from_bundle_equals_in_memory_index(
        self, bundle_dir, small_world, index
    ):
        rebuilt = FindingsIndex.from_bundle(
            bundle_dir,
            revocation_cutoff_day=small_world.config.timeline.revocation_cutoff,
        )
        assert len(rebuilt) == len(index)
        assert rebuilt.domains() == index.domains()
        assert rebuilt.aggregates("class") == index.aggregates("class")
        assert rebuilt.aggregates("issuer") == index.aggregates("issuer")

    def test_from_legacy_bundle_equals_in_memory_index(
        self, legacy_bundle_dir, small_world, index
    ):
        rebuilt = FindingsIndex.from_bundle(
            legacy_bundle_dir,
            revocation_cutoff_day=small_world.config.timeline.revocation_cutoff,
        )
        assert len(rebuilt) == len(index)
        assert rebuilt.domains() == index.domains()
        assert rebuilt.aggregates("class") == index.aggregates("class")

    def test_missing_bundle_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            FindingsIndex.from_bundle(str(tmp_path / "nowhere"))

    def test_corrupt_legacy_bundle_raises_valueerror(
        self, legacy_bundle_dir, tmp_path
    ):
        # Same typed errors the CLI maps to exit 2 — no new taxonomy.
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(legacy_bundle_dir, broken)
        with gzip.open(os.path.join(broken, "corpus.jsonl.gz"), "wt") as handle:
            handle.write("this is not json\n")
        with pytest.raises(ValueError):
            FindingsIndex.from_bundle(str(broken))

    def test_corrupt_columnar_bundle_raises_valueerror(
        self, bundle_dir, tmp_path
    ):
        import glob
        import shutil

        broken = tmp_path / "broken-columnar"
        shutil.copytree(bundle_dir, broken)
        segment = sorted(glob.glob(os.path.join(broken, "certs-*.seg")))[0]
        with open(segment, "r+b") as handle:
            handle.truncate(16)
        with pytest.raises(ValueError):
            FindingsIndex.from_bundle(str(broken))
