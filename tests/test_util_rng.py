"""Tests for deterministic RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngStream, split_seed


class TestSplitSeed:
    def test_deterministic(self):
        assert split_seed(1, "a", "b") == split_seed(1, "a", "b")

    def test_label_sensitivity(self):
        assert split_seed(1, "a") != split_seed(1, "b")

    def test_seed_sensitivity(self):
        assert split_seed(1, "a") != split_seed(2, "a")

    def test_label_path_is_not_concatenation(self):
        # ("ab",) and ("a", "b") must derive different children.
        assert split_seed(1, "ab") != split_seed(1, "a", "b")


class TestRngStream:
    def test_same_labels_same_draws(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_split_independence(self):
        parent = RngStream(7, "x")
        child = parent.split("y")
        before = parent.randint(0, 10 ** 9)
        # Redo with the child drawing first: parent draw must be unchanged.
        parent2 = RngStream(7, "x")
        child2 = parent2.split("y")
        for _ in range(100):
            child2.random()
        assert parent2.randint(0, 10 ** 9) == before

    def test_bernoulli_extremes(self):
        rng = RngStream(3, "b")
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_poisson_zero_rate(self):
        assert RngStream(3, "p").poisson(0) == 0

    def test_poisson_mean_small_lambda(self):
        rng = RngStream(3, "p2")
        draws = [rng.poisson(3.0) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 2.7 < mean < 3.3

    def test_poisson_mean_large_lambda_normal_path(self):
        rng = RngStream(3, "p3")
        draws = [rng.poisson(80.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 77 < mean < 83
        assert all(d >= 0 for d in draws)

    def test_zipf_rank_bounds(self):
        rng = RngStream(3, "z")
        ranks = [rng.zipf_rank(1000) for _ in range(500)]
        assert all(1 <= r <= 1000 for r in ranks)

    def test_zipf_rank_skews_low(self):
        rng = RngStream(3, "z2")
        ranks = [rng.zipf_rank(1000) for _ in range(2000)]
        top_decile = sum(1 for r in ranks if r <= 100)
        assert top_decile > len(ranks) * 0.3  # far more than uniform's 10%

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            RngStream(3, "z3").zipf_rank(0)

    def test_bounded_pareto_within_bounds(self):
        rng = RngStream(3, "bp")
        draws = [rng.bounded_pareto_days(1, 600) for _ in range(500)]
        assert all(1 <= d <= 600 for d in draws)

    def test_bounded_pareto_degenerate(self):
        assert RngStream(3, "bp2").bounded_pareto_days(5, 5) == 5

    def test_weighted_choice_respects_zero_weight(self):
        rng = RngStream(3, "w")
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    @given(st.integers(min_value=0, max_value=2 ** 31), st.text(max_size=8))
    def test_split_seed_stable_under_hypothesis(self, seed, label):
        assert split_seed(seed, label) == split_seed(seed, label)
