"""Shared fixtures.

The session-scoped ``small_world`` runs the full 2013–2023 simulation at a
small scale once; every integration-level test reuses it. Unit tests build
their own tiny objects via the helpers below.
"""

from __future__ import annotations

import pytest

from repro import MeasurementPipeline, WorldConfig, simulate_world
from repro.pki.certificate import Certificate
from repro.pki.keys import KeyAlgorithm, KeyPair, KeyStore
from repro.util.dates import day


@pytest.fixture(scope="session")
def small_world():
    """A deterministic, small-scale full-decade world."""
    return simulate_world(WorldConfig(seed=4242).scaled(0.08))


@pytest.fixture(scope="session")
def pipeline_result(small_world):
    pipeline = MeasurementPipeline(
        small_world.to_bundle(),
        revocation_cutoff_day=small_world.config.timeline.revocation_cutoff,
    )
    return pipeline.run()


@pytest.fixture()
def key_store():
    return KeyStore()


_SERIAL = iter(range(10_000, 10_000_000))


def make_key(owner: str = "tester", on_day: int = day(2020, 1, 1)) -> KeyPair:
    return KeyStore().generate(owner, on_day)


def make_cert(
    sans=("example.com", "www.example.com"),
    not_before=day(2021, 1, 1),
    not_after=None,
    lifetime=365,
    issuer="Test CA",
    authority_key_id="akid-test",
    serial=None,
    key=None,
    **kwargs,
) -> Certificate:
    """Terse certificate factory for unit tests."""
    if not_after is None:
        not_after = not_before + lifetime
    return Certificate(
        subject_cn=sans[0] if sans else "",
        san_dns_names=tuple(sans),
        subject_key=key or make_key(),
        issuer_name=issuer,
        authority_key_id=authority_key_id,
        serial=serial if serial is not None else next(_SERIAL),
        not_before=not_before,
        not_after=not_after,
        **kwargs,
    )


@pytest.fixture()
def cert_factory():
    return make_cert
